//! The ODoH wiring: clients HPKE-seal queries through proxy → target →
//! origin.
//!
//! The client here is the one wiring in the workspace that does *not*
//! ride [`dcp_runtime::Driver`]'s canonical timer loop: its retry path
//! interleaves the circuit breaker (quarantine → retry → failover
//! observations, in that order) with the attempt, so it drives the raw
//! [`TimerVerdict`]s the runtime re-exports for exactly this purpose.

use std::cell::RefCell;
use std::collections::BTreeMap;
use std::rc::Rc;

use dcp_core::sweep::derive_seed;
use dcp_core::{
    DataKind, EntityId, IdentityKind, InfoItem, Label, RecoverConfig, RunOptions, Scenario, UserId,
};
use dcp_crypto::hpke;
use dcp_dns::workload::ZipfWorkload;
use dcp_dns::{DnsName, Message as DnsMessage, RrType};
use dcp_runtime::{
    emit_failover, emit_give_up, emit_quarantine, emit_retry, wire, Attempt, Control, Ctx,
    Endpoint, Failover, Harness, HopMap, LinkParams, Message, Node, NodeId, ReliableCall, SimTime,
    TimerVerdict, TypedSend,
};

use super::{assemble, build_zone, Odoh, OdohConfig, OriginNode, ScenarioReport, Stats, SUFFIX};
use crate::odoh;
use crate::types::{
    AuthOrigin, DnsQuery, ObliviousProxy, ObliviousQuery, ObliviousTarget, SealedQuery, StubClient,
};

/// The client's envelope label, shared verbatim by the simulated wiring
/// and the `dcp serve` twin (`crate::serve`): knowledge tables are a
/// function of labels and key grants, so sharing the builders is what
/// makes the two runs byte-comparable.
///
/// Outer envelope: the proxy knows the client (▲_N) and that a DNS query
/// happened (⊙). Inner seal: the target reads the query content (⊙/●) of
/// an anonymous user (△).
pub(crate) fn envelope_label(user: UserId, target_key: dcp_core::KeyId) -> Label {
    Label::items([
        InfoItem::sensitive_identity(user, IdentityKind::Any),
        InfoItem::plain_data(user, DataKind::DnsQuery),
    ])
    .and(
        Label::items([
            InfoItem::plain_identity(user, IdentityKind::Any),
            InfoItem::partial_data(user, DataKind::DnsQuery),
        ])
        .sealed(target_key),
    )
}

/// The target's response label: sealed to the client's ephemeral key —
/// intermediaries learn nothing; the client learns its own answer (●,
/// which it is entitled to).
pub(crate) fn response_label(user: UserId, client_resp_key: dcp_core::KeyId) -> Label {
    Label::items([InfoItem::sensitive_data(user, DataKind::DnsQuery)]).sealed(client_resp_key)
}

/// The target→origin label: a plaintext recursive query — the origin
/// sees the query (●) from the resolver's address (△).
pub(crate) fn origin_query_label(user: UserId) -> Label {
    Label::items([
        InfoItem::plain_identity(user, IdentityKind::Any),
        InfoItem::sensitive_data(user, DataKind::DnsQuery),
    ])
}

struct OdohClient {
    entity: EntityId,
    user: UserId,
    proxy: Endpoint<SealedQuery, Control, ObliviousProxy>,
    target_pk: [u8; 32],
    target_key: dcp_core::KeyId,
    queries: Vec<DnsName>,
    state: Option<odoh::QueryState>,
    stats: Rc<RefCell<Stats>>,
    sent_at: SimTime,
    next_id: u16,
    /// Per-request ARQ (inert when the run's recovery is disabled).
    arq: ReliableCall,
    /// Proxy routes (primary + backups) with the circuit breaker.
    failover: Failover,
    /// RetryLinkage flow id (the client index).
    flow: u64,
    /// Open reliable calls, keyed by ARQ sequence number.
    inflight: BTreeMap<u64, OdohInflight>,
}

struct OdohInflight {
    name: DnsName,
    state: odoh::QueryState,
    route_ordinal: usize,
    sent_at: SimTime,
}

impl OdohClient {
    fn envelope_label(&self) -> Label {
        envelope_label(self.user, self.target_key)
    }

    fn send_next(&mut self, ctx: &mut Ctx) {
        let Some(name) = self.queries.pop() else {
            return;
        };
        if self.arq.enabled() {
            let att = self.arq.begin().expect("enabled ARQ always begins");
            let sent_at = ctx.now;
            self.transmit(ctx, name, sent_at, att);
            return;
        }
        let q = DnsMessage::query(self.next_id, name, RrType::A);
        self.next_id = self.next_id.wrapping_add(1);
        ctx.world.crypto_op("hpke_seal");
        let (sealed, state) = odoh::seal_query(ctx.rng, &self.target_pk, &q).expect("seal");
        self.state = Some(state);
        self.sent_at = ctx.now;
        let label = self.envelope_label();
        ctx.send_to(self.proxy, Message::new(sealed, label));
    }

    /// One (re)transmission of reliable call `att.seq`: a *fresh* HPKE
    /// encapsulation every attempt (re-randomized retransmission — a
    /// replayed ciphertext would let any on-path observer link the
    /// attempts), framed with the ARQ sequence number outside the
    /// ciphertext, routed by the failover's deterministic choice.
    fn transmit(&mut self, ctx: &mut Ctx, name: DnsName, sent_at: SimTime, att: Attempt) {
        let q = DnsMessage::query(self.next_id, name.clone(), RrType::A);
        self.next_id = self.next_id.wrapping_add(1);
        ctx.world.crypto_op("hpke_seal");
        let (sealed, state) = odoh::seal_query(ctx.rng, &self.target_pk, &q).expect("seal");
        let pick = self
            .failover
            .route_for(att.seq, att.attempt, ctx.now.as_us());
        self.stats
            .borrow_mut()
            .linkage
            .record(self.flow, att.seq, att.attempt, &sealed);
        self.inflight.insert(
            att.seq,
            OdohInflight {
                name,
                state,
                route_ordinal: pick.ordinal,
                sent_at,
            },
        );
        let label = self.envelope_label();
        // Failover picks among the proxies dynamically; every route plays
        // the same role, so the typed endpoint is built from the pick.
        ctx.send_to(
            Endpoint::<SealedQuery, Control, ObliviousProxy>::new(pick.node),
            Message::new(wire::frame(att.seq, &sealed), label),
        );
        ctx.set_timer(att.timer_delay_us, att.token);
    }
}

// The target_key field is injected at construction; declared separately to
// keep send_next readable.
impl OdohClient {
    #[allow(clippy::too_many_arguments)]
    fn new(
        entity: EntityId,
        user: UserId,
        proxy: Endpoint<SealedQuery, Control, ObliviousProxy>,
        target_pk: [u8; 32],
        target_key: dcp_core::KeyId,
        queries: Vec<DnsName>,
        stats: Rc<RefCell<Stats>>,
        recover: &RecoverConfig,
        proxy_routes: &[NodeId],
        jitter_seed: u64,
        flow: u64,
    ) -> Self {
        OdohClient {
            entity,
            user,
            proxy,
            target_pk,
            queries,
            state: None,
            stats,
            sent_at: SimTime::ZERO,
            next_id: 1,
            target_key,
            arq: ReliableCall::new(recover, jitter_seed),
            failover: Failover::new(proxy_routes.iter().map(|n| n.0).collect(), recover),
            flow,
            inflight: BTreeMap::new(),
        }
    }
}

impl Node for OdohClient {
    fn entity(&self) -> EntityId {
        self.entity
    }
    fn on_start(&mut self, ctx: &mut Ctx) {
        ctx.world.record(
            self.entity,
            InfoItem::sensitive_identity(self.user, IdentityKind::Any),
        );
        ctx.world.record(
            self.entity,
            InfoItem::sensitive_data(self.user, DataKind::DnsQuery),
        );
        self.send_next(ctx);
    }
    fn on_timer(&mut self, ctx: &mut Ctx, token: u64) {
        match self.arq.on_timer(token) {
            TimerVerdict::NotMine | TimerVerdict::Stale => {}
            TimerVerdict::Retry(att) => {
                let Some(entry) = self.inflight.get(&att.seq) else {
                    return;
                };
                let (name, sent_at, prev) =
                    (entry.name.clone(), entry.sent_at, entry.route_ordinal);
                if let Some(until) = self.failover.report_failure(prev, ctx.now.as_us()) {
                    emit_quarantine(ctx.world, ctx.id().0, self.failover.route(prev), until);
                }
                emit_retry(ctx.world, ctx.id().0, att.seq, att.attempt);
                let pick = self
                    .failover
                    .route_for(att.seq, att.attempt, ctx.now.as_us());
                if pick.ordinal != prev {
                    emit_failover(
                        ctx.world,
                        ctx.id().0,
                        att.seq,
                        self.failover.route(prev),
                        pick.node,
                    );
                }
                self.transmit(ctx, name, sent_at, att);
            }
            TimerVerdict::Exhausted { seq, attempts } => {
                emit_give_up(ctx.world, ctx.id().0, seq, attempts);
                self.inflight.remove(&seq);
                self.send_next(ctx);
            }
        }
    }
    fn on_message(&mut self, ctx: &mut Ctx, _from: NodeId, msg: Message) {
        if self.arq.enabled() {
            // Framed response: the echoed sequence number selects which
            // call's state to open against, so late responses to an
            // earlier query can never clobber a newer one.
            let Some((seq, body)) = wire::unframe(&msg.bytes) else {
                return;
            };
            let Some(entry) = self.inflight.get(&seq) else {
                return;
            };
            ctx.world.crypto_op("hpke_open");
            let Ok(resp) = odoh::open_response(&entry.state, body) else {
                return; // a response to a superseded attempt fails to open
            };
            if !resp.is_response {
                return;
            }
            if !self.arq.complete(seq) {
                return; // duplicated response: counted exactly once
            }
            self.failover.report_success(entry.route_ordinal);
            let sent_at = entry.sent_at;
            ctx.world.span("query", sent_at.as_us(), ctx.now.as_us());
            self.inflight.remove(&seq);
            let mut stats = self.stats.borrow_mut();
            stats.answered += 1;
            stats.latencies.push(ctx.now - sent_at);
            drop(stats);
            self.send_next(ctx);
            return;
        }
        // Only consume the in-flight state once a response actually opens
        // against it — duplicated or stale deliveries must not clobber a
        // newer query's state.
        let Some(state) = self.state.as_ref() else {
            return;
        };
        ctx.world.crypto_op("hpke_open");
        let Ok(resp) = odoh::open_response(state, &msg.bytes) else {
            return;
        };
        if !resp.is_response {
            return;
        }
        self.state = None;
        ctx.world
            .span("query", self.sent_at.as_us(), ctx.now.as_us());
        let mut stats = self.stats.borrow_mut();
        stats.answered += 1;
        stats.latencies.push(ctx.now - self.sent_at);
        drop(stats);
        self.send_next(ctx);
    }
}

struct ProxyNode {
    entity: EntityId,
    target: Endpoint<ObliviousQuery, Control, ObliviousTarget>,
    /// Pending client per in-flight query (FIFO per arrival;
    /// recovery-disabled path only).
    pending: Vec<NodeId>,
    /// Is the run's recovery layer on (same [`RunOptions`] every node)?
    recover: bool,
    /// Recovery path: hop-local sequence per forwarded query. The proxy
    /// must not forward the client's own counter — a client-scoped
    /// counter in the clear would hand the target a stable cross-query
    /// pseudonym, undoing the decoupling.
    hop: HopMap<(NodeId, u64)>,
}

impl Node for ProxyNode {
    fn entity(&self) -> EntityId {
        self.entity
    }
    fn on_message(&mut self, ctx: &mut Ctx, from: NodeId, msg: Message) {
        if from.0 == self.target.index() {
            if self.recover {
                // The target echoed the proxy's hop-local number: map it
                // back to (client, client seq) and re-frame. A duplicated
                // response finds its entry consumed and is dropped.
                let Some((pseq, body)) = wire::unframe(&msg.bytes) else {
                    return;
                };
                let Some((client, cseq)) = self.hop.take(pseq) else {
                    return;
                };
                let framed = wire::frame(cseq, body);
                ctx.send(client, Message::new(framed, msg.label));
                return;
            }
            // Response going back: forward to the waiting client. A
            // duplicated response with no waiter is dropped.
            let Some(client) = self.pending.pop() else {
                return;
            };
            ctx.send(client, msg);
        } else {
            // Strip the client-identifying envelope: the target sees only
            // the sealed inner part plus an anonymous-aggregate marker.
            let inner = match &msg.label {
                Label::Bundle(parts) if parts.len() == 2 => parts[1].clone(),
                other => other.clone(),
            };
            if self.recover {
                let Some((cseq, body)) = wire::unframe(&msg.bytes) else {
                    return;
                };
                let pseq = self.hop.insert((from, cseq));
                let framed = wire::frame(pseq, body);
                ctx.send_to(self.target, Message::new(framed, inner));
                return;
            }
            self.pending.insert(0, from);
            ctx.send_to(self.target, Message::new(msg.bytes, inner));
        }
    }
}

struct TargetNode {
    entity: EntityId,
    kp: hpke::Keypair,
    origin: Endpoint<DnsQuery, Control, AuthOrigin>,
    client_resp_key: dcp_core::KeyId,
    /// (proxy node, response key, subject) awaiting origin answers
    /// (FIFO; recovery-disabled path only).
    pending: Vec<(NodeId, [u8; 32], UserId)>,
    /// Maps query names to subjects for label construction (the target
    /// cannot name users — this is scenario bookkeeping keyed by what the
    /// target *does* see).
    subject_of_query: std::collections::HashMap<String, UserId>,
    /// Is the run's recovery layer on?
    recover: bool,
    /// Recovery path: awaiting origin answers keyed by the hop-local
    /// sequence (echoed by the origin), so drops between target and
    /// origin can never mispair a late answer with the wrong waiter.
    pending_by_seq: BTreeMap<u64, (NodeId, [u8; 32], UserId)>,
}

impl Node for TargetNode {
    fn entity(&self) -> EntityId {
        self.entity
    }
    fn on_message(&mut self, ctx: &mut Ctx, from: NodeId, msg: Message) {
        if from.0 == self.origin.index() {
            let (seq, body) = if self.recover {
                match wire::unframe(&msg.bytes) {
                    Some((s, b)) => (Some(s), b),
                    None => return,
                }
            } else {
                (None, &msg.bytes[..])
            };
            let Ok(resp) = DnsMessage::decode(body) else {
                return;
            };
            let waiter = match seq {
                Some(s) => self.pending_by_seq.remove(&s),
                None => self.pending.pop(),
            };
            let Some((proxy, resp_pk, user)) = waiter else {
                return; // duplicated origin answer: nothing awaits it
            };
            ctx.world.crypto_op("hpke_seal");
            let Ok(sealed) = odoh::seal_response(ctx.rng, &resp_pk, &resp) else {
                return; // cannot seal: never answer in plaintext
            };
            let label = response_label(user, self.client_resp_key);
            let bytes = match seq {
                Some(s) => wire::frame(s, &sealed),
                None => sealed,
            };
            ctx.send(proxy, Message::new(bytes, label));
            return;
        }
        // Encapsulated query from the proxy. Undecryptable (tampered or
        // duplicated-and-replayed) queries are dropped, never answered.
        let (seq, body) = if self.recover {
            match wire::unframe(&msg.bytes) {
                Some((s, b)) => (Some(s), b),
                None => return,
            }
        } else {
            (None, &msg.bytes[..])
        };
        ctx.world.crypto_op("hpke_open");
        let Ok((query, resp_pk)) = odoh::open_query(&self.kp, body) else {
            return;
        };
        let Some(q0) = query.questions.first() else {
            return;
        };
        let qname = q0.qname.to_string();
        let Some(&user) = self.subject_of_query.get(&qname) else {
            return;
        };
        match seq {
            Some(s) => {
                self.pending_by_seq.insert(s, (from, resp_pk, user));
            }
            None => self.pending.insert(0, (from, resp_pk, user)),
        }
        let label = origin_query_label(user);
        let bytes = match seq {
            Some(s) => wire::frame(s, &query.encode()),
            None => query.encode(),
        };
        ctx.send_to(self.origin, Message::new(bytes, label));
    }
}

/// The target's per-client response key (one `KeyId` stands for "keys only
/// clients hold"); stored on the node for label construction.
impl TargetNode {
    fn new(
        entity: EntityId,
        kp: hpke::Keypair,
        origin: Endpoint<DnsQuery, Control, AuthOrigin>,
        client_resp_key: dcp_core::KeyId,
        subject_of_query: std::collections::HashMap<String, UserId>,
        recover: bool,
    ) -> Self {
        TargetNode {
            entity,
            kp,
            origin,
            pending: Vec::new(),
            subject_of_query,
            client_resp_key,
            recover,
            pending_by_seq: BTreeMap::new(),
        }
    }
}

/// Everything the ODoH wiring derives before any node exists: entities,
/// keys, the target keypair, and the per-client workload. Installed into
/// a [`dcp_core::World`] by [`plan_world`], which both the simulated
/// wiring and the `dcp serve` twin (`crate::serve`) call — the exact
/// same sequence of world mutations is what makes the two runs'
/// knowledge tables byte-comparable.
pub(crate) struct OdohPlan {
    pub(crate) proxy_e: EntityId,
    pub(crate) target_e: EntityId,
    pub(crate) origin_e: EntityId,
    pub(crate) backup_entities: Vec<EntityId>,
    pub(crate) target_kp: hpke::Keypair,
    pub(crate) users: Vec<UserId>,
    pub(crate) client_entities: Vec<EntityId>,
    pub(crate) target_key: dcp_core::KeyId,
    pub(crate) client_resp_key: dcp_core::KeyId,
    pub(crate) subject_of_query: std::collections::HashMap<String, UserId>,
    pub(crate) per_client_queries: Vec<Vec<DnsName>>,
    pub(crate) zone: dcp_dns::Zone,
}

/// Install the ODoH entity/key/workload layout into `world`.
///
/// The mutation order is load-bearing twice over: the sim run's metrics
/// sink observes entity creation in sequence (the DST probes are
/// byte-identical across refactors only if the order holds), and the
/// serve twin relies on producing the *same* entity and key ids.
pub(crate) fn plan_world(
    world: &mut dcp_core::World,
    cfg: &OdohConfig,
    seed: u64,
    recover_on: bool,
) -> OdohPlan {
    use rand::SeedableRng;
    let (n_clients, queries_each) = (cfg.clients, cfg.queries_each);
    let mut setup_rng = rand::rngs::StdRng::seed_from_u64(seed ^ 0x0d0a);
    let workload = ZipfWorkload::new(200, 1.0, SUFFIX);
    let zone = build_zone(&workload);

    let isp_org = world.add_org("isp");
    let odns_org = world.add_org("oblivious-operator");
    let auth_org = world.add_org("authoritative");
    let user_org = world.add_org("users");
    let proxy_e = world.add_entity("Resolver", isp_org, None);
    let target_e = world.add_entity("Oblivious Resolver", odns_org, None);
    let origin_e = world.add_entity("Origin", auth_org, None);

    // Backup proxies exist only under recovery: each is an independent
    // operator (own org) so failing over genuinely changes trust, and
    // clients rotate across all of them even in calm runs — a backup
    // that only ever saw failure traffic would accrue knowledge only
    // under faults, breaking the DST's table-equality bar.
    let n_backups = if recover_on { cfg.backup_proxies } else { 0 };
    let mut backup_entities = Vec::new();
    for i in 0..n_backups {
        let org = world.add_org(&format!("isp-backup-{}", i + 1));
        backup_entities.push(world.add_entity(&format!("Resolver {}", i + 2), org, None));
    }

    let target_kp = hpke::Keypair::generate(&mut setup_rng);

    let mut users = Vec::new();
    let mut client_entities = Vec::new();
    for i in 0..n_clients {
        let u = world.add_user();
        let name = if i == 0 {
            "Client".to_string()
        } else {
            format!("Client {}", i + 1)
        };
        client_entities.push(world.add_entity(&name, user_org, Some(u)));
        users.push(u);
    }

    // Key capabilities: the target holds its HPKE key; clients hold their
    // response keys. (Clients' own ledgers are seeded directly, so the
    // response KeyId is granted to no third party.)
    let target_key = world.new_key(&[target_e]);
    let client_resp_key = world.new_key(&[]);

    // Assign each client a disjoint slice of names so the "which subject
    // is this query about" bookkeeping is unambiguous.
    let mut subject_of_query = std::collections::HashMap::new();
    let mut per_client_queries: Vec<Vec<DnsName>> = Vec::new();
    for (ci, &u) in users.iter().enumerate() {
        let mut qs = Vec::new();
        for k in 0..queries_each {
            let name = workload.domain((ci * queries_each + k) % workload.domain_count());
            subject_of_query.insert(name.to_string(), u);
            qs.push(name.clone());
        }
        per_client_queries.push(qs);
    }

    OdohPlan {
        proxy_e,
        target_e,
        origin_e,
        backup_entities,
        target_kp,
        users,
        client_entities,
        target_key,
        client_resp_key,
        subject_of_query,
        per_client_queries,
        zone,
    }
}

pub(super) fn odoh_impl(cfg: &OdohConfig, seed: u64, opts: &RunOptions) -> ScenarioReport {
    let (n_clients, queries_each) = (cfg.clients, cfg.queries_each);
    let (mut world, harness) = Harness::begin(Odoh::NAME, seed, opts);
    let recover_on = opts.recover.enabled;
    let OdohPlan {
        proxy_e,
        target_e,
        origin_e,
        backup_entities,
        target_kp,
        users,
        client_entities,
        target_key,
        client_resp_key,
        subject_of_query,
        per_client_queries,
        zone,
    } = plan_world(&mut world, cfg, seed, recover_on);

    let stats = Rc::new(RefCell::new(Stats::new(1)));

    let mut net = harness.network(world, LinkParams::wan_ms(8));

    let proxy_id: Endpoint<SealedQuery, Control, ObliviousProxy> = Endpoint::new(0);
    let target_id: Endpoint<ObliviousQuery, Control, ObliviousTarget> = Endpoint::new(1);
    let origin_id: Endpoint<DnsQuery, Control, AuthOrigin> = Endpoint::new(2);
    Harness::add_role::<ObliviousProxy>(
        &mut net,
        Box::new(ProxyNode {
            entity: proxy_e,
            target: target_id,
            pending: Vec::new(),
            recover: recover_on,
            hop: HopMap::new(),
        }),
    );
    Harness::add_role::<ObliviousTarget>(
        &mut net,
        Box::new(TargetNode::new(
            target_e,
            target_kp.clone(),
            origin_id,
            client_resp_key,
            subject_of_query,
            recover_on,
        )),
    );
    Harness::add_role::<AuthOrigin>(
        &mut net,
        Box::new(OriginNode {
            entity: origin_e,
            zone,
            recover: recover_on,
        }),
    );
    let mut proxy_routes = vec![NodeId(proxy_id.index())];
    for &e in backup_entities.iter() {
        let id = Harness::add_role::<ObliviousProxy>(
            &mut net,
            Box::new(ProxyNode {
                entity: e,
                target: target_id,
                pending: Vec::new(),
                recover: recover_on,
                hop: HopMap::new(),
            }),
        );
        proxy_routes.push(id);
    }
    for (ci, ((&u, &e), queries)) in users
        .iter()
        .zip(client_entities.iter())
        .zip(per_client_queries)
        .enumerate()
    {
        Harness::add_role::<StubClient>(
            &mut net,
            Box::new(OdohClient::new(
                e,
                u,
                proxy_id,
                target_kp.public,
                target_key,
                queries,
                stats.clone(),
                &opts.recover,
                &proxy_routes,
                derive_seed(seed, 0x0a10 + ci as u64),
                ci as u64,
            )),
        );
    }
    // Grant clients their response key so their observations decrypt.
    for &e in &client_entities {
        net.world_mut().grant_key(e, client_resp_key);
    }

    assemble(harness, net, stats, users, n_clients * queries_each)
}
