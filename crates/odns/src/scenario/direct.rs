//! Plain DNS — the coupled baseline — optionally striped across several
//! resolvers (§5.1).

use std::cell::RefCell;
use std::rc::Rc;

use dcp_core::sweep::derive_seed;
use dcp_core::{DataKind, EntityId, IdentityKind, InfoItem, Label, RunOptions, Scenario, UserId};
use dcp_dns::workload::ZipfWorkload;
use dcp_dns::{DnsName, Message as DnsMessage, RrType};
use dcp_runtime::{
    wire, Attempt, CallEvent, Control, Ctx, Driver, Endpoint, Harness, HopMap, LinkParams, Message,
    Node, NodeId, SimTime, TypedSend,
};
use rand::Rng as _;

use super::{
    assemble, build_zone, DirectDns, DirectDnsConfig, OriginNode, ScenarioReport, Stats, SUFFIX,
};
use crate::types::{CoupledQuery, CoupledResolver, ExposedOrigin, StubClient};

struct DirectClient {
    entity: EntityId,
    user: UserId,
    /// Coupled on purpose: the endpoint type says each resolver may see
    /// `(▲, ●)` — the baseline the oblivious wirings improve on.
    resolvers: Vec<Endpoint<CoupledQuery, Control, CoupledResolver>>,
    queries: Vec<DnsName>,
    stats: Rc<RefCell<Stats>>,
    sent_at: SimTime,
    next_id: u16,
    /// Open reliable calls (inert when the run's recovery is disabled).
    /// No failover list: striping already re-draws the resolver per
    /// attempt.
    calls: Driver<DirectInflight>,
}

struct DirectInflight {
    name: DnsName,
    sent_at: SimTime,
}

impl DirectClient {
    fn query_label(&self) -> Label {
        // Plain DNS: the resolver sees both who (▲_N) and what (●).
        Label::items([
            InfoItem::sensitive_identity(self.user, IdentityKind::Any),
            InfoItem::sensitive_data(self.user, DataKind::DnsQuery),
        ])
    }

    fn send_next(&mut self, ctx: &mut Ctx) {
        let Some(name) = self.queries.pop() else {
            return;
        };
        if let Some(att) = self.calls.begin(DirectInflight {
            name: name.clone(),
            sent_at: ctx.now,
        }) {
            self.transmit(ctx, name, att);
            return;
        }
        // Striping: pick a resolver uniformly at random (§5.1 / ref [18]).
        let idx = ctx.rng.gen_range(0..self.resolvers.len());
        let q = DnsMessage::query(self.next_id, name, RrType::A);
        self.next_id = self.next_id.wrapping_add(1);
        self.sent_at = ctx.now;
        let label = self.query_label();
        ctx.send_to(self.resolvers[idx], Message::new(q.encode(), label));
    }

    /// One (re)transmission of reliable call `att.seq`. Plain DNS has no
    /// ciphertext to re-randomize (the query is readable anyway — this is
    /// the coupled baseline), so nothing is recorded into the linkage
    /// check; the striping draw is simply repeated per attempt.
    fn transmit(&mut self, ctx: &mut Ctx, name: DnsName, att: Attempt) {
        let idx = ctx.rng.gen_range(0..self.resolvers.len());
        let q = DnsMessage::query(self.next_id, name, RrType::A);
        self.next_id = self.next_id.wrapping_add(1);
        let label = self.query_label();
        ctx.send_to(
            self.resolvers[idx],
            Message::new(wire::frame(att.seq, &q.encode()), label),
        );
        ctx.set_timer(att.timer_delay_us, att.token);
    }
}

impl Node for DirectClient {
    fn entity(&self) -> EntityId {
        self.entity
    }
    fn on_start(&mut self, ctx: &mut Ctx) {
        ctx.world.record(
            self.entity,
            InfoItem::sensitive_identity(self.user, IdentityKind::Any),
        );
        ctx.world.record(
            self.entity,
            InfoItem::sensitive_data(self.user, DataKind::DnsQuery),
        );
        self.send_next(ctx);
    }
    fn on_timer(&mut self, ctx: &mut Ctx, token: u64) {
        match self.calls.on_timer(ctx, token) {
            CallEvent::App(_) | CallEvent::Ignored => {}
            CallEvent::Retry(att) => {
                let name = self
                    .calls
                    .get(att.seq)
                    .expect("open call has an entry")
                    .name
                    .clone();
                self.transmit(ctx, name, att);
            }
            CallEvent::Exhausted { .. } => self.send_next(ctx),
        }
    }
    fn on_message(&mut self, ctx: &mut Ctx, _from: NodeId, msg: Message) {
        if self.calls.enabled() {
            let Some((seq, body)) = wire::unframe(&msg.bytes) else {
                return;
            };
            if self.calls.get(seq).is_none() {
                return;
            }
            let Ok(resp) = DnsMessage::decode(body) else {
                return;
            };
            if !resp.is_response {
                return;
            }
            let Some(entry) = self.calls.complete(seq) else {
                return; // duplicated response: counted exactly once
            };
            let sent_at = entry.sent_at;
            ctx.world.span("query", sent_at.as_us(), ctx.now.as_us());
            let mut stats = self.stats.borrow_mut();
            stats.answered += 1;
            stats.latencies.push(ctx.now - sent_at);
            drop(stats);
            self.send_next(ctx);
            return;
        }
        // Undecodable or non-response deliveries (duplication faults) are
        // ignored rather than crashing the client.
        let Ok(resp) = DnsMessage::decode(&msg.bytes) else {
            return;
        };
        if !resp.is_response {
            return;
        }
        ctx.world
            .span("query", self.sent_at.as_us(), ctx.now.as_us());
        let mut stats = self.stats.borrow_mut();
        stats.answered += 1;
        stats.latencies.push(ctx.now - self.sent_at);
        drop(stats);
        self.send_next(ctx);
    }
}

struct PlainResolver {
    entity: EntityId,
    slot: usize,
    origin: Endpoint<CoupledQuery, Control, ExposedOrigin>,
    pending: Vec<NodeId>,
    stats: Rc<RefCell<Stats>>,
    /// Is the run's recovery layer on?
    recover: bool,
    /// Recovery path: hop-local sequence per forwarded query (client
    /// sequence spaces collide across clients).
    hop: HopMap<(NodeId, u64)>,
}

impl Node for PlainResolver {
    fn entity(&self) -> EntityId {
        self.entity
    }
    fn on_message(&mut self, ctx: &mut Ctx, from: NodeId, msg: Message) {
        if from.0 == self.origin.index() {
            if self.recover {
                let Some((rseq, body)) = wire::unframe(&msg.bytes) else {
                    return;
                };
                let Some((client, cseq)) = self.hop.take(rseq) else {
                    return;
                };
                let framed = wire::frame(cseq, body);
                ctx.send(client, Message::new(framed, msg.label));
                return;
            }
            // A duplicated origin answer with no waiter is dropped.
            let Some(client) = self.pending.pop() else {
                return;
            };
            ctx.send(client, msg);
            return;
        }
        if self.recover {
            let Some((cseq, body)) = wire::unframe(&msg.bytes) else {
                return;
            };
            let Ok(query) = DnsMessage::decode(body) else {
                return;
            };
            let Some(q0) = query.questions.first() else {
                return;
            };
            self.stats.borrow_mut().resolver_views[self.slot].insert(q0.qname.to_string());
            let rseq = self.hop.insert((from, cseq));
            let framed = wire::frame(rseq, body);
            // Forward upstream; the label travels as-is (the resolver
            // already saw everything — plain DNS hides nothing).
            ctx.send_to(self.origin, Message::new(framed, msg.label));
            return;
        }
        let Ok(query) = DnsMessage::decode(&msg.bytes) else {
            return;
        };
        let Some(q0) = query.questions.first() else {
            return;
        };
        self.stats.borrow_mut().resolver_views[self.slot].insert(q0.qname.to_string());
        self.pending.insert(0, from);
        // Forward upstream; the label travels as-is (the resolver already
        // saw everything — plain DNS hides nothing).
        ctx.send_to(self.origin, msg);
    }
}

pub(super) fn direct_impl(cfg: &DirectDnsConfig, seed: u64, opts: &RunOptions) -> ScenarioReport {
    use rand::SeedableRng;
    let (n_clients, queries_each, n_resolvers) = (cfg.clients, cfg.queries_each, cfg.resolvers);
    let mut wl_rng = rand::rngs::StdRng::seed_from_u64(seed ^ 0xd1e7);
    let workload = ZipfWorkload::new(200, 1.0, SUFFIX);
    let zone = build_zone(&workload);

    let (mut world, harness) = Harness::begin(DirectDns::NAME, seed, opts);
    let auth_org = world.add_org("authoritative");
    let user_org = world.add_org("users");
    let origin_e = world.add_entity("Origin", auth_org, None);
    let mut resolver_entities = Vec::new();
    for i in 0..n_resolvers {
        let org = world.add_org(&format!("resolver-op-{i}"));
        let name = if i == 0 {
            "Resolver".to_string()
        } else {
            format!("Resolver {}", i + 1)
        };
        resolver_entities.push(world.add_entity(&name, org, None));
    }

    let mut users = Vec::new();
    let mut client_entities = Vec::new();
    for i in 0..n_clients {
        let u = world.add_user();
        let name = if i == 0 {
            "Client".to_string()
        } else {
            format!("Client {}", i + 1)
        };
        client_entities.push(world.add_entity(&name, user_org, Some(u)));
        users.push(u);
    }

    let stats = Rc::new(RefCell::new(Stats::new(n_resolvers)));

    let mut net = harness.network(world, LinkParams::wan_ms(8));

    let recover_on = opts.recover.enabled;
    let origin_id: Endpoint<CoupledQuery, Control, ExposedOrigin> = Endpoint::new(0);
    Harness::add_role::<ExposedOrigin>(
        &mut net,
        Box::new(OriginNode {
            entity: origin_e,
            zone,
            recover: recover_on,
        }),
    );
    let resolver_ids: Vec<Endpoint<CoupledQuery, Control, CoupledResolver>> =
        (0..n_resolvers).map(|i| Endpoint::new(1 + i)).collect();
    for (i, &e) in resolver_entities.iter().enumerate() {
        Harness::add_role::<CoupledResolver>(
            &mut net,
            Box::new(PlainResolver {
                entity: e,
                slot: i,
                origin: origin_id,
                pending: Vec::new(),
                stats: stats.clone(),
                recover: recover_on,
                hop: HopMap::new(),
            }),
        );
    }
    for (ci, (&u, &e)) in users.iter().zip(client_entities.iter()).enumerate() {
        let queries = workload.stream(&mut wl_rng, queries_each);
        Harness::add_role::<StubClient>(
            &mut net,
            Box::new(DirectClient {
                entity: e,
                user: u,
                resolvers: resolver_ids.clone(),
                queries,
                stats: stats.clone(),
                sent_at: SimTime::ZERO,
                next_id: 1,
                calls: Driver::new(&opts.recover, derive_seed(seed, 0x0d11 + ci as u64)),
            }),
        );
    }

    assemble(harness, net, stats, users, n_clients * queries_each)
}
