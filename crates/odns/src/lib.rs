//! # dcp-odns — Oblivious DNS (§3.2.2)
//!
//! "Nearly all Internet connections are preceded by DNS lookups", and the
//! resolver that answers them can tie queries (●) to users (▲). ODNS and
//! ODoH split that knowledge: the party that knows *who* asked cannot read
//! the query; the party that reads the query does not know who asked.
//!
//! Paper table:
//!
//! | Client | Resolver | Oblivious Resolver | Origin |
//! |--------|----------|--------------------|--------|
//! | (▲, ●) | (▲, ⊙)   | (△, ⊙/●)           | (△, ●) |
//!
//! (*Origin* here is the authoritative server that ultimately answers —
//! it sees the query but only the oblivious resolver's address.)
//!
//! * [`odoh`] — ODoH-style encapsulation: the query is HPKE-sealed to the
//!   target's key and carries an ephemeral response key.
//! * [`odns_name`] — the original ODNS trick: the encrypted query hides
//!   inside the *name itself* (`<hex>.odns.example`), so an unmodified
//!   recursive resolver routes it to the oblivious authority.
//! * [`scenario`] — ODoH / direct-DNS runs on the simulator, plus the
//!   §5.1 striping experiment spreading queries over many resolvers.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod odns_name;
pub mod odoh;
pub mod population;
pub mod scenario;
pub mod serve;
pub mod types;

pub use scenario::{
    sweep, sweep_direct, DirectDns, DirectDnsConfig, OdnsLegacy, OdnsLegacyConfig, Odoh,
    OdohConfig, ScenarioReport,
};
pub use types::{declared_caps, direct_declared_caps};
