//! ODoH-style encapsulation: HPKE-sealed queries with an in-band ephemeral
//! response key.
//!
//! Wire shapes:
//! * query encapsulation = `HPKE-seal(target_pk, resp_pk ‖ dns_query)`,
//! * response encapsulation = `HPKE-seal(resp_pk, dns_response)`.
//!
//! The proxy only ever handles the opaque outer ciphertexts.

use dcp_crypto::hpke;
use dcp_crypto::{CryptoError, Result};
use dcp_dns::Message as DnsMessage;
use rand::Rng;

/// Client-side state kept across a query/response exchange.
pub struct QueryState {
    resp_kp: hpke::Keypair,
}

/// Client: encapsulate `query` for the target. Returns the opaque bytes
/// for the proxy and the state needed to open the response.
pub fn seal_query<R: Rng + ?Sized>(
    rng: &mut R,
    target_pk: &[u8; 32],
    query: &DnsMessage,
) -> Result<(Vec<u8>, QueryState)> {
    let resp_kp = hpke::Keypair::generate(rng);
    let mut plain = resp_kp.public.to_vec();
    plain.extend_from_slice(&query.encode());
    let sealed = hpke::seal(rng, target_pk, b"odoh query", b"", &plain)?;
    Ok((sealed, QueryState { resp_kp }))
}

/// Target: open an encapsulated query. Returns the DNS query and the
/// client's response key.
pub fn open_query(kp: &hpke::Keypair, bytes: &[u8]) -> Result<(DnsMessage, [u8; 32])> {
    let plain = hpke::open(kp, b"odoh query", b"", bytes)?;
    if plain.len() < 32 {
        return Err(CryptoError::Malformed);
    }
    let mut resp_pk = [0u8; 32];
    resp_pk.copy_from_slice(&plain[..32]);
    let query = DnsMessage::decode(&plain[32..]).map_err(|_| CryptoError::Malformed)?;
    Ok((query, resp_pk))
}

/// Target: encapsulate the response to the client's ephemeral key.
pub fn seal_response<R: Rng + ?Sized>(
    rng: &mut R,
    resp_pk: &[u8; 32],
    response: &DnsMessage,
) -> Result<Vec<u8>> {
    hpke::seal(rng, resp_pk, b"odoh response", b"", &response.encode())
}

/// Client: open the encapsulated response.
pub fn open_response(state: &QueryState, bytes: &[u8]) -> Result<DnsMessage> {
    let plain = hpke::open(&state.resp_kp, b"odoh response", b"", bytes)?;
    DnsMessage::decode(&plain).map_err(|_| CryptoError::Malformed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dcp_dns::{DnsName, Message, Rcode, RecordData, ResourceRecord, RrType};
    use rand::SeedableRng;

    fn rng() -> rand::rngs::StdRng {
        rand::rngs::StdRng::seed_from_u64(808)
    }

    #[test]
    fn full_odoh_roundtrip() {
        let mut rng = rng();
        let target = hpke::Keypair::generate(&mut rng);
        let query = Message::query(7, DnsName::parse("private.example.com").unwrap(), RrType::A);

        let (sealed, state) = seal_query(&mut rng, &target.public, &query).unwrap();
        // The sealed blob reveals nothing of the name (ciphertext only).
        assert!(
            !sealed.windows(7).any(|w| w == b"private"),
            "query name must not appear in ciphertext"
        );

        let (opened, resp_pk) = open_query(&target, &sealed).unwrap();
        assert_eq!(opened, query);

        let mut resp = Message::response_to(&query, Rcode::NoError);
        resp.answers.push(ResourceRecord {
            name: DnsName::parse("private.example.com").unwrap(),
            ttl: 60,
            data: RecordData::A([10, 1, 2, 3]),
        });
        let sealed_resp = seal_response(&mut rng, &resp_pk, &resp).unwrap();
        let got = open_response(&state, &sealed_resp).unwrap();
        assert_eq!(got, resp);
    }

    #[test]
    fn wrong_target_key_cannot_open() {
        let mut rng = rng();
        let target = hpke::Keypair::generate(&mut rng);
        let wrong = hpke::Keypair::generate(&mut rng);
        let query = Message::query(1, DnsName::parse("x.test").unwrap(), RrType::A);
        let (sealed, _) = seal_query(&mut rng, &target.public, &query).unwrap();
        assert!(open_query(&wrong, &sealed).is_err());
    }

    #[test]
    fn response_bound_to_query_state() {
        let mut rng = rng();
        let target = hpke::Keypair::generate(&mut rng);
        let query = Message::query(1, DnsName::parse("x.test").unwrap(), RrType::A);
        let (sealed1, _state1) = seal_query(&mut rng, &target.public, &query).unwrap();
        let (_sealed2, state2) = seal_query(&mut rng, &target.public, &query).unwrap();
        let (_, resp_pk1) = open_query(&target, &sealed1).unwrap();
        let resp = Message::response_to(&query, Rcode::NoError);
        let sealed_resp = seal_response(&mut rng, &resp_pk1, &resp).unwrap();
        // A different query's state cannot open it.
        assert!(open_response(&state2, &sealed_resp).is_err());
    }

    #[test]
    fn tampered_query_rejected() {
        let mut rng = rng();
        let target = hpke::Keypair::generate(&mut rng);
        let query = Message::query(1, DnsName::parse("x.test").unwrap(), RrType::A);
        let (mut sealed, _) = seal_query(&mut rng, &target.public, &query).unwrap();
        let last = sealed.len() - 1;
        sealed[last] ^= 1;
        assert!(open_query(&target, &sealed).is_err());
    }
}
