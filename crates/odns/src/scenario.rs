//! Simulator scenarios: ODoH, direct DNS (the coupled baseline), and the
//! §5.1 striping experiment.

use std::cell::RefCell;
use std::collections::{BTreeMap, HashSet};
use std::rc::Rc;

use dcp_core::sweep::derive_seed;
use dcp_core::table::DecouplingTable;
use dcp_core::{
    DataKind, EntityId, IdentityKind, InfoItem, Label, MetricsReport, RecoverConfig, RunOptions,
    Scenario, UserId, World,
};
use dcp_crypto::hpke;
use dcp_dns::workload::ZipfWorkload;
use dcp_dns::{DnsName, Message as DnsMessage, RecordData, RrType, Zone};
use dcp_faults::{FaultConfig, FaultLog};
use dcp_obs::MetricsHandle;
use dcp_recover::{wire, Attempt, Failover, HopMap, ReliableCall, RetryLinkage, TimerVerdict};
use dcp_simnet::{Ctx, LinkParams, Message, Network, Node, NodeId, SimTime, Trace};

use crate::odoh;
use rand::Rng as _;

/// Outcome of a DNS scenario run.
pub struct ScenarioReport {
    /// Knowledge base.
    pub world: World,
    /// Packet trace.
    pub trace: Trace,
    /// Queries answered end-to-end.
    pub answered: usize,
    /// Mean end-to-end query latency (µs).
    pub mean_query_us: f64,
    /// The client users.
    pub users: Vec<UserId>,
    /// Distinct query names each resolver saw (striping metric; one entry
    /// per resolver in node order; for ODoH the proxy sees zero).
    pub resolver_views: Vec<usize>,
    /// Total distinct names queried.
    pub distinct_names: usize,
    /// Faults injected during the run (empty when faults are disabled).
    pub fault_log: FaultLog,
    /// Run metrics (populated on instrumented runs).
    pub metrics: MetricsReport,
    /// The workload's target (`clients × queries_each`).
    pub expected: u64,
    /// Retry-linkage violations: attempts of one query an observer could
    /// correlate by ciphertext equality (empty is the pass).
    pub retry_linkage: Vec<String>,
}

impl dcp_core::ScenarioReport for ScenarioReport {
    fn world(&self) -> &World {
        &self.world
    }
    fn fault_log(&self) -> &FaultLog {
        &self.fault_log
    }
    fn metrics(&self) -> &MetricsReport {
        &self.metrics
    }
    fn completed_units(&self) -> u64 {
        self.answered as u64
    }
    fn expected_units(&self) -> Option<u64> {
        Some(self.expected)
    }
    fn retry_linkage(&self) -> &[String] {
        &self.retry_linkage
    }
}

impl ScenarioReport {
    /// Derive the §3.2.2 table for user `i` (ODoH runs).
    pub fn table(&self, i: usize) -> DecouplingTable {
        DecouplingTable::derive(
            &self.world,
            self.users[i],
            &["Client", "Resolver", "Oblivious Resolver", "Origin"],
        )
    }

    /// The paper's ODNS/ODoH table.
    pub fn paper_table() -> DecouplingTable {
        DecouplingTable::expect(&[
            ("Client", "(▲, ●)"),
            ("Resolver", "(▲, ⊙)"),
            ("Oblivious Resolver", "(△, ⊙/●)"),
            ("Origin", "(△, ●)"),
        ])
    }
}

// ------------------------------------------------------ unified Scenario --

/// Config for the [`Odoh`] scenario.
#[derive(Clone, Debug)]
pub struct OdohConfig {
    /// Number of clients.
    pub clients: usize,
    /// Queries each client issues.
    pub queries_each: usize,
    /// Backup proxies behind the primary, used only when the run's
    /// [`RecoverConfig`] is enabled: clients rotate across all proxies by
    /// sequence number (so every proxy serves calm traffic too) and the
    /// circuit breaker fails over between them. `0` (the default) keeps
    /// the classic single-proxy topology.
    pub backup_proxies: usize,
}

impl Default for OdohConfig {
    fn default() -> Self {
        OdohConfig {
            clients: 1,
            queries_each: 4,
            backup_proxies: 0,
        }
    }
}

impl OdohConfig {
    /// `clients` clients issuing `queries_each` queries each.
    pub fn new(clients: usize, queries_each: usize) -> Self {
        OdohConfig {
            clients,
            queries_each,
            backup_proxies: 0,
        }
    }

    /// Set the client count.
    pub fn clients(mut self, clients: usize) -> Self {
        self.clients = clients;
        self
    }

    /// Set the per-client query count.
    pub fn queries_each(mut self, queries_each: usize) -> Self {
        self.queries_each = queries_each;
        self
    }

    /// Set the backup-proxy count (effective only under recovery).
    pub fn backup_proxies(mut self, backup_proxies: usize) -> Self {
        self.backup_proxies = backup_proxies;
        self
    }
}

/// Config for the [`DirectDns`] scenario.
#[derive(Clone, Debug)]
pub struct DirectDnsConfig {
    /// Number of clients.
    pub clients: usize,
    /// Queries each client issues.
    pub queries_each: usize,
    /// Resolvers to stripe across (`1` = the coupled direct baseline).
    pub resolvers: usize,
}

impl Default for DirectDnsConfig {
    fn default() -> Self {
        DirectDnsConfig {
            clients: 1,
            queries_each: 4,
            resolvers: 1,
        }
    }
}

impl DirectDnsConfig {
    /// `clients` clients, `queries_each` queries each, striped across
    /// `resolvers` resolvers.
    pub fn new(clients: usize, queries_each: usize, resolvers: usize) -> Self {
        DirectDnsConfig {
            clients,
            queries_each,
            resolvers,
        }
    }

    /// Set the client count.
    pub fn clients(mut self, clients: usize) -> Self {
        self.clients = clients;
        self
    }

    /// Set the per-client query count.
    pub fn queries_each(mut self, queries_each: usize) -> Self {
        self.queries_each = queries_each;
        self
    }

    /// Set the resolver count.
    pub fn resolvers(mut self, resolvers: usize) -> Self {
        self.resolvers = resolvers;
        self
    }
}

/// Config for the [`OdnsLegacy`] scenario.
#[derive(Clone, Debug)]
pub struct OdnsLegacyConfig {
    /// Number of clients.
    pub clients: usize,
    /// Queries each client issues.
    pub queries_each: usize,
}

impl Default for OdnsLegacyConfig {
    fn default() -> Self {
        OdnsLegacyConfig {
            clients: 1,
            queries_each: 4,
        }
    }
}

impl OdnsLegacyConfig {
    /// `clients` clients issuing `queries_each` queries each.
    pub fn new(clients: usize, queries_each: usize) -> Self {
        OdnsLegacyConfig {
            clients,
            queries_each,
        }
    }

    /// Set the client count.
    pub fn clients(mut self, clients: usize) -> Self {
        self.clients = clients;
        self
    }

    /// Set the per-client query count.
    pub fn queries_each(mut self, queries_each: usize) -> Self {
        self.queries_each = queries_each;
        self
    }
}

/// §3.2.2 ODoH: clients query through proxy → target → origin.
pub struct Odoh;

impl Scenario for Odoh {
    type Config = OdohConfig;
    type Report = ScenarioReport;
    const NAME: &'static str = "odns";

    fn run_with(cfg: &OdohConfig, seed: u64, opts: &RunOptions) -> ScenarioReport {
        odoh_impl(cfg, seed, opts)
    }
}

/// Multi-seed sweep of [`Odoh`] on `exec`: one independent world per
/// derived seed, results identical for any conforming executor (pass
/// `dcp_sweep::ParallelExecutor` to fan across cores).
pub fn sweep(
    cfg: &OdohConfig,
    builder: &dcp_core::SweepBuilder,
    exec: &impl dcp_core::SweepExecutor,
    opts: &RunOptions,
) -> dcp_core::SweepRun<ScenarioReport> {
    Odoh::sweep(cfg, builder, exec, opts)
}

/// Multi-seed sweep of [`DirectDns`] (the coupled baseline) on `exec` —
/// see [`sweep`] for the determinism contract.
pub fn sweep_direct(
    cfg: &DirectDnsConfig,
    builder: &dcp_core::SweepBuilder,
    exec: &impl dcp_core::SweepExecutor,
    opts: &RunOptions,
) -> dcp_core::SweepRun<ScenarioReport> {
    DirectDns::sweep(cfg, builder, exec, opts)
}

/// Plain DNS (the coupled baseline), optionally striped across several
/// resolvers (§5.1).
pub struct DirectDns;

impl Scenario for DirectDns {
    type Config = DirectDnsConfig;
    type Report = ScenarioReport;
    const NAME: &'static str = "dns_direct";

    fn run_with(cfg: &DirectDnsConfig, seed: u64, opts: &RunOptions) -> ScenarioReport {
        direct_impl(cfg, seed, opts)
    }
}

/// The original ODNS (2019): obfuscated names through an unmodified
/// recursive resolver to the oblivious authority.
pub struct OdnsLegacy;

impl Scenario for OdnsLegacy {
    type Config = OdnsLegacyConfig;
    type Report = ScenarioReport;
    const NAME: &'static str = "odns_legacy";

    fn run_with(cfg: &OdnsLegacyConfig, seed: u64, opts: &RunOptions) -> ScenarioReport {
        legacy_impl(cfg, seed, opts)
    }
}

/// Zone suffix used by the synthetic workloads.
pub const SUFFIX: &str = "bench.example";

fn build_zone(workload: &ZipfWorkload) -> Zone {
    let mut zone = Zone::new(DnsName::parse(SUFFIX).unwrap());
    zone.add(
        DnsName::parse(SUFFIX).unwrap(),
        3600,
        RecordData::Soa {
            mname: DnsName::parse(&format!("ns1.{SUFFIX}")).unwrap(),
            rname: DnsName::parse(&format!("admin.{SUFFIX}")).unwrap(),
            serial: 1,
            minimum: 60,
        },
    );
    for i in 0..workload.domain_count() {
        let name = workload.domain(i).clone();
        let o = (i >> 8) as u8;
        zone.add(name, 300, RecordData::A([10, 0, o, (i & 0xff) as u8]));
    }
    zone
}

struct Stats {
    answered: usize,
    latencies: Vec<u64>,
    /// Per-resolver distinct names seen (indexed by resolver slot).
    resolver_views: Vec<HashSet<String>>,
    /// Ciphertext-equality check over every encrypted attempt (ODoH and
    /// legacy-ODNS clients record here; plain DNS makes no unlinkability
    /// claim and records nothing).
    linkage: RetryLinkage,
}

impl Stats {
    fn new(resolver_slots: usize) -> Self {
        Stats {
            answered: 0,
            latencies: Vec::new(),
            resolver_views: vec![HashSet::new(); resolver_slots],
            linkage: RetryLinkage::new(),
        }
    }
}

// ---------------------------------------------------------------- ODoH --

struct OdohClient {
    entity: EntityId,
    user: UserId,
    proxy: NodeId,
    target_pk: [u8; 32],
    target_key: dcp_core::KeyId,
    queries: Vec<DnsName>,
    state: Option<odoh::QueryState>,
    stats: Rc<RefCell<Stats>>,
    sent_at: SimTime,
    next_id: u16,
    /// Per-request ARQ (inert when the run's recovery is disabled).
    arq: ReliableCall,
    /// Proxy routes (primary + backups) with the circuit breaker.
    failover: Failover,
    /// RetryLinkage flow id (the client index).
    flow: u64,
    /// Open reliable calls, keyed by ARQ sequence number.
    inflight: BTreeMap<u64, OdohInflight>,
}

struct OdohInflight {
    name: DnsName,
    state: odoh::QueryState,
    route_ordinal: usize,
    sent_at: SimTime,
}

impl OdohClient {
    fn envelope_label(&self) -> Label {
        // Outer envelope: the proxy knows the client (▲_N) and that a DNS
        // query happened (⊙). Inner seal: the target reads the query
        // content (⊙/●) of an anonymous user (△).
        Label::items([
            InfoItem::sensitive_identity(self.user, IdentityKind::Any),
            InfoItem::plain_data(self.user, DataKind::DnsQuery),
        ])
        .and(
            Label::items([
                InfoItem::plain_identity(self.user, IdentityKind::Any),
                InfoItem::partial_data(self.user, DataKind::DnsQuery),
            ])
            .sealed(self.target_key),
        )
    }

    fn send_next(&mut self, ctx: &mut Ctx) {
        let Some(name) = self.queries.pop() else {
            return;
        };
        if self.arq.enabled() {
            let att = self.arq.begin().expect("enabled ARQ always begins");
            let sent_at = ctx.now;
            self.transmit(ctx, name, sent_at, att);
            return;
        }
        let q = DnsMessage::query(self.next_id, name, RrType::A);
        self.next_id = self.next_id.wrapping_add(1);
        ctx.world.crypto_op("hpke_seal");
        let (sealed, state) = odoh::seal_query(ctx.rng, &self.target_pk, &q).expect("seal");
        self.state = Some(state);
        self.sent_at = ctx.now;
        let label = self.envelope_label();
        ctx.send(self.proxy, Message::new(sealed, label));
    }

    /// One (re)transmission of reliable call `att.seq`: a *fresh* HPKE
    /// encapsulation every attempt (re-randomized retransmission — a
    /// replayed ciphertext would let any on-path observer link the
    /// attempts), framed with the ARQ sequence number outside the
    /// ciphertext, routed by the failover's deterministic choice.
    fn transmit(&mut self, ctx: &mut Ctx, name: DnsName, sent_at: SimTime, att: Attempt) {
        let q = DnsMessage::query(self.next_id, name.clone(), RrType::A);
        self.next_id = self.next_id.wrapping_add(1);
        ctx.world.crypto_op("hpke_seal");
        let (sealed, state) = odoh::seal_query(ctx.rng, &self.target_pk, &q).expect("seal");
        let pick = self
            .failover
            .route_for(att.seq, att.attempt, ctx.now.as_us());
        self.stats
            .borrow_mut()
            .linkage
            .record(self.flow, att.seq, att.attempt, &sealed);
        self.inflight.insert(
            att.seq,
            OdohInflight {
                name,
                state,
                route_ordinal: pick.ordinal,
                sent_at,
            },
        );
        let label = self.envelope_label();
        ctx.send(
            NodeId(pick.node),
            Message::new(wire::frame(att.seq, &sealed), label),
        );
        ctx.set_timer(att.timer_delay_us, att.token);
    }
}

// The target_key field is injected at construction; declared separately to
// keep send_next readable.
impl OdohClient {
    #[allow(clippy::too_many_arguments)]
    fn new(
        entity: EntityId,
        user: UserId,
        proxy: NodeId,
        target_pk: [u8; 32],
        target_key: dcp_core::KeyId,
        queries: Vec<DnsName>,
        stats: Rc<RefCell<Stats>>,
        recover: &RecoverConfig,
        proxy_routes: &[NodeId],
        jitter_seed: u64,
        flow: u64,
    ) -> Self {
        OdohClient {
            entity,
            user,
            proxy,
            target_pk,
            queries,
            state: None,
            stats,
            sent_at: SimTime::ZERO,
            next_id: 1,
            target_key,
            arq: ReliableCall::new(recover, jitter_seed),
            failover: Failover::new(proxy_routes.iter().map(|n| n.0).collect(), recover),
            flow,
            inflight: BTreeMap::new(),
        }
    }
}

impl Node for OdohClient {
    fn entity(&self) -> EntityId {
        self.entity
    }
    fn on_start(&mut self, ctx: &mut Ctx) {
        ctx.world.record(
            self.entity,
            InfoItem::sensitive_identity(self.user, IdentityKind::Any),
        );
        ctx.world.record(
            self.entity,
            InfoItem::sensitive_data(self.user, DataKind::DnsQuery),
        );
        self.send_next(ctx);
    }
    fn on_timer(&mut self, ctx: &mut Ctx, token: u64) {
        match self.arq.on_timer(token) {
            TimerVerdict::NotMine | TimerVerdict::Stale => {}
            TimerVerdict::Retry(att) => {
                let Some(entry) = self.inflight.get(&att.seq) else {
                    return;
                };
                let (name, sent_at, prev) =
                    (entry.name.clone(), entry.sent_at, entry.route_ordinal);
                if let Some(until) = self.failover.report_failure(prev, ctx.now.as_us()) {
                    dcp_recover::emit_quarantine(
                        ctx.world,
                        ctx.id().0,
                        self.failover.route(prev),
                        until,
                    );
                }
                dcp_recover::emit_retry(ctx.world, ctx.id().0, att.seq, att.attempt);
                let pick = self
                    .failover
                    .route_for(att.seq, att.attempt, ctx.now.as_us());
                if pick.ordinal != prev {
                    dcp_recover::emit_failover(
                        ctx.world,
                        ctx.id().0,
                        att.seq,
                        self.failover.route(prev),
                        pick.node,
                    );
                }
                self.transmit(ctx, name, sent_at, att);
            }
            TimerVerdict::Exhausted { seq, attempts } => {
                dcp_recover::emit_give_up(ctx.world, ctx.id().0, seq, attempts);
                self.inflight.remove(&seq);
                self.send_next(ctx);
            }
        }
    }
    fn on_message(&mut self, ctx: &mut Ctx, _from: NodeId, msg: Message) {
        if self.arq.enabled() {
            // Framed response: the echoed sequence number selects which
            // call's state to open against, so late responses to an
            // earlier query can never clobber a newer one.
            let Some((seq, body)) = wire::unframe(&msg.bytes) else {
                return;
            };
            let Some(entry) = self.inflight.get(&seq) else {
                return;
            };
            ctx.world.crypto_op("hpke_open");
            let Ok(resp) = odoh::open_response(&entry.state, body) else {
                return; // a response to a superseded attempt fails to open
            };
            if !resp.is_response {
                return;
            }
            if !self.arq.complete(seq) {
                return; // duplicated response: counted exactly once
            }
            self.failover.report_success(entry.route_ordinal);
            let sent_at = entry.sent_at;
            ctx.world.span("query", sent_at.as_us(), ctx.now.as_us());
            self.inflight.remove(&seq);
            let mut stats = self.stats.borrow_mut();
            stats.answered += 1;
            stats.latencies.push(ctx.now - sent_at);
            drop(stats);
            self.send_next(ctx);
            return;
        }
        // Only consume the in-flight state once a response actually opens
        // against it — duplicated or stale deliveries must not clobber a
        // newer query's state.
        let Some(state) = self.state.as_ref() else {
            return;
        };
        ctx.world.crypto_op("hpke_open");
        let Ok(resp) = odoh::open_response(state, &msg.bytes) else {
            return;
        };
        if !resp.is_response {
            return;
        }
        self.state = None;
        ctx.world
            .span("query", self.sent_at.as_us(), ctx.now.as_us());
        let mut stats = self.stats.borrow_mut();
        stats.answered += 1;
        stats.latencies.push(ctx.now - self.sent_at);
        drop(stats);
        self.send_next(ctx);
    }
}

struct ProxyNode {
    entity: EntityId,
    target: NodeId,
    /// Pending client per in-flight query (FIFO per arrival;
    /// recovery-disabled path only).
    pending: Vec<NodeId>,
    /// Is the run's recovery layer on (same [`RunOptions`] every node)?
    recover: bool,
    /// Recovery path: hop-local sequence per forwarded query. The proxy
    /// must not forward the client's own counter — a client-scoped
    /// counter in the clear would hand the target a stable cross-query
    /// pseudonym, undoing the decoupling.
    hop: HopMap<(NodeId, u64)>,
}

impl Node for ProxyNode {
    fn entity(&self) -> EntityId {
        self.entity
    }
    fn on_message(&mut self, ctx: &mut Ctx, from: NodeId, msg: Message) {
        if from == self.target {
            if self.recover {
                // The target echoed the proxy's hop-local number: map it
                // back to (client, client seq) and re-frame. A duplicated
                // response finds its entry consumed and is dropped.
                let Some((pseq, body)) = wire::unframe(&msg.bytes) else {
                    return;
                };
                let Some((client, cseq)) = self.hop.take(pseq) else {
                    return;
                };
                let framed = wire::frame(cseq, body);
                ctx.send(client, Message::new(framed, msg.label));
                return;
            }
            // Response going back: forward to the waiting client. A
            // duplicated response with no waiter is dropped.
            let Some(client) = self.pending.pop() else {
                return;
            };
            ctx.send(client, msg);
        } else {
            // Strip the client-identifying envelope: the target sees only
            // the sealed inner part plus an anonymous-aggregate marker.
            let inner = match &msg.label {
                Label::Bundle(parts) if parts.len() == 2 => parts[1].clone(),
                other => other.clone(),
            };
            if self.recover {
                let Some((cseq, body)) = wire::unframe(&msg.bytes) else {
                    return;
                };
                let pseq = self.hop.insert((from, cseq));
                let framed = wire::frame(pseq, body);
                ctx.send(self.target, Message::new(framed, inner));
                return;
            }
            self.pending.insert(0, from);
            ctx.send(self.target, Message::new(msg.bytes, inner));
        }
    }
}

struct TargetNode {
    entity: EntityId,
    kp: hpke::Keypair,
    origin: NodeId,
    client_resp_key: dcp_core::KeyId,
    /// (proxy node, response key, subject) awaiting origin answers
    /// (FIFO; recovery-disabled path only).
    pending: Vec<(NodeId, [u8; 32], UserId)>,
    /// Maps query names to subjects for label construction (the target
    /// cannot name users — this is scenario bookkeeping keyed by what the
    /// target *does* see).
    subject_of_query: std::collections::HashMap<String, UserId>,
    /// Is the run's recovery layer on?
    recover: bool,
    /// Recovery path: awaiting origin answers keyed by the hop-local
    /// sequence (echoed by the origin), so drops between target and
    /// origin can never mispair a late answer with the wrong waiter.
    pending_by_seq: BTreeMap<u64, (NodeId, [u8; 32], UserId)>,
}

impl Node for TargetNode {
    fn entity(&self) -> EntityId {
        self.entity
    }
    fn on_message(&mut self, ctx: &mut Ctx, from: NodeId, msg: Message) {
        if from == self.origin {
            let (seq, body) = if self.recover {
                match wire::unframe(&msg.bytes) {
                    Some((s, b)) => (Some(s), b),
                    None => return,
                }
            } else {
                (None, &msg.bytes[..])
            };
            let Ok(resp) = DnsMessage::decode(body) else {
                return;
            };
            let waiter = match seq {
                Some(s) => self.pending_by_seq.remove(&s),
                None => self.pending.pop(),
            };
            let Some((proxy, resp_pk, user)) = waiter else {
                return; // duplicated origin answer: nothing awaits it
            };
            ctx.world.crypto_op("hpke_seal");
            let Ok(sealed) = odoh::seal_response(ctx.rng, &resp_pk, &resp) else {
                return; // cannot seal: never answer in plaintext
            };
            // Sealed to the client's ephemeral key: intermediaries learn
            // nothing; the client learns its own answer (●, which it is
            // entitled to).
            let label = Label::items([InfoItem::sensitive_data(user, DataKind::DnsQuery)])
                .sealed(self.client_resp_key);
            let bytes = match seq {
                Some(s) => wire::frame(s, &sealed),
                None => sealed,
            };
            ctx.send(proxy, Message::new(bytes, label));
            return;
        }
        // Encapsulated query from the proxy. Undecryptable (tampered or
        // duplicated-and-replayed) queries are dropped, never answered.
        let (seq, body) = if self.recover {
            match wire::unframe(&msg.bytes) {
                Some((s, b)) => (Some(s), b),
                None => return,
            }
        } else {
            (None, &msg.bytes[..])
        };
        ctx.world.crypto_op("hpke_open");
        let Ok((query, resp_pk)) = odoh::open_query(&self.kp, body) else {
            return;
        };
        let Some(q0) = query.questions.first() else {
            return;
        };
        let qname = q0.qname.to_string();
        let Some(&user) = self.subject_of_query.get(&qname) else {
            return;
        };
        match seq {
            Some(s) => {
                self.pending_by_seq.insert(s, (from, resp_pk, user));
            }
            None => self.pending.insert(0, (from, resp_pk, user)),
        }
        // Plaintext recursive query to the authoritative origin: the
        // origin sees the query (●) from the resolver's address (△).
        let label = Label::items([
            InfoItem::plain_identity(user, IdentityKind::Any),
            InfoItem::sensitive_data(user, DataKind::DnsQuery),
        ]);
        let bytes = match seq {
            Some(s) => wire::frame(s, &query.encode()),
            None => query.encode(),
        };
        ctx.send(self.origin, Message::new(bytes, label));
    }
}

struct OriginNode {
    entity: EntityId,
    zone: Zone,
    /// Under recovery the origin is a pure echo responder: unframe the
    /// hop sequence, answer, re-frame — statelessly idempotent, so
    /// retransmissions just get re-answered.
    recover: bool,
}

impl Node for OriginNode {
    fn entity(&self) -> EntityId {
        self.entity
    }
    fn on_message(&mut self, ctx: &mut Ctx, from: NodeId, msg: Message) {
        let (seq, body) = if self.recover {
            match wire::unframe(&msg.bytes) {
                Some((s, b)) => (Some(s), b),
                None => return,
            }
        } else {
            (None, &msg.bytes[..])
        };
        let Ok(query) = DnsMessage::decode(body) else {
            return;
        };
        let resp = self.zone.answer(&query);
        // The response repeats the query content back to the asker; it
        // carries no *new* subject information beyond what the query
        // already established, so label it Public.
        let bytes = match seq {
            Some(s) => wire::frame(s, &resp.encode()),
            None => resp.encode(),
        };
        ctx.send(from, Message::new(bytes, Label::Public));
    }
}

/// The target's per-client response key (one `KeyId` stands for "keys only
/// clients hold"); stored on the node for label construction.
impl TargetNode {
    fn new(
        entity: EntityId,
        kp: hpke::Keypair,
        origin: NodeId,
        client_resp_key: dcp_core::KeyId,
        subject_of_query: std::collections::HashMap<String, UserId>,
        recover: bool,
    ) -> Self {
        TargetNode {
            entity,
            kp,
            origin,
            pending: Vec::new(),
            subject_of_query,
            client_resp_key,
            recover,
            pending_by_seq: BTreeMap::new(),
        }
    }
}

/// Run the ODoH scenario: `n_clients` clients issue `queries_each`
/// Zipf-sampled queries through proxy → target → origin.
#[deprecated(
    note = "use the unified Scenario API: `Odoh::run(&OdohConfig::new(clients, queries_each), seed)`"
)]
pub fn run_odoh(n_clients: usize, queries_each: usize, seed: u64) -> ScenarioReport {
    Odoh::run(&OdohConfig::new(n_clients, queries_each), seed)
}

/// Run the ODoH scenario under a fault schedule.
#[deprecated(note = "use the unified Scenario API: `Odoh::run_with_faults(&cfg, seed, faults)`")]
pub fn run_odoh_with_faults(
    n_clients: usize,
    queries_each: usize,
    seed: u64,
    faults: &FaultConfig,
) -> ScenarioReport {
    Odoh::run_with_faults(&OdohConfig::new(n_clients, queries_each), seed, faults)
}

fn odoh_impl(cfg: &OdohConfig, seed: u64, opts: &RunOptions) -> ScenarioReport {
    use rand::SeedableRng;
    let (n_clients, queries_each) = (cfg.clients, cfg.queries_each);
    let mut setup_rng = rand::rngs::StdRng::seed_from_u64(seed ^ 0x0d0a);
    let workload = ZipfWorkload::new(200, 1.0, SUFFIX);
    let zone = build_zone(&workload);

    let mut world = World::new();
    let obs = MetricsHandle::install_if(&mut world, opts.observe, Odoh::NAME, seed);
    let isp_org = world.add_org("isp");
    let odns_org = world.add_org("oblivious-operator");
    let auth_org = world.add_org("authoritative");
    let user_org = world.add_org("users");
    let proxy_e = world.add_entity("Resolver", isp_org, None);
    let target_e = world.add_entity("Oblivious Resolver", odns_org, None);
    let origin_e = world.add_entity("Origin", auth_org, None);

    // Backup proxies exist only under recovery: each is an independent
    // operator (own org) so failing over genuinely changes trust, and
    // clients rotate across all of them even in calm runs — a backup
    // that only ever saw failure traffic would accrue knowledge only
    // under faults, breaking the DST's table-equality bar.
    let recover_on = opts.recover.enabled;
    let n_backups = if recover_on { cfg.backup_proxies } else { 0 };
    let mut backup_entities = Vec::new();
    for i in 0..n_backups {
        let org = world.add_org(&format!("isp-backup-{}", i + 1));
        backup_entities.push(world.add_entity(&format!("Resolver {}", i + 2), org, None));
    }

    let target_kp = hpke::Keypair::generate(&mut setup_rng);

    let mut users = Vec::new();
    let mut client_entities = Vec::new();
    for i in 0..n_clients {
        let u = world.add_user();
        let name = if i == 0 {
            "Client".to_string()
        } else {
            format!("Client {}", i + 1)
        };
        client_entities.push(world.add_entity(&name, user_org, Some(u)));
        users.push(u);
    }

    // Key capabilities: the target holds its HPKE key; clients hold their
    // response keys. (Clients' own ledgers are seeded directly, so the
    // response KeyId is granted to no third party.)
    let target_key = world.new_key(&[target_e]);
    let client_resp_key = world.new_key(&[]);

    // Assign each client a disjoint slice of names so the "which subject
    // is this query about" bookkeeping is unambiguous.
    let mut subject_of_query = std::collections::HashMap::new();
    let mut per_client_queries: Vec<Vec<DnsName>> = Vec::new();
    for (ci, &u) in users.iter().enumerate() {
        let mut qs = Vec::new();
        for k in 0..queries_each {
            let name = workload.domain((ci * queries_each + k) % workload.domain_count());
            subject_of_query.insert(name.to_string(), u);
            qs.push(name.clone());
        }
        per_client_queries.push(qs);
    }

    let stats = Rc::new(RefCell::new(Stats::new(1)));

    let mut net = Network::new(world, seed);
    net.set_default_link(LinkParams::wan_ms(8));
    net.enable_faults(opts.faults.clone(), seed);

    let proxy_id = NodeId(0);
    let target_id = NodeId(1);
    let origin_id = NodeId(2);
    net.add_node(Box::new(ProxyNode {
        entity: proxy_e,
        target: target_id,
        pending: Vec::new(),
        recover: recover_on,
        hop: HopMap::new(),
    }));
    net.mark_relay(proxy_id);
    net.add_node(Box::new(TargetNode::new(
        target_e,
        target_kp.clone(),
        origin_id,
        client_resp_key,
        subject_of_query,
        recover_on,
    )));
    net.add_node(Box::new(OriginNode {
        entity: origin_e,
        zone,
        recover: recover_on,
    }));
    let mut proxy_routes = vec![proxy_id];
    for (i, &e) in backup_entities.iter().enumerate() {
        let id = NodeId(3 + i);
        net.add_node(Box::new(ProxyNode {
            entity: e,
            target: target_id,
            pending: Vec::new(),
            recover: recover_on,
            hop: HopMap::new(),
        }));
        net.mark_relay(id);
        proxy_routes.push(id);
    }
    for (ci, ((&u, &e), queries)) in users
        .iter()
        .zip(client_entities.iter())
        .zip(per_client_queries)
        .enumerate()
    {
        net.add_node(Box::new(OdohClient::new(
            e,
            u,
            proxy_id,
            target_kp.public,
            target_key,
            queries,
            stats.clone(),
            &opts.recover,
            &proxy_routes,
            derive_seed(seed, 0x0a10 + ci as u64),
            ci as u64,
        )));
    }
    // Grant clients their response key so their observations decrypt.
    for &e in &client_entities {
        net.world_mut().grant_key(e, client_resp_key);
    }

    assemble(net, stats, users, n_clients * queries_each, obs)
}

// -------------------------------------------------- direct & striping --

struct DirectClient {
    entity: EntityId,
    user: UserId,
    resolvers: Vec<NodeId>,
    queries: Vec<DnsName>,
    stats: Rc<RefCell<Stats>>,
    sent_at: SimTime,
    next_id: u16,
    /// Per-request ARQ (inert when the run's recovery is disabled). No
    /// failover list: striping already re-draws the resolver per attempt.
    arq: ReliableCall,
    inflight: BTreeMap<u64, DirectInflight>,
}

struct DirectInflight {
    name: DnsName,
    sent_at: SimTime,
}

impl DirectClient {
    fn query_label(&self) -> Label {
        // Plain DNS: the resolver sees both who (▲_N) and what (●).
        Label::items([
            InfoItem::sensitive_identity(self.user, IdentityKind::Any),
            InfoItem::sensitive_data(self.user, DataKind::DnsQuery),
        ])
    }

    fn send_next(&mut self, ctx: &mut Ctx) {
        let Some(name) = self.queries.pop() else {
            return;
        };
        if self.arq.enabled() {
            let att = self.arq.begin().expect("enabled ARQ always begins");
            let sent_at = ctx.now;
            self.transmit(ctx, name, sent_at, att);
            return;
        }
        // Striping: pick a resolver uniformly at random (§5.1 / ref [18]).
        let idx = ctx.rng.gen_range(0..self.resolvers.len());
        let q = DnsMessage::query(self.next_id, name, RrType::A);
        self.next_id = self.next_id.wrapping_add(1);
        self.sent_at = ctx.now;
        let label = self.query_label();
        ctx.send(self.resolvers[idx], Message::new(q.encode(), label));
    }

    /// One (re)transmission of reliable call `att.seq`. Plain DNS has no
    /// ciphertext to re-randomize (the query is readable anyway — this is
    /// the coupled baseline), so nothing is recorded into the linkage
    /// check; the striping draw is simply repeated per attempt.
    fn transmit(&mut self, ctx: &mut Ctx, name: DnsName, sent_at: SimTime, att: Attempt) {
        let idx = ctx.rng.gen_range(0..self.resolvers.len());
        let q = DnsMessage::query(self.next_id, name.clone(), RrType::A);
        self.next_id = self.next_id.wrapping_add(1);
        self.inflight
            .insert(att.seq, DirectInflight { name, sent_at });
        let label = self.query_label();
        ctx.send(
            self.resolvers[idx],
            Message::new(wire::frame(att.seq, &q.encode()), label),
        );
        ctx.set_timer(att.timer_delay_us, att.token);
    }
}

impl Node for DirectClient {
    fn entity(&self) -> EntityId {
        self.entity
    }
    fn on_start(&mut self, ctx: &mut Ctx) {
        ctx.world.record(
            self.entity,
            InfoItem::sensitive_identity(self.user, IdentityKind::Any),
        );
        ctx.world.record(
            self.entity,
            InfoItem::sensitive_data(self.user, DataKind::DnsQuery),
        );
        self.send_next(ctx);
    }
    fn on_timer(&mut self, ctx: &mut Ctx, token: u64) {
        match self.arq.on_timer(token) {
            TimerVerdict::NotMine | TimerVerdict::Stale => {}
            TimerVerdict::Retry(att) => {
                let Some(entry) = self.inflight.get(&att.seq) else {
                    return;
                };
                let (name, sent_at) = (entry.name.clone(), entry.sent_at);
                dcp_recover::emit_retry(ctx.world, ctx.id().0, att.seq, att.attempt);
                self.transmit(ctx, name, sent_at, att);
            }
            TimerVerdict::Exhausted { seq, attempts } => {
                dcp_recover::emit_give_up(ctx.world, ctx.id().0, seq, attempts);
                self.inflight.remove(&seq);
                self.send_next(ctx);
            }
        }
    }
    fn on_message(&mut self, ctx: &mut Ctx, _from: NodeId, msg: Message) {
        if self.arq.enabled() {
            let Some((seq, body)) = wire::unframe(&msg.bytes) else {
                return;
            };
            let Some(entry) = self.inflight.get(&seq) else {
                return;
            };
            let Ok(resp) = DnsMessage::decode(body) else {
                return;
            };
            if !resp.is_response {
                return;
            }
            if !self.arq.complete(seq) {
                return; // duplicated response: counted exactly once
            }
            let sent_at = entry.sent_at;
            ctx.world.span("query", sent_at.as_us(), ctx.now.as_us());
            self.inflight.remove(&seq);
            let mut stats = self.stats.borrow_mut();
            stats.answered += 1;
            stats.latencies.push(ctx.now - sent_at);
            drop(stats);
            self.send_next(ctx);
            return;
        }
        // Undecodable or non-response deliveries (duplication faults) are
        // ignored rather than crashing the client.
        let Ok(resp) = DnsMessage::decode(&msg.bytes) else {
            return;
        };
        if !resp.is_response {
            return;
        }
        ctx.world
            .span("query", self.sent_at.as_us(), ctx.now.as_us());
        let mut stats = self.stats.borrow_mut();
        stats.answered += 1;
        stats.latencies.push(ctx.now - self.sent_at);
        drop(stats);
        self.send_next(ctx);
    }
}

struct PlainResolver {
    entity: EntityId,
    slot: usize,
    origin: NodeId,
    pending: Vec<NodeId>,
    stats: Rc<RefCell<Stats>>,
    /// Is the run's recovery layer on?
    recover: bool,
    /// Recovery path: hop-local sequence per forwarded query (client
    /// sequence spaces collide across clients).
    hop: HopMap<(NodeId, u64)>,
}

impl Node for PlainResolver {
    fn entity(&self) -> EntityId {
        self.entity
    }
    fn on_message(&mut self, ctx: &mut Ctx, from: NodeId, msg: Message) {
        if from == self.origin {
            if self.recover {
                let Some((rseq, body)) = wire::unframe(&msg.bytes) else {
                    return;
                };
                let Some((client, cseq)) = self.hop.take(rseq) else {
                    return;
                };
                let framed = wire::frame(cseq, body);
                ctx.send(client, Message::new(framed, msg.label));
                return;
            }
            // A duplicated origin answer with no waiter is dropped.
            let Some(client) = self.pending.pop() else {
                return;
            };
            ctx.send(client, msg);
            return;
        }
        if self.recover {
            let Some((cseq, body)) = wire::unframe(&msg.bytes) else {
                return;
            };
            let Ok(query) = DnsMessage::decode(body) else {
                return;
            };
            let Some(q0) = query.questions.first() else {
                return;
            };
            self.stats.borrow_mut().resolver_views[self.slot].insert(q0.qname.to_string());
            let rseq = self.hop.insert((from, cseq));
            let framed = wire::frame(rseq, body);
            // Forward upstream; the label travels as-is (the resolver
            // already saw everything — plain DNS hides nothing).
            ctx.send(self.origin, Message::new(framed, msg.label));
            return;
        }
        let Ok(query) = DnsMessage::decode(&msg.bytes) else {
            return;
        };
        let Some(q0) = query.questions.first() else {
            return;
        };
        self.stats.borrow_mut().resolver_views[self.slot].insert(q0.qname.to_string());
        self.pending.insert(0, from);
        // Forward upstream; the label travels as-is (the resolver already
        // saw everything — plain DNS hides nothing).
        ctx.send(self.origin, msg);
    }
}

/// Run plain DNS through `n_resolvers` resolvers with queries striped
/// uniformly across them. `n_resolvers = 1` is the coupled direct
/// baseline.
#[deprecated(
    note = "use the unified Scenario API: `DirectDns::run(&DirectDnsConfig::new(clients, queries_each, resolvers), seed)`"
)]
pub fn run_direct(
    n_clients: usize,
    queries_each: usize,
    n_resolvers: usize,
    seed: u64,
) -> ScenarioReport {
    DirectDns::run(
        &DirectDnsConfig::new(n_clients, queries_each, n_resolvers),
        seed,
    )
}

fn direct_impl(cfg: &DirectDnsConfig, seed: u64, opts: &RunOptions) -> ScenarioReport {
    use rand::SeedableRng;
    let (n_clients, queries_each, n_resolvers) = (cfg.clients, cfg.queries_each, cfg.resolvers);
    let mut wl_rng = rand::rngs::StdRng::seed_from_u64(seed ^ 0xd1e7);
    let workload = ZipfWorkload::new(200, 1.0, SUFFIX);
    let zone = build_zone(&workload);

    let mut world = World::new();
    let obs = MetricsHandle::install_if(&mut world, opts.observe, DirectDns::NAME, seed);
    let auth_org = world.add_org("authoritative");
    let user_org = world.add_org("users");
    let origin_e = world.add_entity("Origin", auth_org, None);
    let mut resolver_entities = Vec::new();
    for i in 0..n_resolvers {
        let org = world.add_org(&format!("resolver-op-{i}"));
        let name = if i == 0 {
            "Resolver".to_string()
        } else {
            format!("Resolver {}", i + 1)
        };
        resolver_entities.push(world.add_entity(&name, org, None));
    }

    let mut users = Vec::new();
    let mut client_entities = Vec::new();
    for i in 0..n_clients {
        let u = world.add_user();
        let name = if i == 0 {
            "Client".to_string()
        } else {
            format!("Client {}", i + 1)
        };
        client_entities.push(world.add_entity(&name, user_org, Some(u)));
        users.push(u);
    }

    let stats = Rc::new(RefCell::new(Stats::new(n_resolvers)));

    let mut net = Network::new(world, seed);
    net.set_default_link(LinkParams::wan_ms(8));
    net.enable_faults(opts.faults.clone(), seed);

    let recover_on = opts.recover.enabled;
    let origin_id = NodeId(0);
    net.add_node(Box::new(OriginNode {
        entity: origin_e,
        zone,
        recover: recover_on,
    }));
    let resolver_ids: Vec<NodeId> = (0..n_resolvers).map(|i| NodeId(1 + i)).collect();
    for (i, &e) in resolver_entities.iter().enumerate() {
        net.add_node(Box::new(PlainResolver {
            entity: e,
            slot: i,
            origin: origin_id,
            pending: Vec::new(),
            stats: stats.clone(),
            recover: recover_on,
            hop: HopMap::new(),
        }));
    }
    for (ci, (&u, &e)) in users.iter().zip(client_entities.iter()).enumerate() {
        let queries = workload.stream(&mut wl_rng, queries_each);
        net.add_node(Box::new(DirectClient {
            entity: e,
            user: u,
            resolvers: resolver_ids.clone(),
            queries,
            stats: stats.clone(),
            sent_at: SimTime::ZERO,
            next_id: 1,
            arq: ReliableCall::new(&opts.recover, derive_seed(seed, 0x0d11 + ci as u64)),
            inflight: BTreeMap::new(),
        }));
    }

    assemble(net, stats, users, n_clients * queries_each, obs)
}

/// The shared run tail for every DNS variant: run the network to
/// quiescence, harvest the fault log, finalize metrics, and fold the
/// stats into a [`ScenarioReport`]. Factoring this out keeps the direct
/// and legacy paths on the same fail-closed harvesting as ODoH (they
/// previously returned an empty `FaultLog` regardless of injections).
fn assemble(
    mut net: Network,
    stats: Rc<RefCell<Stats>>,
    users: Vec<UserId>,
    expected_queries: usize,
    obs: Option<MetricsHandle>,
) -> ScenarioReport {
    net.run();
    let fault_log = net.fault_log();
    let (mut world, trace) = net.into_parts();
    let metrics = MetricsHandle::finish_opt(obs.as_ref(), &mut world);
    let stats = Rc::try_unwrap(stats).map_err(|_| ()).unwrap().into_inner();
    finish_report(
        world,
        trace,
        stats,
        users,
        expected_queries,
        fault_log,
        metrics,
    )
}

#[allow(clippy::too_many_arguments)]
fn finish_report(
    world: World,
    trace: Trace,
    stats: Stats,
    users: Vec<UserId>,
    expected_queries: usize,
    fault_log: FaultLog,
    metrics: MetricsReport,
) -> ScenarioReport {
    let mean = if stats.latencies.is_empty() {
        0.0
    } else {
        stats.latencies.iter().sum::<u64>() as f64 / stats.latencies.len() as f64
    };
    let mut all_names: HashSet<String> = HashSet::new();
    for v in &stats.resolver_views {
        all_names.extend(v.iter().cloned());
    }
    ScenarioReport {
        world,
        trace,
        answered: stats.answered,
        mean_query_us: mean,
        users,
        resolver_views: stats.resolver_views.iter().map(HashSet::len).collect(),
        distinct_names: all_names.len(),
        fault_log,
        metrics,
        expected: expected_queries as u64,
        retry_linkage: stats.linkage.violations(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dcp_core::{analyze, collusion::entity_collusion};

    fn run_odoh(clients: usize, queries_each: usize, seed: u64) -> ScenarioReport {
        Odoh::run(&OdohConfig::new(clients, queries_each), seed)
    }

    fn run_direct(
        clients: usize,
        queries_each: usize,
        resolvers: usize,
        seed: u64,
    ) -> ScenarioReport {
        DirectDns::run(
            &DirectDnsConfig::new(clients, queries_each, resolvers),
            seed,
        )
    }

    #[test]
    fn odoh_reproduces_paper_table() {
        let report = run_odoh(1, 3, 21);
        assert_eq!(report.answered, 3);
        let derived = report.table(0);
        let expected = ScenarioReport::paper_table();
        assert_eq!(
            derived,
            expected,
            "diff:\n{}",
            derived.diff(&expected).unwrap_or_default()
        );
        assert!(analyze(&report.world).decoupled);
    }

    #[test]
    fn odoh_needs_collusion_to_recouple() {
        let report = run_odoh(1, 2, 22);
        let rep = entity_collusion(&report.world, report.users[0], 3);
        assert_eq!(
            rep.min_coalition_size,
            Some(2),
            "{:?}",
            rep.minimal_coalitions
        );
    }

    #[test]
    fn direct_dns_is_coupled() {
        let report = run_direct(1, 3, 1, 23);
        assert_eq!(report.answered, 3);
        let verdict = analyze(&report.world);
        assert!(!verdict.decoupled);
        assert!(verdict.offenders().contains(&"Resolver"));
        // The single resolver needs no collusion at all.
        let rep = entity_collusion(&report.world, report.users[0], 2);
        assert_eq!(rep.min_coalition_size, Some(1));
    }

    #[test]
    fn odoh_costs_more_latency_than_direct() {
        let odoh = run_odoh(1, 4, 24);
        let direct = run_direct(1, 4, 1, 24);
        assert!(
            odoh.mean_query_us > direct.mean_query_us,
            "odoh {} vs direct {}",
            odoh.mean_query_us,
            direct.mean_query_us
        );
    }

    #[test]
    fn striping_reduces_per_resolver_view() {
        let striped = run_direct(2, 30, 4, 25);
        assert_eq!(striped.answered, 60);
        let total = striped.distinct_names;
        // Each resolver sees a strict subset of the name space.
        for &v in &striped.resolver_views {
            assert!(v < total, "view {v} of {total}");
            assert!(v > 0, "uniform striping uses every resolver");
        }
    }

    #[test]
    fn plain_run_leaves_metrics_disabled() {
        let report = run_odoh(1, 2, 26);
        assert!(!report.metrics.enabled);
        assert_eq!(report.metrics.messages_sent, 0);
    }

    #[test]
    fn instrumented_run_collects_metrics() {
        let report = Odoh::run_instrumented(&OdohConfig::new(1, 3), 21);
        assert_eq!(report.answered, 3);
        assert!(report.metrics.enabled);
        assert_eq!(report.metrics.scenario, "odns");
        assert!(
            report.metrics.wire_accounting_holds(),
            "{:?}",
            report.metrics
        );
        assert_eq!(
            report.metrics.span_count("query"),
            report.answered,
            "one query span per answered query"
        );
        // Client seal + target open per query, plus target seal + client
        // open per answer.
        assert_eq!(report.metrics.crypto_ops["hpke_seal"], 6);
        assert_eq!(report.metrics.crypto_ops["hpke_open"], 6);
        assert!(report.metrics.knowledge_by_entity.contains_key("Resolver"));
        assert_eq!(
            report.metrics.messages_delivered as usize,
            report.trace.len(),
            "trace and metrics agree on delivered wire messages"
        );
    }

    #[test]
    fn instrumentation_does_not_change_outcomes() {
        let plain = run_odoh(1, 3, 27);
        let inst = Odoh::run_instrumented(&OdohConfig::new(1, 3), 27);
        assert_eq!(plain.answered, inst.answered);
        assert_eq!(plain.mean_query_us, inst.mean_query_us);
        assert_eq!(plain.trace.len(), inst.trace.len());
        assert_eq!(plain.table(0), inst.table(0));
    }

    #[test]
    fn direct_runs_support_faults_now() {
        use dcp_faults::FaultConfig;
        let report = DirectDns::run_with_faults(
            &DirectDnsConfig::new(2, 10, 2),
            29,
            &FaultConfig::moderate(),
        );
        assert!(
            !report.fault_log.is_empty(),
            "moderate preset injects faults on the direct path"
        );
    }

    #[test]
    fn recovered_harsh_odoh_completes_with_baseline_tables() {
        use dcp_core::ScenarioReport as _;
        use dcp_faults::dst::KnowledgeFingerprint;
        use dcp_faults::FaultConfig;
        let cfg = OdohConfig::new(2, 4).backup_proxies(1);
        let calm = Odoh::run_with(&cfg, 31, &RunOptions::recovered(&FaultConfig::calm()));
        let harsh = Odoh::run_with(&cfg, 31, &RunOptions::recovered(&FaultConfig::harsh()));
        assert_eq!(calm.answered, 8, "calm recovered run answers everything");
        assert_eq!(
            harsh.answered as u64,
            harsh.expected_units().unwrap(),
            "under harsh faults the recovery layer still finishes the workload"
        );
        assert!(!harsh.fault_log.is_empty(), "harsh actually injected");
        assert!(
            harsh.retry_linkage().is_empty(),
            "re-randomized retries are never linkable by ciphertext equality: {:?}",
            harsh.retry_linkage()
        );
        assert_eq!(
            KnowledgeFingerprint::of(&harsh.world),
            KnowledgeFingerprint::of(&calm.world),
            "recovery must not change anyone's knowledge ledger"
        );
        assert_eq!(harsh.table(0), calm.table(0));
    }

    #[test]
    fn recovered_harsh_legacy_and_direct_complete() {
        use dcp_core::ScenarioReport as _;
        use dcp_faults::FaultConfig;
        let opts = RunOptions::recovered(&FaultConfig::harsh());
        let legacy = OdnsLegacy::run_with(&OdnsLegacyConfig::new(1, 4), 33, &opts);
        assert_eq!(legacy.answered as u64, legacy.expected_units().unwrap());
        assert!(legacy.retry_linkage().is_empty());
        let direct = DirectDns::run_with(&DirectDnsConfig::new(2, 5, 2), 34, &opts);
        assert_eq!(direct.answered as u64, direct.expected_units().unwrap());
    }

    #[test]
    fn recovery_emits_observable_retry_metrics() {
        use dcp_core::RecoverConfig;
        use dcp_faults::FaultConfig;
        let opts = RunOptions::observed_with_faults(&FaultConfig::harsh())
            .with_recovery(&RecoverConfig::standard());
        let report = Odoh::run_with(&OdohConfig::new(1, 6).backup_proxies(1), 35, &opts);
        assert!(report.metrics.enabled);
        assert!(
            report.metrics.recovery_retries > 0,
            "harsh faults should force at least one retransmission: {:?}",
            report.metrics
        );
        assert_eq!(report.answered, 6);
    }

    #[test]
    fn recovered_runs_are_deterministic() {
        use dcp_faults::FaultConfig;
        let cfg = OdohConfig::new(1, 4).backup_proxies(1);
        let opts = RunOptions::recovered(&FaultConfig::harsh());
        let a = Odoh::run_with(&cfg, 41, &opts);
        let b = Odoh::run_with(&cfg, 41, &opts);
        assert_eq!(a.answered, b.answered);
        assert_eq!(a.mean_query_us, b.mean_query_us);
        assert_eq!(a.trace.len(), b.trace.len());
        assert_eq!(a.fault_log.len(), b.fault_log.len());
    }
}

// ------------------------------------------------- original ODNS (2019) --

/// The oblivious zone the authority serves.
pub const ODNS_ZONE: &str = "odns.example";

struct OdnsClient {
    entity: EntityId,
    user: UserId,
    recursive: NodeId,
    target_pk: [u8; 32],
    target_key: dcp_core::KeyId,
    queries: Vec<DnsName>,
    resp_kp: Option<hpke::Keypair>,
    stats: Rc<RefCell<Stats>>,
    sent_at: SimTime,
    next_id: u16,
    /// Per-request ARQ (inert when the run's recovery is disabled).
    arq: ReliableCall,
    /// RetryLinkage flow id (the client index).
    flow: u64,
    inflight: BTreeMap<u64, OdnsInflight>,
}

struct OdnsInflight {
    name: DnsName,
    resp_kp: hpke::Keypair,
    sent_at: SimTime,
}

impl OdnsClient {
    fn envelope_label(&self) -> Label {
        Label::items([
            InfoItem::sensitive_identity(self.user, IdentityKind::Any),
            InfoItem::plain_data(self.user, DataKind::DnsQuery),
        ])
        .and(
            Label::items([
                InfoItem::plain_identity(self.user, IdentityKind::Any),
                InfoItem::partial_data(self.user, DataKind::DnsQuery),
            ])
            .sealed(self.target_key),
        )
    }

    fn send_next(&mut self, ctx: &mut Ctx) {
        let Some(name) = self.queries.pop() else {
            return;
        };
        if self.arq.enabled() {
            let att = self.arq.begin().expect("enabled ARQ always begins");
            let sent_at = ctx.now;
            self.transmit(ctx, name, sent_at, att);
            return;
        }
        let zone = DnsName::parse(ODNS_ZONE).unwrap();
        ctx.world.crypto_op("hpke_seal");
        let (obfuscated, resp_kp) =
            crate::odns_name::obfuscate_query(ctx.rng, &self.target_pk, &name, &zone)
                .expect("obfuscate");
        self.resp_kp = Some(resp_kp);
        self.sent_at = ctx.now;
        // A TXT query for the obfuscated name, through the user's
        // *ordinary* recursive resolver — which needs no modification:
        // to it this is just another domain to resolve.
        let q = DnsMessage::query(self.next_id, obfuscated, RrType::Txt);
        self.next_id = self.next_id.wrapping_add(1);
        let label = self.envelope_label();
        ctx.send(self.recursive, Message::new(q.encode(), label));
    }

    /// One (re)transmission of reliable call `att.seq`: a *fresh*
    /// obfuscation every attempt — new ephemeral response keypair, new
    /// encapsulated name — so no two attempts share bytes anywhere on
    /// the path (re-randomized retransmission).
    fn transmit(&mut self, ctx: &mut Ctx, name: DnsName, sent_at: SimTime, att: Attempt) {
        let zone = DnsName::parse(ODNS_ZONE).unwrap();
        ctx.world.crypto_op("hpke_seal");
        let (obfuscated, resp_kp) =
            crate::odns_name::obfuscate_query(ctx.rng, &self.target_pk, &name, &zone)
                .expect("obfuscate");
        let q = DnsMessage::query(self.next_id, obfuscated, RrType::Txt);
        self.next_id = self.next_id.wrapping_add(1);
        let encoded = q.encode();
        self.stats
            .borrow_mut()
            .linkage
            .record(self.flow, att.seq, att.attempt, &encoded);
        self.inflight.insert(
            att.seq,
            OdnsInflight {
                name,
                resp_kp,
                sent_at,
            },
        );
        let label = self.envelope_label();
        ctx.send(
            self.recursive,
            Message::new(wire::frame(att.seq, &encoded), label),
        );
        ctx.set_timer(att.timer_delay_us, att.token);
    }
}

impl Node for OdnsClient {
    fn entity(&self) -> EntityId {
        self.entity
    }
    fn on_start(&mut self, ctx: &mut Ctx) {
        ctx.world.record(
            self.entity,
            InfoItem::sensitive_identity(self.user, IdentityKind::Any),
        );
        ctx.world.record(
            self.entity,
            InfoItem::sensitive_data(self.user, DataKind::DnsQuery),
        );
        self.send_next(ctx);
    }
    fn on_timer(&mut self, ctx: &mut Ctx, token: u64) {
        match self.arq.on_timer(token) {
            TimerVerdict::NotMine | TimerVerdict::Stale => {}
            TimerVerdict::Retry(att) => {
                let Some(entry) = self.inflight.get(&att.seq) else {
                    return;
                };
                let (name, sent_at) = (entry.name.clone(), entry.sent_at);
                dcp_recover::emit_retry(ctx.world, ctx.id().0, att.seq, att.attempt);
                self.transmit(ctx, name, sent_at, att);
            }
            TimerVerdict::Exhausted { seq, attempts } => {
                dcp_recover::emit_give_up(ctx.world, ctx.id().0, seq, attempts);
                self.inflight.remove(&seq);
                self.send_next(ctx);
            }
        }
    }
    fn on_message(&mut self, ctx: &mut Ctx, _from: NodeId, msg: Message) {
        if self.arq.enabled() {
            let Some((seq, body)) = wire::unframe(&msg.bytes) else {
                return;
            };
            let Some(entry) = self.inflight.get(&seq) else {
                return;
            };
            let Ok(resp) = DnsMessage::decode(body) else {
                return;
            };
            let Some(dcp_dns::RecordData::Txt(strings)) = resp.answers.first().map(|rr| &rr.data)
            else {
                return;
            };
            let sealed: Vec<u8> = strings.concat();
            ctx.world.crypto_op("hpke_open");
            let Ok(answer) = hpke::open(&entry.resp_kp, b"odns answer", b"", &sealed) else {
                return; // a response to a superseded attempt fails to open
            };
            if answer.len() != 4 {
                return;
            }
            if !self.arq.complete(seq) {
                return; // duplicated response: counted exactly once
            }
            let sent_at = entry.sent_at;
            ctx.world.span("query", sent_at.as_us(), ctx.now.as_us());
            self.inflight.remove(&seq);
            let mut stats = self.stats.borrow_mut();
            stats.answered += 1;
            stats.latencies.push(ctx.now - sent_at);
            drop(stats);
            self.send_next(ctx);
            return;
        }
        // TXT response carrying the sealed answer. Only consume the
        // in-flight response key once an answer actually opens against it
        // — tampered, duplicated, or stale deliveries must fail closed.
        let Ok(resp) = DnsMessage::decode(&msg.bytes) else {
            return;
        };
        let Some(dcp_dns::RecordData::Txt(strings)) = resp.answers.first().map(|rr| &rr.data)
        else {
            return;
        };
        let sealed: Vec<u8> = strings.concat();
        let Some(kp) = self.resp_kp.as_ref() else {
            return;
        };
        ctx.world.crypto_op("hpke_open");
        let Ok(answer) = hpke::open(kp, b"odns answer", b"", &sealed) else {
            return;
        };
        if answer.len() != 4 {
            return; // not an IPv4 answer: ignore rather than trust it
        }
        self.resp_kp = None;
        ctx.world
            .span("query", self.sent_at.as_us(), ctx.now.as_us());
        let mut stats = self.stats.borrow_mut();
        stats.answered += 1;
        stats.latencies.push(ctx.now - self.sent_at);
        drop(stats);
        self.send_next(ctx);
    }
}

/// The user's ordinary recursive resolver: it forwards queries for the
/// oblivious zone to that zone's authority, exactly as it would for any
/// delegation — no ODNS-specific code.
struct OdnsRecursive {
    entity: EntityId,
    odns_authority: NodeId,
    pending: Vec<NodeId>,
    /// Is the run's recovery layer on?
    recover: bool,
    /// Recovery path: hop-local sequence per forwarded query (the
    /// client's counter must not travel past the recursive — it would be
    /// a stable cross-query pseudonym at the authority).
    hop: HopMap<(NodeId, u64)>,
}

impl Node for OdnsRecursive {
    fn entity(&self) -> EntityId {
        self.entity
    }
    fn on_message(&mut self, ctx: &mut Ctx, from: NodeId, msg: Message) {
        if from == self.odns_authority {
            if self.recover {
                let Some((rseq, body)) = wire::unframe(&msg.bytes) else {
                    return;
                };
                let Some((client, cseq)) = self.hop.take(rseq) else {
                    return;
                };
                let framed = wire::frame(cseq, body);
                ctx.send(client, Message::new(framed, msg.label));
                return;
            }
            // A duplicated authority answer with no waiter is dropped.
            let Some(client) = self.pending.pop() else {
                return;
            };
            ctx.send(client, msg);
            return;
        }
        // Strip the client-identifying envelope part (source address
        // rewriting — the recursive resolver is the visible querier).
        let inner = match &msg.label {
            Label::Bundle(parts) if parts.len() == 2 => parts[1].clone(),
            other => other.clone(),
        };
        if self.recover {
            let Some((cseq, body)) = wire::unframe(&msg.bytes) else {
                return;
            };
            let rseq = self.hop.insert((from, cseq));
            let framed = wire::frame(rseq, body);
            ctx.send(self.odns_authority, Message::new(framed, inner));
            return;
        }
        self.pending.insert(0, from);
        ctx.send(self.odns_authority, Message::new(msg.bytes, inner));
    }
}

/// The oblivious authority: authoritative for `odns.example`, holds the
/// decryption key, recursively resolves the hidden question.
struct OdnsAuthority {
    entity: EntityId,
    kp: hpke::Keypair,
    origin: NodeId,
    /// (recursive node, query id, response key, subject)
    /// (FIFO; recovery-disabled path only).
    pending: Vec<(NodeId, u16, [u8; 32], UserId, DnsName)>,
    client_resp_key: dcp_core::KeyId,
    subject_of_query: std::collections::HashMap<String, UserId>,
    /// Is the run's recovery layer on?
    recover: bool,
    /// Recovery path: awaiting origin answers keyed by the hop-local
    /// sequence the origin echoes back.
    pending_by_seq: BTreeMap<u64, (NodeId, u16, [u8; 32], UserId, DnsName)>,
}

impl Node for OdnsAuthority {
    fn entity(&self) -> EntityId {
        self.entity
    }
    fn on_message(&mut self, ctx: &mut Ctx, from: NodeId, msg: Message) {
        if from == self.origin {
            let (seq, body) = if self.recover {
                match wire::unframe(&msg.bytes) {
                    Some((s, b)) => (Some(s), b),
                    None => return,
                }
            } else {
                (None, &msg.bytes[..])
            };
            let Ok(resp) = DnsMessage::decode(body) else {
                return;
            };
            let waiter = match seq {
                Some(s) => self.pending_by_seq.remove(&s),
                None => self.pending.pop(),
            };
            let Some((recursive, qid, resp_pk, user, obf_name)) = waiter else {
                return; // duplicated origin answer: nothing awaits it
            };
            // Seal the first A answer back to the client; an answerless
            // response is dropped — never answered in plaintext.
            let Some(addr) = resp.answers.iter().find_map(|rr| match &rr.data {
                dcp_dns::RecordData::A(a) => Some(*a),
                _ => None,
            }) else {
                return;
            };
            ctx.world.crypto_op("hpke_seal");
            let Ok(sealed) = hpke::seal(ctx.rng, &resp_pk, b"odns answer", b"", &addr) else {
                return; // cannot seal: fail closed
            };
            // Wrap the sealed answer in TXT strings (≤255 bytes each).
            let strings: Vec<Vec<u8>> = sealed.chunks(255).map(<[u8]>::to_vec).collect();
            let query_echo = DnsMessage::query(qid, obf_name.clone(), RrType::Txt);
            let mut txt_resp = DnsMessage::response_to(&query_echo, dcp_dns::Rcode::NoError);
            txt_resp.aa = true;
            txt_resp.answers.push(dcp_dns::ResourceRecord {
                name: obf_name,
                ttl: 0, // per-query ciphertext must not be cached
                data: dcp_dns::RecordData::Txt(strings),
            });
            let label = Label::items([InfoItem::sensitive_data(user, DataKind::DnsQuery)])
                .sealed(self.client_resp_key);
            let bytes = match seq {
                Some(s) => wire::frame(s, &txt_resp.encode()),
                None => txt_resp.encode(),
            };
            ctx.send(recursive, Message::new(bytes, label));
            return;
        }
        // Obfuscated query arriving via the recursive. Undecodable or
        // undeobfuscatable (tampered) names are dropped, never answered.
        let (seq, body) = if self.recover {
            match wire::unframe(&msg.bytes) {
                Some((s, b)) => (Some(s), b),
                None => return,
            }
        } else {
            (None, &msg.bytes[..])
        };
        let Ok(query) = DnsMessage::decode(body) else {
            return;
        };
        let Some(q0) = query.questions.first() else {
            return;
        };
        let obf_name = q0.qname.clone();
        let zone = DnsName::parse(ODNS_ZONE).unwrap();
        ctx.world.crypto_op("hpke_open");
        let Ok((qname, resp_pk)) = crate::odns_name::deobfuscate_query(&self.kp, &obf_name, &zone)
        else {
            return;
        };
        let Some(&user) = self.subject_of_query.get(&qname.to_string()) else {
            return;
        };
        match seq {
            Some(s) => {
                self.pending_by_seq
                    .insert(s, (from, query.id, resp_pk, user, obf_name));
            }
            None => self
                .pending
                .insert(0, (from, query.id, resp_pk, user, obf_name)),
        }
        let plain_q = DnsMessage::query(query.id, qname, RrType::A);
        let label = Label::items([
            InfoItem::plain_identity(user, IdentityKind::Any),
            InfoItem::sensitive_data(user, DataKind::DnsQuery),
        ]);
        let bytes = match seq {
            Some(s) => wire::frame(s, &plain_q.encode()),
            None => plain_q.encode(),
        };
        ctx.send(self.origin, Message::new(bytes, label));
    }
}

/// Run the original-ODNS scenario: obfuscated queries through an
/// unmodified recursive resolver to the oblivious authority.
#[deprecated(
    note = "use the unified Scenario API: `OdnsLegacy::run(&OdnsLegacyConfig::new(clients, queries_each), seed)`"
)]
pub fn run_odns_legacy(n_clients: usize, queries_each: usize, seed: u64) -> ScenarioReport {
    OdnsLegacy::run(&OdnsLegacyConfig::new(n_clients, queries_each), seed)
}

fn legacy_impl(cfg: &OdnsLegacyConfig, seed: u64, opts: &RunOptions) -> ScenarioReport {
    use rand::SeedableRng;
    let (n_clients, queries_each) = (cfg.clients, cfg.queries_each);
    let mut setup_rng = rand::rngs::StdRng::seed_from_u64(seed ^ 0x0d15);
    let workload = ZipfWorkload::new(200, 1.0, SUFFIX);
    let zone = build_zone(&workload);

    let mut world = World::new();
    let obs = MetricsHandle::install_if(&mut world, opts.observe, OdnsLegacy::NAME, seed);
    let isp_org = world.add_org("isp");
    let odns_org = world.add_org("oblivious-operator");
    let auth_org = world.add_org("authoritative");
    let user_org = world.add_org("users");
    let recursive_e = world.add_entity("Resolver", isp_org, None);
    let authority_e = world.add_entity("Oblivious Resolver", odns_org, None);
    let origin_e = world.add_entity("Origin", auth_org, None);

    let target_kp = hpke::Keypair::generate(&mut setup_rng);

    let mut users = Vec::new();
    let mut client_entities = Vec::new();
    for i in 0..n_clients {
        let u = world.add_user();
        let name = if i == 0 {
            "Client".to_string()
        } else {
            format!("Client {}", i + 1)
        };
        client_entities.push(world.add_entity(&name, user_org, Some(u)));
        users.push(u);
    }
    let target_key = world.new_key(&[authority_e]);
    let client_resp_key = world.new_key(&[]);

    let mut subject_of_query = std::collections::HashMap::new();
    let mut per_client_queries: Vec<Vec<DnsName>> = Vec::new();
    for (ci, &u) in users.iter().enumerate() {
        let mut qs = Vec::new();
        for k in 0..queries_each {
            let name = workload.domain((ci * queries_each + k) % workload.domain_count());
            subject_of_query.insert(name.to_string(), u);
            qs.push(name.clone());
        }
        per_client_queries.push(qs);
    }

    let stats = Rc::new(RefCell::new(Stats::new(1)));

    let mut net = Network::new(world, seed);
    net.set_default_link(LinkParams::wan_ms(8));
    net.enable_faults(opts.faults.clone(), seed);
    let recover_on = opts.recover.enabled;
    let recursive_id = NodeId(0);
    let authority_id = NodeId(1);
    let origin_id = NodeId(2);
    net.add_node(Box::new(OdnsRecursive {
        entity: recursive_e,
        odns_authority: authority_id,
        pending: Vec::new(),
        recover: recover_on,
        hop: HopMap::new(),
    }));
    net.mark_relay(recursive_id);
    net.add_node(Box::new(OdnsAuthority {
        entity: authority_e,
        kp: target_kp.clone(),
        origin: origin_id,
        pending: Vec::new(),
        client_resp_key,
        subject_of_query,
        recover: recover_on,
        pending_by_seq: BTreeMap::new(),
    }));
    net.add_node(Box::new(OriginNode {
        entity: origin_e,
        zone,
        recover: recover_on,
    }));
    for (ci, ((&u, &e), queries)) in users
        .iter()
        .zip(client_entities.iter())
        .zip(per_client_queries)
        .enumerate()
    {
        net.add_node(Box::new(OdnsClient {
            entity: e,
            user: u,
            recursive: recursive_id,
            target_pk: target_kp.public,
            target_key,
            queries,
            resp_kp: None,
            stats: stats.clone(),
            sent_at: SimTime::ZERO,
            next_id: 1,
            arq: ReliableCall::new(&opts.recover, derive_seed(seed, 0x0d15 + ci as u64)),
            flow: ci as u64,
            inflight: BTreeMap::new(),
        }));
    }
    for &e in &client_entities {
        net.world_mut().grant_key(e, client_resp_key);
    }

    assemble(net, stats, users, n_clients * queries_each, obs)
}

#[cfg(test)]
mod odns_legacy_tests {
    use super::*;
    use dcp_core::analyze;

    fn run_odns_legacy(clients: usize, queries_each: usize, seed: u64) -> ScenarioReport {
        OdnsLegacy::run(&OdnsLegacyConfig::new(clients, queries_each), seed)
    }

    fn run_odoh(clients: usize, queries_each: usize, seed: u64) -> ScenarioReport {
        Odoh::run(&OdohConfig::new(clients, queries_each), seed)
    }

    #[test]
    fn odns_legacy_reproduces_paper_table() {
        let report = run_odns_legacy(1, 2, 71);
        assert_eq!(report.answered, 2);
        let derived = report.table(0);
        let expected = ScenarioReport::paper_table();
        assert_eq!(
            derived,
            expected,
            "diff:\n{}",
            derived.diff(&expected).unwrap_or_default()
        );
        assert!(analyze(&report.world).decoupled);
    }

    #[test]
    fn odns_and_odoh_agree_on_knowledge_shape() {
        // The two protocols are different encodings of the same decoupling:
        // their derived tables must be identical.
        let legacy = run_odns_legacy(1, 2, 72);
        let odoh = run_odoh(1, 2, 72);
        assert_eq!(legacy.table(0), odoh.table(0));
    }

    #[test]
    fn odns_pays_more_than_odoh_in_bytes() {
        // Hex expansion inside domain names is the original protocol's
        // known overhead vs. ODoH's binary encapsulation.
        let legacy = run_odns_legacy(1, 4, 73);
        let odoh = run_odoh(1, 4, 73);
        assert!(
            legacy.trace.total_bytes() > odoh.trace.total_bytes(),
            "{} vs {}",
            legacy.trace.total_bytes(),
            odoh.trace.total_bytes()
        );
    }
}
