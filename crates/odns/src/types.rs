//! Label-bounded wire types and typed roles for the oblivious-DNS
//! wirings.
//!
//! Every [`WireLabel`] impl for this crate lives in this module (the CI
//! layering lint holds wiring crates to that). Three wirings share these
//! types: ODoH (`scenario::odoh` and its `serve` twin), the original
//! ODNS (`scenario::legacy`, where the ciphertext hides in the queried
//! *name*), and the plain-DNS coupled baseline (`scenario::direct`).
//! The paper's §3.2.2 table is stated here once, as caps:
//!
//! | Client | Resolver | Oblivious Resolver | Origin |
//! |--------|----------|--------------------|--------|
//! | (▲, ●) | (▲, ⊙)   | (△, ⊙/●)           | (△, ●) |

use dcp_core::cap::{Addressed, KnowledgeCap, Sealed, WireLabel};
use dcp_core::role::{Role, RoleKind};
use dcp_core::Sensitivity;

/// A DNS query as content: what is being asked — sensitive data with no
/// identity of its own. Also the target→origin leg verbatim: the origin
/// reads the question from the resolver's (anonymous-aggregate) address.
pub struct DnsQuery;

impl WireLabel for DnsQuery {
    const IDENTITY: Sensitivity = Sensitivity::NonSensitive;
    const DATA: Sensitivity = Sensitivity::Sensitive;
}

/// The client's first hop, both protocols: the access link names the
/// client (▲) around a query sealed to the target's key (⊙) — whether
/// the ciphertext rides an ODoH body or hex inside a domain name.
pub type SealedQuery = Addressed<Sealed<DnsQuery>>;

/// The proxy→target leg: the target opens a query it cannot attribute.
/// Its view is partial by construction — the question, never the asker —
/// so the data half is `⊙/●`, declared directly (no wrapper produces a
/// partial cap).
pub struct ObliviousQuery;

impl WireLabel for ObliviousQuery {
    const IDENTITY: Sensitivity = Sensitivity::NonSensitive;
    const DATA: Sensitivity = Sensitivity::Partial;
}

/// Plain DNS on the wire: the client's address around a readable
/// question — `(▲, ●)`, the coupling the oblivious protocols remove.
pub type CoupledQuery = Addressed<DnsQuery>;

/// A stub-resolver client (initiator).
pub struct StubClient;

impl Role for StubClient {
    const KIND: RoleKind = RoleKind::Initiator;
    const NAME: &'static str = "odns-client";
}

/// The recursive resolver the client actually talks to — ODoH's proxy,
/// or legacy ODNS's unmodified recursive. Sees who asks, never what:
/// the relay default `(▲, ⊙)`.
pub struct ObliviousProxy;

impl Role for ObliviousProxy {
    const KIND: RoleKind = RoleKind::Relay;
    const NAME: &'static str = "odns-proxy";
}

/// The oblivious resolver (ODoH target / ODNS authority): reads queries
/// it cannot attribute — `(△, ⊙/●)`, narrower than the service default.
pub struct ObliviousTarget;

impl Role for ObliviousTarget {
    const KIND: RoleKind = RoleKind::Service;
    const NAME: &'static str = "odns-target";
    const CAP: KnowledgeCap = KnowledgeCap::new(Sensitivity::NonSensitive, Sensitivity::Partial);
}

/// The authoritative origin behind the oblivious resolver: full
/// questions from an anonymous aggregate — `(△, ●)`, the service
/// default.
pub struct AuthOrigin;

impl Role for AuthOrigin {
    const KIND: RoleKind = RoleKind::Service;
    const NAME: &'static str = "odns-origin";
}

/// The plain-DNS resolver of the coupled baseline: sees both who and
/// what — declared loudly, because the coupling *is* the baseline.
pub struct CoupledResolver;

impl Role for CoupledResolver {
    const KIND: RoleKind = RoleKind::Service;
    const NAME: &'static str = "odns-plain-resolver";
    const CAP: KnowledgeCap = KnowledgeCap::coupled_by_design();
}

/// The origin of the coupled baseline: plain DNS hides nothing anywhere
/// on the path, so the label arrives intact — coupled by design too.
pub struct ExposedOrigin;

impl Role for ExposedOrigin {
    const KIND: RoleKind = RoleKind::Service;
    const NAME: &'static str = "odns-plain-origin";
    const CAP: KnowledgeCap = KnowledgeCap::coupled_by_design();
}

/// Entity-name rows (matched by prefix) → declared caps for the two
/// oblivious wirings (ODoH and legacy ODNS share one table, and the
/// proptest reconciles both against it). "Resolver" matches the backup
/// proxies' `Resolver N` rows; "Oblivious Resolver" is listed too since
/// prefix matching would otherwise fold it into "Resolver".
pub fn declared_caps() -> Vec<(&'static str, KnowledgeCap)> {
    vec![
        ("Client", StubClient::CAP),
        ("Resolver", ObliviousProxy::CAP),
        ("Oblivious Resolver", ObliviousTarget::CAP),
        ("Origin", AuthOrigin::CAP),
    ]
}

/// Declared caps for the plain-DNS baseline: every non-client row is a
/// coupling, stated as such.
pub fn direct_declared_caps() -> Vec<(&'static str, KnowledgeCap)> {
    vec![
        ("Client", StubClient::CAP),
        ("Resolver", CoupledResolver::CAP),
        ("Origin", ExposedOrigin::CAP),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn caps_restate_the_paper_table() {
        assert_eq!(StubClient::CAP.render(), "(▲, ●)");
        assert_eq!(ObliviousProxy::CAP.render(), "(▲, ⊙)");
        assert_eq!(ObliviousTarget::CAP.render(), "(△, ⊙/●)");
        assert_eq!(AuthOrigin::CAP.render(), "(△, ●)");
        // The proxy may carry sealed queries, never readable ones.
        assert!(ObliviousProxy::CAP.admits(
            <SealedQuery as WireLabel>::IDENTITY,
            <SealedQuery as WireLabel>::DATA
        ));
        assert!(!ObliviousProxy::CAP.admits(DnsQuery::IDENTITY, DnsQuery::DATA));
        // The target's partial view fits its cap; a plain coupled query
        // fits only the baseline's loudly-coupled roles.
        assert!(ObliviousTarget::CAP.admits(ObliviousQuery::IDENTITY, ObliviousQuery::DATA));
        assert!(!AuthOrigin::CAP.admits(
            <CoupledQuery as WireLabel>::IDENTITY,
            <CoupledQuery as WireLabel>::DATA
        ));
        assert!(CoupledResolver::CAP.admits(
            <CoupledQuery as WireLabel>::IDENTITY,
            <CoupledQuery as WireLabel>::DATA
        ));
        assert!(ExposedOrigin::CAP.is_coupled());
    }
}
