//! Collusion analysis (§4.1, §5.1).
//!
//! Decoupled systems rest on a *non-collusion* assumption: "active coupling
//! requires active collusion between participants". This module quantifies
//! that assumption: which coalitions of entities (or of whole
//! organizations) would re-couple a user if they pooled their ledgers, and
//! how large the smallest such coalition is.
//!
//! The minimal collusion-set size is the quantitative privacy axis of the
//! §4.2 degrees-of-decoupling experiment: every additional non-colluding
//! hop raises it by one, at a measurable performance cost.

use serde::{Deserialize, Serialize};

use crate::entity::{EntityId, OrgId, UserId};
use crate::world::World;

/// Result of a collusion analysis for one subject.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct CollusionReport {
    /// The subject analyzed.
    pub subject: UserId,
    /// All *minimal* coalitions (no proper subset also couples) that
    /// re-couple the subject, as entity-name lists.
    pub minimal_coalitions: Vec<Vec<String>>,
    /// Size of the smallest re-coupling coalition; `None` when no
    /// coalition of non-user entities can re-couple the subject (the
    /// information simply is not out there).
    pub min_coalition_size: Option<usize>,
}

impl CollusionReport {
    /// k-collusion resistance: the system tolerates any coalition of up to
    /// `k` entities. Defined as `min_coalition_size - 1` (usize::MAX when
    /// uncouplable).
    pub fn collusion_resistance(&self) -> usize {
        match self.min_coalition_size {
            Some(n) => n.saturating_sub(1),
            None => usize::MAX,
        }
    }
}

/// Enumerate minimal re-coupling coalitions of entities for `subject`,
/// considering coalitions up to `max_size` members. Entities in the
/// subject's own trust domain are excluded (the user can always "collude
/// with themselves").
pub fn entity_collusion(world: &World, subject: UserId, max_size: usize) -> CollusionReport {
    let candidates: Vec<EntityId> = world
        .entities()
        .iter()
        .filter(|e| !e.is_user_domain_of(subject))
        .map(|e| e.id)
        .collect();
    collusion_over(world, subject, &candidates, max_size, |id| {
        world.entity(*id).name.clone()
    })
}

/// Same analysis at organization granularity: a colluding org contributes
/// the union of all its entities' ledgers (§4.1's "distinct companies or
/// network operators").
pub fn org_collusion(world: &World, subject: UserId, max_size: usize) -> CollusionReport {
    // An org whose every entity is in the user's trust domain is the user.
    let candidates: Vec<OrgId> = world
        .orgs()
        .filter(|&org| {
            let ents = world.entities_of_org(org);
            !ents.is_empty()
                && ents
                    .iter()
                    .any(|&e| !world.entity(e).is_user_domain_of(subject))
        })
        .collect();

    let mut minimal: Vec<Vec<OrgId>> = Vec::new();
    for size in 1..=max_size.min(candidates.len()) {
        for combo in combinations(&candidates, size) {
            if minimal.iter().any(|m| is_subset(m, &combo)) {
                continue;
            }
            let members: Vec<EntityId> = combo
                .iter()
                .flat_map(|&org| world.entities_of_org(org))
                .filter(|&e| !world.entity(e).is_user_domain_of(subject))
                .collect();
            if world.coalition_tuple(&members, subject).is_coupled() {
                minimal.push(combo);
            }
        }
    }
    let min_size = minimal.iter().map(Vec::len).min();
    CollusionReport {
        subject,
        minimal_coalitions: minimal
            .into_iter()
            .map(|c| c.iter().map(|&o| world.org_name(o).to_string()).collect())
            .collect(),
        min_coalition_size: min_size,
    }
}

fn collusion_over<F: Fn(&EntityId) -> String>(
    world: &World,
    subject: UserId,
    candidates: &[EntityId],
    max_size: usize,
    name: F,
) -> CollusionReport {
    let mut minimal: Vec<Vec<EntityId>> = Vec::new();
    for size in 1..=max_size.min(candidates.len()) {
        for combo in combinations(candidates, size) {
            if minimal.iter().any(|m| is_subset(m, &combo)) {
                continue;
            }
            if world.coalition_tuple(&combo, subject).is_coupled() {
                minimal.push(combo);
            }
        }
    }
    let min_size = minimal.iter().map(Vec::len).min();
    CollusionReport {
        subject,
        minimal_coalitions: minimal
            .into_iter()
            .map(|c| c.iter().map(&name).collect())
            .collect(),
        min_coalition_size: min_size,
    }
}

fn combinations<T: Copy>(items: &[T], size: usize) -> Vec<Vec<T>> {
    let mut out = Vec::new();
    let mut idx: Vec<usize> = (0..size).collect();
    if size == 0 || size > items.len() {
        return out;
    }
    loop {
        out.push(idx.iter().map(|&i| items[i]).collect());
        // Advance the combination odometer.
        let mut i = size;
        loop {
            if i == 0 {
                return out;
            }
            i -= 1;
            if idx[i] != i + items.len() - size {
                idx[i] += 1;
                for j in i + 1..size {
                    idx[j] = idx[j - 1] + 1;
                }
                break;
            }
        }
    }
}

fn is_subset<T: PartialEq>(small: &[T], big: &[T]) -> bool {
    small.iter().all(|s| big.contains(s))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::label::{DataKind, IdentityKind, InfoItem};

    /// Build an MPR-shaped world: client (user domain), relay 1 knows ▲,
    /// relay 2 knows ●, origin knows ●.
    fn mpr_world() -> (World, UserId) {
        let mut w = World::new();
        let user_org = w.add_org("user");
        let apple = w.add_org("apple");
        let cdn = w.add_org("cdn");
        let site = w.add_org("site");
        let u = w.add_user();
        let client = w.add_entity("Client", user_org, Some(u));
        let r1 = w.add_entity("Relay 1", apple, None);
        let r2 = w.add_entity("Relay 2", cdn, None);
        let origin = w.add_entity("Origin", site, None);
        w.record(client, InfoItem::sensitive_identity(u, IdentityKind::Any));
        w.record(client, InfoItem::sensitive_data(u, DataKind::Destination));
        w.record(r1, InfoItem::sensitive_identity(u, IdentityKind::Any));
        w.record(r1, InfoItem::plain_data(u, DataKind::Payload));
        w.record(r2, InfoItem::plain_identity(u, IdentityKind::Any));
        w.record(r2, InfoItem::partial_data(u, DataKind::Destination));
        w.record(origin, InfoItem::plain_identity(u, IdentityKind::Any));
        w.record(origin, InfoItem::sensitive_data(u, DataKind::Destination));
        (w, u)
    }

    #[test]
    fn mpr_needs_two_parties_to_recouple() {
        let (w, u) = mpr_world();
        let rep = entity_collusion(&w, u, 4);
        assert_eq!(rep.min_coalition_size, Some(2));
        assert_eq!(rep.collusion_resistance(), 1);
        // {Relay 1, Relay 2} and {Relay 1, Origin} are the minimal pairs.
        assert!(rep
            .minimal_coalitions
            .contains(&vec!["Relay 1".to_string(), "Relay 2".to_string()]));
        assert!(rep
            .minimal_coalitions
            .contains(&vec!["Relay 1".to_string(), "Origin".to_string()]));
        // No singleton coalition.
        assert!(rep.minimal_coalitions.iter().all(|c| c.len() >= 2));
    }

    #[test]
    fn vpn_singleton_coalition() {
        let mut w = World::new();
        let user_org = w.add_org("user");
        let vpn_org = w.add_org("vpn-co");
        let u = w.add_user();
        let _client = w.add_entity("Client", user_org, Some(u));
        let vpn = w.add_entity("VPN Server", vpn_org, None);
        w.record(vpn, InfoItem::sensitive_identity(u, IdentityKind::Any));
        w.record(vpn, InfoItem::sensitive_data(u, DataKind::Destination));
        let rep = entity_collusion(&w, u, 3);
        assert_eq!(rep.min_coalition_size, Some(1));
        assert_eq!(rep.collusion_resistance(), 0, "no collusion needed at all");
        assert_eq!(rep.minimal_coalitions, vec![vec!["VPN Server".to_string()]]);
    }

    #[test]
    fn uncouplable_when_identity_never_leaves_user() {
        let mut w = World::new();
        let user_org = w.add_org("user");
        let srv_org = w.add_org("srv");
        let u = w.add_user();
        let _client = w.add_entity("Client", user_org, Some(u));
        let s = w.add_entity("Server", srv_org, None);
        w.record(s, InfoItem::sensitive_data(u, DataKind::Payload));
        let rep = entity_collusion(&w, u, 4);
        assert_eq!(rep.min_coalition_size, None);
        assert_eq!(rep.collusion_resistance(), usize::MAX);
        assert!(rep.minimal_coalitions.is_empty());
    }

    #[test]
    fn minimality_excludes_supersets() {
        let (w, u) = mpr_world();
        let rep = entity_collusion(&w, u, 4);
        // {Relay 1, Relay 2, Origin} couples too, but contains minimal
        // pairs — it must not be listed.
        assert!(rep.minimal_coalitions.iter().all(|c| c.len() == 2));
    }

    #[test]
    fn org_collusion_pools_entities() {
        // One org running both relays couples on its own.
        let mut w = World::new();
        let user_org = w.add_org("user");
        let mega = w.add_org("megacorp");
        let u = w.add_user();
        let _client = w.add_entity("Client", user_org, Some(u));
        let r1 = w.add_entity("Relay 1", mega, None);
        let r2 = w.add_entity("Relay 2", mega, None);
        w.record(r1, InfoItem::sensitive_identity(u, IdentityKind::Any));
        w.record(r2, InfoItem::sensitive_data(u, DataKind::Destination));
        let by_entity = entity_collusion(&w, u, 3);
        assert_eq!(by_entity.min_coalition_size, Some(2));
        let by_org = org_collusion(&w, u, 3);
        assert_eq!(
            by_org.min_coalition_size,
            Some(1),
            "institutionally it is a single point of failure"
        );
        assert_eq!(
            by_org.minimal_coalitions,
            vec![vec!["megacorp".to_string()]]
        );
    }

    #[test]
    fn combinations_enumerate_correctly() {
        let items = [1, 2, 3, 4];
        assert_eq!(combinations(&items, 2).len(), 6);
        assert_eq!(combinations(&items, 4).len(), 1);
        assert!(combinations(&items, 5).is_empty());
        assert!(combinations(&items, 0).is_empty());
        // Each combination is strictly increasing (no duplicates).
        for c in combinations(&items, 3) {
            assert!(c.windows(2).all(|w| w[0] < w[1]));
        }
    }
}
