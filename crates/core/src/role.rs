//! Typed protocol roles: the vocabulary the runtime layer shares with
//! every scenario.
//!
//! "Privacy by Design: On the Conformance Between Protocols and
//! Architectures" argues the *architecture* level — who plays which role,
//! who may see what — should be stated once and each protocol checked
//! against it. This module is that statement for the §3 systems: every
//! node a scenario registers is an [`Initiator`](RoleKind::Initiator), a
//! [`Relay`](RoleKind::Relay), or a [`Service`](RoleKind::Service), and
//! the runtime harness uses the kind (not ad-hoc per-scenario calls) to
//! decide simulator treatment such as relay marking. [`Endpoint`] adds a
//! request/response-typed address so a role's peers are part of its type,
//! not a bag of untyped node indices.
//!
//! The decoupling principle itself is a statement about roles: the
//! initiator holds `(▲, ●)` by definition, relays are allowed `(▲, ⊙)`
//! or `(△, ⊙/●)`, and a *service* that reaches `(▲, ●)` is a coupling.
//! Encoding the role of each node at the type level is what lets one
//! runtime own the *mechanics* (retry loops, dedup, instrumentation)
//! while each scenario only supplies protocol content.

use core::fmt;
use core::marker::PhantomData;

/// The three architectural roles a protocol participant can play.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum RoleKind {
    /// The party whose identity/data coupling is being protected: a user,
    /// client, phone, buyer, or sender. Holds `(▲, ●)` by definition.
    Initiator,
    /// A decoupling intermediary (proxy, mix, relay, gateway forwarder).
    /// The simulator treats relays specially: crash-fault presets may
    /// target them, and their knowledge is bounded by `(▲, ⊙)`.
    Relay,
    /// A terminal service (origin, issuer, signer, verifier, collector).
    /// Decoupled designs bound it to `(△, ●)`.
    Service,
}

impl RoleKind {
    /// Stable lowercase name (used in docs and diagnostics).
    pub fn name(self) -> &'static str {
        match self {
            RoleKind::Initiator => "initiator",
            RoleKind::Relay => "relay",
            RoleKind::Service => "service",
        }
    }
}

impl fmt::Display for RoleKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// A protocol role: a named participant kind in one scenario's
/// architecture. Implemented by zero-sized marker types; the runtime and
/// docs use the constants, never instances.
pub trait Role {
    /// Which architectural kind this role is.
    const KIND: RoleKind;
    /// Stable role name (e.g. `"odoh-proxy"`).
    const NAME: &'static str;
}

/// A typed address: node index `usize` plus the request/response types
/// the peer speaks. Two endpoints with different protocol types are
/// different Rust types, so a scenario cannot accidentally send an
/// issuance request to the attach endpoint even though both are "just"
/// node indices at runtime.
///
/// The type parameters are phantom — an `Endpoint` is exactly a `usize`
/// on the wire and in memory.
pub struct Endpoint<Req, Resp> {
    index: usize,
    _proto: PhantomData<fn(Req) -> Resp>,
}

impl<Req, Resp> Endpoint<Req, Resp> {
    /// Wrap a raw node index.
    pub fn new(index: usize) -> Self {
        Endpoint {
            index,
            _proto: PhantomData,
        }
    }

    /// The raw node index.
    pub fn index(self) -> usize {
        self.index
    }
}

impl<Req, Resp> Clone for Endpoint<Req, Resp> {
    fn clone(&self) -> Self {
        *self
    }
}
impl<Req, Resp> Copy for Endpoint<Req, Resp> {}

impl<Req, Resp> fmt::Debug for Endpoint<Req, Resp> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Endpoint({})", self.index)
    }
}

impl<Req, Resp> PartialEq for Endpoint<Req, Resp> {
    fn eq(&self, other: &Self) -> bool {
        self.index == other.index
    }
}
impl<Req, Resp> Eq for Endpoint<Req, Resp> {}

#[cfg(test)]
mod tests {
    use super::*;

    struct Fetch;
    struct Page;

    struct OdohProxy;
    impl Role for OdohProxy {
        const KIND: RoleKind = RoleKind::Relay;
        const NAME: &'static str = "odoh-proxy";
    }

    #[test]
    fn role_kind_names_are_stable() {
        assert_eq!(RoleKind::Initiator.name(), "initiator");
        assert_eq!(RoleKind::Relay.to_string(), "relay");
        assert_eq!(RoleKind::Service.name(), "service");
        assert_eq!(OdohProxy::KIND, RoleKind::Relay);
        assert_eq!(OdohProxy::NAME, "odoh-proxy");
    }

    #[test]
    fn endpoints_are_typed_indices() {
        let a: Endpoint<Fetch, Page> = Endpoint::new(3);
        let b = a; // Copy regardless of protocol types
        assert_eq!(a, b);
        assert_eq!(a.index(), 3);
        assert_ne!(a, Endpoint::new(4));
        assert_eq!(format!("{a:?}"), "Endpoint(3)");
    }
}
