//! Typed protocol roles: the vocabulary the runtime layer shares with
//! every scenario.
//!
//! "Privacy by Design: On the Conformance Between Protocols and
//! Architectures" argues the *architecture* level — who plays which role,
//! who may see what — should be stated once and each protocol checked
//! against it. This module is that statement for the §3 systems: every
//! node a scenario registers is an [`Initiator`](RoleKind::Initiator), a
//! [`Relay`](RoleKind::Relay), or a [`Service`](RoleKind::Service), and
//! the runtime harness uses the kind (not ad-hoc per-scenario calls) to
//! decide simulator treatment such as relay marking. [`Endpoint`] adds a
//! request/response-typed address so a role's peers are part of its type,
//! not a bag of untyped node indices.
//!
//! The decoupling principle itself is a statement about roles: the
//! initiator holds `(▲, ●)` by definition, relays are allowed `(▲, ⊙)`
//! or `(△, ⊙/●)`, and a *service* that reaches `(▲, ●)` is a coupling.
//! Encoding the role of each node at the type level is what lets one
//! runtime own the *mechanics* (retry loops, dedup, instrumentation)
//! while each scenario only supplies protocol content — and, with the
//! [`KnowledgeCap`] bound on [`Role`] plus the role-owning [`Endpoint`]
//! parameter, what makes a `(▲, ●)` coupling at a non-initiator role a
//! *compile error* rather than a post-run ledger diff (see
//! [`cap`](crate::cap)).

use core::cmp::Ordering;
use core::fmt;
use core::hash::{Hash, Hasher};
use core::marker::PhantomData;

use crate::cap::KnowledgeCap;

/// The three architectural roles a protocol participant can play.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum RoleKind {
    /// The party whose identity/data coupling is being protected: a user,
    /// client, phone, buyer, or sender. Holds `(▲, ●)` by definition.
    Initiator,
    /// A decoupling intermediary (proxy, mix, relay, gateway forwarder).
    /// The simulator treats relays specially: crash-fault presets may
    /// target them, and their knowledge is bounded by `(▲, ⊙)`.
    Relay,
    /// A terminal service (origin, issuer, signer, verifier, collector).
    /// Decoupled designs bound it to `(△, ●)`.
    Service,
}

impl RoleKind {
    /// Stable lowercase name (used in docs and diagnostics).
    pub fn name(self) -> &'static str {
        match self {
            RoleKind::Initiator => "initiator",
            RoleKind::Relay => "relay",
            RoleKind::Service => "service",
        }
    }
}

impl fmt::Display for RoleKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// A protocol role: a named participant kind in one scenario's
/// architecture. Implemented by zero-sized marker types; the runtime and
/// docs use the constants, never instances.
pub trait Role {
    /// Which architectural kind this role is.
    const KIND: RoleKind;
    /// Stable role name (e.g. `"odoh-proxy"`).
    const NAME: &'static str;
    /// The knowledge this role is architecturally allowed to accumulate —
    /// one cell of the scenario's §3 table, stated in the type. Defaults
    /// to the kind's cap (initiators `(▲, ●)`, relays `(▲, ⊙)`, services
    /// `(△, ●)`); override it to declare a narrower row (an egress relay
    /// at `(△, ⊙/●)`) or — loudly — a
    /// [`coupled_by_design`](KnowledgeCap::coupled_by_design) negative
    /// example like the §3.3 VPN server.
    const CAP: KnowledgeCap = KnowledgeCap::for_kind(Self::KIND);
}

/// A typed address: node index `usize` plus the request/response types
/// the peer speaks plus the [`Role`] the peer plays. Two endpoints with
/// different protocol types are different Rust types, so a scenario
/// cannot accidentally send an issuance request to the attach endpoint
/// even though both are "just" node indices at runtime — and because the
/// owning role rides along, an endpoint *is* the claim "this peer may see
/// these caps": the runtime's typed send paths check each request's
/// [`WireLabel`](crate::cap::WireLabel) against `R::CAP` at compile time.
///
/// The type parameters are phantom — an `Endpoint` is exactly a `usize`
/// on the wire and in memory. Ordering, equality, and hashing are by
/// index, so endpoints can key `BTreeMap`s the way raw indices already do
/// in wiring code.
pub struct Endpoint<Req, Resp, R> {
    index: usize,
    _proto: PhantomData<fn(Req) -> Resp>,
    _role: PhantomData<fn() -> R>,
}

impl<Req, Resp, R> Endpoint<Req, Resp, R> {
    /// Wrap a raw node index.
    pub fn new(index: usize) -> Self {
        Endpoint {
            index,
            _proto: PhantomData,
            _role: PhantomData,
        }
    }

    /// The raw node index.
    pub fn index(self) -> usize {
        self.index
    }
}

impl<Req, Resp, R> Clone for Endpoint<Req, Resp, R> {
    fn clone(&self) -> Self {
        *self
    }
}
impl<Req, Resp, R> Copy for Endpoint<Req, Resp, R> {}

impl<Req, Resp, R> fmt::Debug for Endpoint<Req, Resp, R> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Endpoint({})", self.index)
    }
}

impl<Req, Resp, R> PartialEq for Endpoint<Req, Resp, R> {
    fn eq(&self, other: &Self) -> bool {
        self.index == other.index
    }
}
impl<Req, Resp, R> Eq for Endpoint<Req, Resp, R> {}

impl<Req, Resp, R> PartialOrd for Endpoint<Req, Resp, R> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<Req, Resp, R> Ord for Endpoint<Req, Resp, R> {
    fn cmp(&self, other: &Self) -> Ordering {
        self.index.cmp(&other.index)
    }
}

impl<Req, Resp, R> Hash for Endpoint<Req, Resp, R> {
    fn hash<H: Hasher>(&self, state: &mut H) {
        self.index.hash(state);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Fetch;
    struct Page;

    struct OdohProxy;
    impl Role for OdohProxy {
        const KIND: RoleKind = RoleKind::Relay;
        const NAME: &'static str = "odoh-proxy";
    }

    #[test]
    fn role_kind_names_are_stable() {
        assert_eq!(RoleKind::Initiator.name(), "initiator");
        assert_eq!(RoleKind::Relay.to_string(), "relay");
        assert_eq!(RoleKind::Service.name(), "service");
        assert_eq!(OdohProxy::KIND, RoleKind::Relay);
        assert_eq!(OdohProxy::NAME, "odoh-proxy");
    }

    #[test]
    fn endpoints_are_typed_indices() {
        let a: Endpoint<Fetch, Page, OdohProxy> = Endpoint::new(3);
        let b = a; // Copy regardless of protocol types
        assert_eq!(a, b);
        assert_eq!(a.index(), 3);
        assert_ne!(a, Endpoint::new(4));
        assert_eq!(format!("{a:?}"), "Endpoint(3)");
    }

    #[test]
    fn endpoints_order_and_hash_by_index() {
        use std::collections::BTreeMap;
        let a: Endpoint<Fetch, Page, OdohProxy> = Endpoint::new(1);
        let b: Endpoint<Fetch, Page, OdohProxy> = Endpoint::new(2);
        assert!(a < b);
        assert_eq!(a.cmp(&a), core::cmp::Ordering::Equal);
        let mut map: BTreeMap<Endpoint<Fetch, Page, OdohProxy>, &str> = BTreeMap::new();
        map.insert(b, "two");
        map.insert(a, "one");
        assert_eq!(
            map.values().copied().collect::<Vec<_>>(),
            vec!["one", "two"]
        );
        let mut hs = std::collections::HashSet::new();
        hs.insert(a);
        assert!(hs.contains(&Endpoint::new(1)));
        assert!(!hs.contains(&b));
    }

    #[test]
    fn roles_default_to_their_kind_cap() {
        use crate::cap::KnowledgeCap;
        assert_eq!(OdohProxy::CAP, KnowledgeCap::RELAY);
    }
}
