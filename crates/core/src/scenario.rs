//! The unified [`Scenario`] API: one way to run every §3 system.
//!
//! Historically the eight scenario crates grew divergent entrypoints —
//! `blindcash::run(n_buyers, coins_each, rsa_bits, seed)` took positional
//! arguments while `mixnet::run(MixnetConfig)` took a config struct, and
//! only some offered a fault-injecting variant. This module replaces all
//! of them with one trait:
//!
//! ```ignore
//! use dcp_core::{FaultConfig, Scenario, ScenarioReport};
//! use dcp_odns::{Odoh, OdohConfig};
//!
//! let report = Odoh::run(&OdohConfig::new().clients(3).queries_each(4), 42);
//! assert!(report.completed());
//! let chaotic = Odoh::run_with_faults(&OdohConfig::default(), 42, &FaultConfig::chaos());
//! chaotic.world().assert_decoupled_except_user();
//! ```
//!
//! Every implementor keeps its rich, scenario-specific report struct; the
//! [`ScenarioReport`] trait is the common lens (world, fault log,
//! metrics, liveness) generic harnesses like DST and the obs property
//! tests need. The old free-function entrypoints are gone — this trait is
//! the only way to run a scenario.

use crate::faults::{FaultConfig, FaultLog};
use crate::fleet::FleetConfig;
use crate::obs::MetricsReport;
use crate::recover::RecoverConfig;
use crate::sweep::{SweepBuilder, SweepExecutor, SweepRun};
use crate::world::World;

/// Which event-queue implementation the simulator runs on.
///
/// Both produce the *identical* `(time, seq)` total order — the
/// queue-swap equivalence gate byte-diffs DST probe JSON across the two
/// — so this is a performance knob, not a semantics knob. The legacy
/// heap stays selectable until the gate has soaked.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum QueueKind {
    /// Hierarchical timer wheel: O(1) amortised, the default.
    #[default]
    TimerWheel,
    /// The original `BinaryHeap`: O(log n), kept as the reference
    /// implementation for the equivalence gate.
    BinaryHeap,
}

/// How to run a scenario: fault preset, recovery layer, and whether to
/// install the metrics sink. `Default` is calm, recovery-disabled, and
/// uninstrumented — the zero-overhead path.
#[derive(Clone, Debug)]
pub struct RunOptions {
    /// Fault-injection configuration ([`FaultConfig::calm`] = none).
    pub faults: FaultConfig,
    /// Retry/timeout/failover configuration
    /// ([`RecoverConfig::disabled`] = no framing, no timers, no retries).
    pub recover: RecoverConfig,
    /// Relay-fleet directory configuration ([`FleetConfig::disabled`] =
    /// static relay sets, no directory nodes, no epoch rotation). Only
    /// the relay-fleet wirings (mpr, mixnet) consult it; everything else
    /// ignores the field entirely.
    pub fleet: FleetConfig,
    /// Install a metrics sink so the report's
    /// [`metrics`](ScenarioReport::metrics) is populated.
    pub observe: bool,
    /// Event-queue implementation (default: [`QueueKind::TimerWheel`]).
    pub queue: QueueKind,
    /// Record the per-packet [`Trace`](ScenarioReport) (default on: DST
    /// and the traffic-analysis attackers read it). Population-scale runs
    /// turn it off — 10⁸ packet records is unbounded memory.
    pub record_trace: bool,
    /// Fold metrics as they arrive instead of retaining the unbounded
    /// per-event vectors (spans, knowledge records). Aggregate counters
    /// stay exact; only the itemised lists are dropped.
    pub streaming_metrics: bool,
}

impl Default for RunOptions {
    fn default() -> Self {
        RunOptions {
            faults: FaultConfig::default(),
            recover: RecoverConfig::default(),
            fleet: FleetConfig::default(),
            observe: false,
            queue: QueueKind::default(),
            record_trace: true,
            streaming_metrics: false,
        }
    }
}

impl RunOptions {
    /// Calm, uninstrumented (same as `Default`).
    ///
    /// Prefer the named profiles — [`RunOptions::interactive`],
    /// [`RunOptions::population`], [`RunOptions::dst`] — which say *why*
    /// a run is configured the way it is; `new()` plus the chainable
    /// setters below remain as the low-level escape hatch for
    /// combinations the profiles don't name.
    pub fn new() -> Self {
        RunOptions::default()
    }

    // ------------------------------------------------- named profiles --
    //
    // One constructor per way the workspace actually runs: tests and
    // examples poking at a handful of nodes (`interactive`),
    // population-scale world engines (`population`), and the determinism
    // probes (`dst`). Each pins every flag; the field-twiddling forms
    // below are the documented low-level escape hatch.

    /// The interactive profile: calm, uninstrumented, full per-packet
    /// trace — what tests, examples, and notebook-style exploration
    /// want. Identical to [`RunOptions::new`], but named for intent.
    pub fn interactive() -> Self {
        RunOptions::default()
    }

    /// The population-scale profile: metrics sink installed, per-packet
    /// trace **off**, streaming (bounded-memory) metrics folding **on**.
    /// This is the only configuration that survives 10⁸-event worlds —
    /// an unbounded trace or itemised metrics lists would exhaust
    /// memory.
    pub fn population() -> Self {
        RunOptions {
            observe: true,
            record_trace: false,
            streaming_metrics: true,
            ..RunOptions::default()
        }
    }

    /// The DST-probe profile: calm, uninstrumented, full trace — the
    /// exact-replay configuration the determinism probes byte-diff
    /// (sequential vs. parallel, wheel vs. heap, fast vs. reference
    /// crypto backend). Kept distinct from [`RunOptions::interactive`]
    /// so probe call sites state their intent and can diverge from the
    /// interactive defaults without touching every test.
    pub fn dst() -> Self {
        RunOptions::default()
    }

    /// Calm, with the metrics sink installed.
    pub fn observed() -> Self {
        RunOptions {
            observe: true,
            ..RunOptions::default()
        }
    }

    /// Faulted, uninstrumented.
    pub fn with_faults(faults: &FaultConfig) -> Self {
        RunOptions {
            faults: faults.clone(),
            ..RunOptions::default()
        }
    }

    /// Faulted *and* instrumented.
    pub fn observed_with_faults(faults: &FaultConfig) -> Self {
        RunOptions {
            faults: faults.clone(),
            observe: true,
            ..RunOptions::default()
        }
    }

    /// Replace the recovery configuration (chainable).
    pub fn with_recovery(mut self, recover: &RecoverConfig) -> Self {
        self.recover = recover.clone();
        self
    }

    /// Faulted, with [`RecoverConfig::standard`] recovery — the
    /// combination the DST harness runs under every preset.
    pub fn recovered(faults: &FaultConfig) -> Self {
        RunOptions::with_faults(faults).with_recovery(&RecoverConfig::standard())
    }

    /// Replace the relay-fleet configuration (chainable).
    pub fn with_fleet(mut self, fleet: &FleetConfig) -> Self {
        self.fleet = fleet.clone();
        self
    }

    /// Select the event-queue implementation (chainable).
    pub fn with_queue(mut self, queue: QueueKind) -> Self {
        self.queue = queue;
        self
    }

    /// Disable per-packet trace recording (chainable). Reports derived
    /// from the trace (observer views, latency-from-trace measures) see
    /// an empty trace; metrics and knowledge ledgers are unaffected.
    pub fn without_trace(mut self) -> Self {
        self.record_trace = false;
        self
    }

    /// Enable streaming (bounded-memory) metrics folding (chainable).
    pub fn with_streaming_metrics(mut self) -> Self {
        self.streaming_metrics = true;
        self
    }

    /// Install (or remove) the metrics sink (chainable).
    pub fn observe(mut self, on: bool) -> Self {
        self.observe = on;
        self
    }
}

/// The common lens over every scenario's report: enough for generic
/// harnesses (DST determinism/safety, metrics reconciliation, the
/// experiments driver) without flattening away scenario-specific fields.
pub trait ScenarioReport {
    /// The final knowledge base.
    fn world(&self) -> &World;
    /// The fault schedule injected during the run (empty when faults
    /// were disabled).
    fn fault_log(&self) -> &FaultLog;
    /// Run metrics (disabled/empty unless the run was observed).
    fn metrics(&self) -> &MetricsReport;
    /// How many end-to-end work units finished (coins deposited, queries
    /// answered, reports aggregated, …) — the scenario's liveness
    /// measure.
    fn completed_units(&self) -> u64;
    /// Did the workload make any end-to-end progress?
    fn completed(&self) -> bool {
        self.completed_units() > 0
    }
    /// How many work units the configuration *asked for*, when the
    /// scenario can state it (`clients × queries_each`, `users × epochs ×
    /// moves`, …). `None` means the scenario has no well-defined target
    /// (e.g. best-effort one-way traffic); the DST harness's harsh
    /// completion bar only asserts `completed_units == expected_units`
    /// where this is `Some`.
    fn expected_units(&self) -> Option<u64> {
        None
    }
    /// Retry-linkage violations found by the
    /// [`RetryLinkage`](crate::analysis::RetryLinkage) check: pairs of
    /// attempts of the same logical request that an observer could
    /// correlate by ciphertext equality. Empty unless the scenario wired
    /// the check and re-randomization was broken.
    fn retry_linkage(&self) -> &[String] {
        &[]
    }
}

/// One uniform way to run a §3 scenario.
///
/// Implementors supply [`Scenario::run_with`]; the convenience
/// entrypoints ([`run`](Scenario::run),
/// [`run_with_faults`](Scenario::run_with_faults),
/// [`run_instrumented`](Scenario::run_instrumented)) are provided. A run
/// must be a pure function of `(config, seed, options)` — the DST
/// harness replays it and compares.
pub trait Scenario {
    /// Scenario parameters. `Default` must be a small, fast workload.
    type Config: Default + Clone;
    /// The scenario's rich report type.
    type Report: ScenarioReport;
    /// Stable scenario name (used in DST reports and metrics artifacts).
    const NAME: &'static str;

    /// Run with explicit [`RunOptions`].
    fn run_with(cfg: &Self::Config, seed: u64, opts: &RunOptions) -> Self::Report;

    /// Run fault-free and uninstrumented.
    fn run(cfg: &Self::Config, seed: u64) -> Self::Report {
        Self::run_with(cfg, seed, &RunOptions::default())
    }

    /// Run under a fault configuration.
    fn run_with_faults(cfg: &Self::Config, seed: u64, faults: &FaultConfig) -> Self::Report {
        Self::run_with(cfg, seed, &RunOptions::with_faults(faults))
    }

    /// Run fault-free with the metrics sink installed.
    fn run_instrumented(cfg: &Self::Config, seed: u64) -> Self::Report {
        Self::run_with(cfg, seed, &RunOptions::observed())
    }

    /// Run a multi-seed sweep of this scenario on `exec`: one
    /// independent world per [`SweepBuilder`] job, all sharing `cfg`
    /// and `opts`. Because [`run_with`](Scenario::run_with) is a pure
    /// function of `(config, seed, options)` and per-world seeds are
    /// derived, not chained, the returned [`SweepRun`] is identical for
    /// every conforming executor — the parallel engine in `dcp-sweep`
    /// and [`crate::sweep::SequentialExecutor`] produce the same bytes.
    fn sweep<X>(
        cfg: &Self::Config,
        builder: &SweepBuilder,
        exec: &X,
        opts: &RunOptions,
    ) -> SweepRun<Self::Report>
    where
        X: SweepExecutor + ?Sized,
        Self::Config: Sync,
        Self::Report: Send,
    {
        builder.run_on(exec, |job| Self::run_with(cfg, job.seed, opts))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct ToyReport {
        world: World,
        log: FaultLog,
        metrics: MetricsReport,
        done: u64,
    }

    impl ScenarioReport for ToyReport {
        fn world(&self) -> &World {
            &self.world
        }
        fn fault_log(&self) -> &FaultLog {
            &self.log
        }
        fn metrics(&self) -> &MetricsReport {
            &self.metrics
        }
        fn completed_units(&self) -> u64 {
            self.done
        }
    }

    struct Toy;

    impl Scenario for Toy {
        type Config = u64;
        type Report = ToyReport;
        const NAME: &'static str = "toy";

        fn run_with(cfg: &u64, seed: u64, opts: &RunOptions) -> ToyReport {
            ToyReport {
                world: World::new(),
                log: FaultLog::default(),
                metrics: MetricsReport {
                    enabled: opts.observe,
                    ..MetricsReport::default()
                },
                done: cfg + seed,
            }
        }
    }

    #[test]
    fn provided_entrypoints_delegate() {
        let r = Toy::run(&2, 3);
        assert_eq!(r.completed_units(), 5);
        assert!(r.completed());
        assert!(!r.metrics().enabled);
        assert!(Toy::run_instrumented(&0, 0).metrics().enabled);
        assert!(
            !Toy::run_with_faults(&0, 0, &FaultConfig::chaos())
                .metrics()
                .enabled
        );
        assert!(!Toy::run(&0, 0).completed());
    }

    #[test]
    fn run_options_builders() {
        assert!(!RunOptions::new().observe);
        assert!(RunOptions::observed().observe);
        let chaos = FaultConfig::chaos();
        assert_eq!(RunOptions::with_faults(&chaos).faults, chaos);
        let both = RunOptions::observed_with_faults(&chaos);
        assert!(both.observe && both.faults.enabled);
        assert!(!both.recover.enabled, "recovery is opt-in");
        let rec = RunOptions::recovered(&chaos);
        assert!(rec.recover.enabled && rec.faults.enabled && !rec.observe);
        assert_eq!(
            RunOptions::observed()
                .with_recovery(&crate::RecoverConfig::standard())
                .recover,
            crate::RecoverConfig::standard()
        );
    }

    #[test]
    fn queue_and_trace_defaults() {
        let d = RunOptions::default();
        assert_eq!(d.queue, QueueKind::TimerWheel);
        assert!(d.record_trace, "trace stays on unless opted out");
        assert!(!d.streaming_metrics);
        let heap = RunOptions::new().with_queue(QueueKind::BinaryHeap);
        assert_eq!(heap.queue, QueueKind::BinaryHeap);
        assert!(!RunOptions::new().without_trace().record_trace);
        assert!(RunOptions::new().with_streaming_metrics().streaming_metrics);
    }

    #[test]
    fn named_profiles_pin_every_flag() {
        let i = RunOptions::interactive();
        assert!(!i.observe && i.record_trace && !i.streaming_metrics);
        assert!(!i.faults.enabled && !i.recover.enabled && !i.fleet.enabled);

        let pop = RunOptions::population();
        assert!(pop.observe, "population runs are always instrumented");
        assert!(!pop.record_trace, "an unbounded trace would OOM");
        assert!(pop.streaming_metrics, "metrics fold as they arrive");
        assert!(!pop.faults.enabled && !pop.recover.enabled);

        let dst = RunOptions::dst();
        assert!(!dst.observe && dst.record_trace && !dst.streaming_metrics);
        assert_eq!(dst.queue, QueueKind::TimerWheel);
        assert!(!dst.fleet.enabled, "fleet is opt-in everywhere");

        let fleet = RunOptions::dst().with_fleet(&FleetConfig::standard());
        assert!(fleet.fleet.enabled);

        // The profiles compose with the chainable escape hatches.
        let custom = RunOptions::population()
            .observe(false)
            .with_queue(QueueKind::BinaryHeap);
        assert!(!custom.observe && custom.streaming_metrics);
        assert_eq!(custom.queue, QueueKind::BinaryHeap);
    }

    #[test]
    fn report_defaults_for_recovery_lens() {
        let r = Toy::run(&2, 3);
        assert_eq!(r.expected_units(), None);
        assert!(r.retry_linkage().is_empty());
    }
}
