//! The §2.4 decoupling verdict.
//!
//! > "A system is decoupled … if *only* the user is `(▲, ●)`. Other
//! > entities may have at most one of `▲` or `●`, with all other tuple
//! > entries as `△` or `⊙`."

use serde::{Deserialize, Serialize};

use crate::entity::{EntityId, UserId};
use crate::tuple::KnowledgeTuple;
use crate::world::World;

/// A single violation: `entity` holds a coupled tuple about `subject`.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct Violation {
    /// The offending entity.
    pub entity: EntityId,
    /// Its column name (for reporting).
    pub entity_name: String,
    /// The affected user.
    pub subject: UserId,
    /// The coupled tuple it holds.
    pub tuple: KnowledgeTuple,
}

/// Result of a decoupling analysis over a [`World`].
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct DecouplingVerdict {
    /// `true` iff no non-user-domain entity is coupled for any subject.
    pub decoupled: bool,
    /// Every coupling found.
    pub violations: Vec<Violation>,
}

impl DecouplingVerdict {
    /// Entities named in violations (deduplicated, order preserved).
    pub fn offenders(&self) -> Vec<&str> {
        let mut seen = Vec::new();
        for v in &self.violations {
            if !seen.contains(&v.entity_name.as_str()) {
                seen.push(v.entity_name.as_str());
            }
        }
        seen
    }
}

/// Run the §2.4 test over every (entity, subject) pair in the world.
///
/// Entities whose [`crate::entity::Entity::user_domain`] matches the
/// subject are exempt: the user is always allowed to know who they are
/// and what they do.
pub fn analyze(world: &World) -> DecouplingVerdict {
    let mut violations = Vec::new();
    for entity in world.entities() {
        for &subject in world.users() {
            if entity.is_user_domain_of(subject) {
                continue;
            }
            let tuple = world.tuple(entity.id, subject);
            if tuple.is_coupled() {
                violations.push(Violation {
                    entity: entity.id,
                    entity_name: entity.name.clone(),
                    subject,
                    tuple,
                });
            }
        }
    }
    DecouplingVerdict {
        decoupled: violations.is_empty(),
        violations,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::label::{DataKind, IdentityKind, InfoItem};

    fn setup() -> (World, UserId) {
        let mut w = World::new();
        let _ = w.add_org("org");
        let u = w.add_user();
        (w, u)
    }

    #[test]
    fn empty_world_is_decoupled() {
        let (w, _) = setup();
        let v = analyze(&w);
        assert!(v.decoupled);
        assert!(v.violations.is_empty());
    }

    #[test]
    fn user_device_may_be_coupled() {
        let (mut w, u) = setup();
        let org = w.add_org("user-org");
        let client = w.add_entity("Client", org, Some(u));
        w.record(client, InfoItem::sensitive_identity(u, IdentityKind::Any));
        w.record(client, InfoItem::sensitive_data(u, DataKind::Payload));
        assert!(w.tuple(client, u).is_coupled());
        assert!(analyze(&w).decoupled, "user's own coupling is exempt");
    }

    #[test]
    fn third_party_coupling_is_flagged() {
        let (mut w, u) = setup();
        let org = w.add_org("vpn-co");
        let vpn = w.add_entity("VPN Server", org, None);
        w.record(vpn, InfoItem::sensitive_identity(u, IdentityKind::Any));
        w.record(vpn, InfoItem::sensitive_data(u, DataKind::Destination));
        let v = analyze(&w);
        assert!(!v.decoupled);
        assert_eq!(v.violations.len(), 1);
        assert_eq!(v.offenders(), vec!["VPN Server"]);
        assert_eq!(v.violations[0].subject, u);
    }

    #[test]
    fn one_of_each_is_fine() {
        let (mut w, u) = setup();
        let org1 = w.add_org("o1");
        let org2 = w.add_org("o2");
        let r1 = w.add_entity("Relay 1", org1, None);
        let r2 = w.add_entity("Relay 2", org2, None);
        w.record(r1, InfoItem::sensitive_identity(u, IdentityKind::Any));
        w.record(r1, InfoItem::plain_data(u, DataKind::Payload));
        w.record(r2, InfoItem::plain_identity(u, IdentityKind::Any));
        w.record(r2, InfoItem::sensitive_data(u, DataKind::Payload));
        assert!(analyze(&w).decoupled);
    }

    #[test]
    fn monotone_adding_knowledge_never_helps() {
        // Property: once a world is coupled, adding more knowledge keeps it
        // coupled (analysis is monotone in ledger contents).
        let (mut w, u) = setup();
        let org = w.add_org("o");
        let e = w.add_entity("E", org, None);
        w.record(e, InfoItem::sensitive_identity(u, IdentityKind::Any));
        w.record(e, InfoItem::sensitive_data(u, DataKind::Payload));
        assert!(!analyze(&w).decoupled);
        w.record(e, InfoItem::plain_data(u, DataKind::Activity));
        w.record(e, InfoItem::sensitive_data(u, DataKind::Location));
        assert!(!analyze(&w).decoupled);
    }

    #[test]
    fn multi_user_violations_counted_separately() {
        let (mut w, u1) = setup();
        let u2 = w.add_user();
        let org = w.add_org("o");
        let e = w.add_entity("E", org, None);
        for &u in &[u1, u2] {
            w.record(e, InfoItem::sensitive_identity(u, IdentityKind::Any));
            w.record(e, InfoItem::sensitive_data(u, DataKind::Payload));
        }
        let v = analyze(&w);
        assert_eq!(v.violations.len(), 2);
        assert_eq!(v.offenders().len(), 1, "same entity both times");
    }
}
