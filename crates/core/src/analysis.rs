//! The §2.4 decoupling verdict, plus the retry-linkage check the
//! recovery layer must pass.
//!
//! > "A system is decoupled … if *only* the user is `(▲, ●)`. Other
//! > entities may have at most one of `▲` or `●`, with all other tuple
//! > entries as `△` or `⊙`."

use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};

use crate::entity::{EntityId, UserId};
use crate::tuple::KnowledgeTuple;
use crate::world::World;

/// A single violation: `entity` holds a coupled tuple about `subject`.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct Violation {
    /// The offending entity.
    pub entity: EntityId,
    /// Its column name (for reporting).
    pub entity_name: String,
    /// The affected user.
    pub subject: UserId,
    /// The coupled tuple it holds.
    pub tuple: KnowledgeTuple,
}

/// Result of a decoupling analysis over a [`World`].
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct DecouplingVerdict {
    /// `true` iff no non-user-domain entity is coupled for any subject.
    pub decoupled: bool,
    /// Every coupling found.
    pub violations: Vec<Violation>,
}

impl DecouplingVerdict {
    /// Entities named in violations (deduplicated, order preserved).
    pub fn offenders(&self) -> Vec<&str> {
        let mut seen = Vec::new();
        for v in &self.violations {
            if !seen.contains(&v.entity_name.as_str()) {
                seen.push(v.entity_name.as_str());
            }
        }
        seen
    }
}

/// Run the §2.4 test over every (entity, subject) pair in the world.
///
/// Entities whose [`crate::entity::Entity::user_domain`] matches the
/// subject are exempt: the user is always allowed to know who they are
/// and what they do.
pub fn analyze(world: &World) -> DecouplingVerdict {
    let mut violations = Vec::new();
    for entity in world.entities() {
        for &subject in world.users() {
            if entity.is_user_domain_of(subject) {
                continue;
            }
            let tuple = world.tuple(entity.id, subject);
            if tuple.is_coupled() {
                violations.push(Violation {
                    entity: entity.id,
                    entity_name: entity.name.clone(),
                    subject,
                    tuple,
                });
            }
        }
    }
    DecouplingVerdict {
        decoupled: violations.is_empty(),
        violations,
    }
}

/// The retry-linkage check: no network observer may correlate two
/// *attempts* of the same logical request by ciphertext equality.
///
/// A recovery layer that replays the identical bytes on retry hands every
/// on-path observer a free equality oracle — "these two packets, possibly
/// on two different relay paths, are the same user request" — exactly the
/// architectural coupling taint-style privacy analyses flag. The rule in
/// this workspace is therefore *re-randomized retransmission*: each retry
/// re-runs the encryption/blinding step (fresh HPKE encapsulation, fresh
/// blind factor, fresh share split), so attempts are computationally
/// unlinkable on the wire.
///
/// Scenario clients [`record`](RetryLinkage::record) the wire bytes of
/// every attempt of every re-randomized leg;
/// [`violations`](RetryLinkage::violations) lists each pair of distinct
/// attempts of one `(flow, seq)` whose payloads compare byte-equal. The
/// DST harness asserts the list is empty under every preset.
///
/// Legs whose retransmission is *deliberately* byte-stable — a coin being
/// re-spent at the same seller, a stored share pair being re-offered to
/// the same aggregator — are not recorded: their receiver must dedup the
/// instrument anyway, so attempt linkage at that one endpoint is inherent
/// to the protocol, not a recovery bug (see `docs/RECOVERY.md`).
#[derive(Clone, Debug, Default)]
pub struct RetryLinkage {
    /// `(flow, seq) → [(attempt, payload digest)]` in record order.
    attempts: BTreeMap<(u64, u64), Vec<(u32, u64)>>,
    recorded: u64,
}

impl RetryLinkage {
    /// An empty check.
    pub fn new() -> Self {
        RetryLinkage::default()
    }

    /// 64-bit FNV-1a over the wire bytes — the equality oracle an
    /// observer gets for free.
    fn digest(bytes: &[u8]) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for &b in bytes {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        h
    }

    /// Record the wire bytes of `attempt` of request `(flow, seq)`.
    pub fn record(&mut self, flow: u64, seq: u64, attempt: u32, bytes: &[u8]) {
        self.recorded += 1;
        self.attempts
            .entry((flow, seq))
            .or_default()
            .push((attempt, Self::digest(bytes)));
    }

    /// Total attempts recorded.
    pub fn recorded(&self) -> u64 {
        self.recorded
    }

    /// Every pair of distinct attempts of one request whose ciphertexts
    /// compare equal, rendered for assertion messages. Empty is the pass.
    pub fn violations(&self) -> Vec<String> {
        let mut out = Vec::new();
        for ((flow, seq), atts) in &self.attempts {
            for i in 0..atts.len() {
                for j in (i + 1)..atts.len() {
                    let (a, da) = atts[i];
                    let (b, db) = atts[j];
                    if a != b && da == db {
                        out.push(format!(
                            "flow {flow} seq {seq}: attempts {a} and {b} share ciphertext"
                        ));
                    }
                }
            }
        }
        out
    }

    /// Panic with the full violation list unless every retransmission was
    /// re-randomized.
    pub fn assert_unlinkable(&self) {
        let v = self.violations();
        assert!(
            v.is_empty(),
            "retry linkage: byte-identical retransmissions found: {}",
            v.join("; ")
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::label::{DataKind, IdentityKind, InfoItem};

    fn setup() -> (World, UserId) {
        let mut w = World::new();
        let _ = w.add_org("org");
        let u = w.add_user();
        (w, u)
    }

    #[test]
    fn empty_world_is_decoupled() {
        let (w, _) = setup();
        let v = analyze(&w);
        assert!(v.decoupled);
        assert!(v.violations.is_empty());
    }

    #[test]
    fn user_device_may_be_coupled() {
        let (mut w, u) = setup();
        let org = w.add_org("user-org");
        let client = w.add_entity("Client", org, Some(u));
        w.record(client, InfoItem::sensitive_identity(u, IdentityKind::Any));
        w.record(client, InfoItem::sensitive_data(u, DataKind::Payload));
        assert!(w.tuple(client, u).is_coupled());
        assert!(analyze(&w).decoupled, "user's own coupling is exempt");
    }

    #[test]
    fn third_party_coupling_is_flagged() {
        let (mut w, u) = setup();
        let org = w.add_org("vpn-co");
        let vpn = w.add_entity("VPN Server", org, None);
        w.record(vpn, InfoItem::sensitive_identity(u, IdentityKind::Any));
        w.record(vpn, InfoItem::sensitive_data(u, DataKind::Destination));
        let v = analyze(&w);
        assert!(!v.decoupled);
        assert_eq!(v.violations.len(), 1);
        assert_eq!(v.offenders(), vec!["VPN Server"]);
        assert_eq!(v.violations[0].subject, u);
    }

    #[test]
    fn one_of_each_is_fine() {
        let (mut w, u) = setup();
        let org1 = w.add_org("o1");
        let org2 = w.add_org("o2");
        let r1 = w.add_entity("Relay 1", org1, None);
        let r2 = w.add_entity("Relay 2", org2, None);
        w.record(r1, InfoItem::sensitive_identity(u, IdentityKind::Any));
        w.record(r1, InfoItem::plain_data(u, DataKind::Payload));
        w.record(r2, InfoItem::plain_identity(u, IdentityKind::Any));
        w.record(r2, InfoItem::sensitive_data(u, DataKind::Payload));
        assert!(analyze(&w).decoupled);
    }

    #[test]
    fn monotone_adding_knowledge_never_helps() {
        // Property: once a world is coupled, adding more knowledge keeps it
        // coupled (analysis is monotone in ledger contents).
        let (mut w, u) = setup();
        let org = w.add_org("o");
        let e = w.add_entity("E", org, None);
        w.record(e, InfoItem::sensitive_identity(u, IdentityKind::Any));
        w.record(e, InfoItem::sensitive_data(u, DataKind::Payload));
        assert!(!analyze(&w).decoupled);
        w.record(e, InfoItem::plain_data(u, DataKind::Activity));
        w.record(e, InfoItem::sensitive_data(u, DataKind::Location));
        assert!(!analyze(&w).decoupled);
    }

    #[test]
    fn retry_linkage_flags_byte_identical_attempts() {
        let mut check = RetryLinkage::new();
        check.record(1, 0, 0, b"fresh-hpke-enc-aaaa");
        check.record(1, 0, 1, b"fresh-hpke-enc-bbbb");
        assert!(check.violations().is_empty(), "re-randomized retries pass");
        check.assert_unlinkable();
        check.record(1, 0, 2, b"fresh-hpke-enc-aaaa");
        let v = check.violations();
        assert_eq!(v.len(), 1);
        assert!(v[0].contains("attempts 0 and 2"), "{v:?}");
        assert_eq!(check.recorded(), 3);
    }

    #[test]
    fn retry_linkage_scopes_by_request() {
        // The same bytes on *different* logical requests are not linkage
        // (and the same attempt observed twice — a wire duplicate — is
        // the fault injector's doing, not the retry layer's).
        let mut check = RetryLinkage::new();
        check.record(1, 0, 0, b"payload");
        check.record(1, 1, 0, b"payload");
        check.record(2, 0, 0, b"payload");
        check.record(1, 0, 0, b"payload");
        assert!(check.violations().is_empty());
    }

    #[test]
    #[should_panic(expected = "byte-identical retransmissions")]
    fn retry_linkage_assert_panics_on_replay() {
        let mut check = RetryLinkage::new();
        check.record(7, 3, 0, b"same");
        check.record(7, 3, 1, b"same");
        check.assert_unlinkable();
    }

    #[test]
    fn multi_user_violations_counted_separately() {
        let (mut w, u1) = setup();
        let u2 = w.add_user();
        let org = w.add_org("o");
        let e = w.add_entity("E", org, None);
        for &u in &[u1, u2] {
            w.record(e, InfoItem::sensitive_identity(u, IdentityKind::Any));
            w.record(e, InfoItem::sensitive_data(u, DataKind::Payload));
        }
        let v = analyze(&w);
        assert_eq!(v.violations.len(), 2);
        assert_eq!(v.offenders().len(), 1, "same entity both times");
    }
}
