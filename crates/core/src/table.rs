//! Rendering and asserting paper-style decoupling tables.
//!
//! Each §3 system in the paper is summarized by a one-row table of
//! knowledge tuples, e.g. for mix-nets:
//!
//! ```text
//! | Sender | Mix 1  | Mix 2  | Receiver |
//! | (▲, ●) | (▲, ⊙) | (△, ⊙) | (△, ●)   |
//! ```
//!
//! [`DecouplingTable::derive`] builds such a table from a [`World`]'s
//! ledgers (measured knowledge), and [`DecouplingTable::expect`] builds the
//! paper's asserted table; integration tests compare the two.

use serde::{Deserialize, Serialize};

use crate::entity::UserId;
use crate::world::World;

/// A derived or expected decoupling table for a single subject.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct DecouplingTable {
    /// Column headers (entity names, in system order).
    pub columns: Vec<String>,
    /// Rendered tuples, one per column.
    pub tuples: Vec<String>,
}

impl DecouplingTable {
    /// Derive the table for `subject` over the named entities, from the
    /// world's measured ledgers.
    pub fn derive(world: &World, subject: UserId, entity_names: &[&str]) -> Self {
        let mut columns = Vec::with_capacity(entity_names.len());
        let mut tuples = Vec::with_capacity(entity_names.len());
        for name in entity_names {
            let e = world.entity_by_name(name);
            columns.push(name.to_string());
            tuples.push(world.tuple(e.id, subject).render());
        }
        DecouplingTable { columns, tuples }
    }

    /// Build an expected table from `(column, tuple)` pairs, e.g.
    /// `[("Sender", "(▲, ●)"), ("Mix 1", "(▲, ⊙)")]`.
    pub fn expect(cells: &[(&str, &str)]) -> Self {
        DecouplingTable {
            columns: cells.iter().map(|(c, _)| c.to_string()).collect(),
            tuples: cells.iter().map(|(_, t)| t.to_string()).collect(),
        }
    }

    /// Render as a GitHub-flavored markdown table (two rows).
    pub fn to_markdown(&self) -> String {
        let header = format!("| {} |", self.columns.join(" | "));
        let sep = format!(
            "|{}|",
            self.columns
                .iter()
                .map(|_| "---")
                .collect::<Vec<_>>()
                .join("|")
        );
        let row = format!("| {} |", self.tuples.join(" | "));
        format!("{header}\n{sep}\n{row}")
    }

    /// Compare against another table, returning a human-readable diff on
    /// mismatch.
    pub fn diff(&self, expected: &Self) -> Option<String> {
        if self == expected {
            return None;
        }
        let mut out = String::new();
        if self.columns != expected.columns {
            out.push_str(&format!(
                "column mismatch: got {:?}, expected {:?}\n",
                self.columns, expected.columns
            ));
        }
        for i in 0..self.columns.len().min(expected.columns.len()) {
            if self.tuples.get(i) != expected.tuples.get(i) {
                out.push_str(&format!(
                    "  {}: measured {} ≠ paper {}\n",
                    self.columns[i],
                    self.tuples
                        .get(i)
                        .map(String::as_str)
                        .unwrap_or("<missing>"),
                    expected
                        .tuples
                        .get(i)
                        .map(String::as_str)
                        .unwrap_or("<missing>")
                ));
            }
        }
        Some(out)
    }
}

impl core::fmt::Display for DecouplingTable {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.write_str(&self.to_markdown())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::label::{DataKind, IdentityKind, InfoItem};

    fn mixnet_world() -> (World, UserId) {
        let mut w = World::new();
        let uorg = w.add_org("user");
        let o1 = w.add_org("mix-op-1");
        let o2 = w.add_org("mix-op-2");
        let ro = w.add_org("receiver-org");
        let u = w.add_user();
        let sender = w.add_entity("Sender", uorg, Some(u));
        let m1 = w.add_entity("Mix 1", o1, None);
        let m2 = w.add_entity("Mix 2", o2, None);
        let recv = w.add_entity("Receiver", ro, None);
        w.record(sender, InfoItem::sensitive_identity(u, IdentityKind::Any));
        w.record(sender, InfoItem::sensitive_data(u, DataKind::Message));
        w.record(m1, InfoItem::sensitive_identity(u, IdentityKind::Any));
        w.record(m1, InfoItem::plain_data(u, DataKind::Payload));
        w.record(m2, InfoItem::plain_identity(u, IdentityKind::Any));
        w.record(m2, InfoItem::plain_data(u, DataKind::Payload));
        w.record(recv, InfoItem::plain_identity(u, IdentityKind::Any));
        w.record(recv, InfoItem::sensitive_data(u, DataKind::Message));
        (w, u)
    }

    #[test]
    fn derive_matches_papers_mixnet_table() {
        let (w, u) = mixnet_world();
        let derived = DecouplingTable::derive(&w, u, &["Sender", "Mix 1", "Mix 2", "Receiver"]);
        let expected = DecouplingTable::expect(&[
            ("Sender", "(▲, ●)"),
            ("Mix 1", "(▲, ⊙)"),
            ("Mix 2", "(△, ⊙)"),
            ("Receiver", "(△, ●)"),
        ]);
        assert_eq!(derived, expected, "diff: {:?}", derived.diff(&expected));
        assert!(derived.diff(&expected).is_none());
    }

    #[test]
    fn diff_reports_cells() {
        let (w, u) = mixnet_world();
        let derived = DecouplingTable::derive(&w, u, &["Sender", "Mix 1"]);
        let wrong = DecouplingTable::expect(&[("Sender", "(▲, ●)"), ("Mix 1", "(△, ⊙)")]);
        let d = derived.diff(&wrong).expect("must differ");
        assert!(d.contains("Mix 1"), "diff names the cell: {d}");
        assert!(d.contains("(▲, ⊙)"), "diff shows measured value: {d}");
    }

    #[test]
    fn markdown_rendering() {
        let t = DecouplingTable::expect(&[("A", "(▲, ⊙)"), ("B", "(△, ●)")]);
        let md = t.to_markdown();
        assert_eq!(md, "| A | B |\n|---|---|\n| (▲, ⊙) | (△, ●) |");
        assert_eq!(format!("{t}"), md);
    }

    #[test]
    fn column_mismatch_detected() {
        let a = DecouplingTable::expect(&[("A", "(▲, ⊙)")]);
        let b = DecouplingTable::expect(&[("B", "(▲, ⊙)")]);
        assert!(a.diff(&b).unwrap().contains("column mismatch"));
    }
}
