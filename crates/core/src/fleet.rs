//! Relay-fleet *data* types: configuration for the directory layer.
//!
//! Like [`crate::faults`] and [`crate::recover`], this module holds only
//! the *vocabulary*: the [`FleetConfig`] every
//! [`Scenario`](crate::Scenario) run takes via
//! [`RunOptions`](crate::RunOptions). The machinery — signed relay
//! descriptors, gossip anti-entropy, epoch keyrings, weighted selection —
//! lives in `dcp-fleet`, which sits *above* this crate in the dependency
//! graph (scenario crates reach it only through `dcp-runtime`, enforced
//! by the CI layering lint).

use serde::{Deserialize, Serialize};

/// Parameters of the relay-directory layer: fleet size, gossip cadence,
/// epoch key rotation, and selection policy.
///
/// `Default` is [`FleetConfig::disabled`] — the zero-overhead path, in
/// which wirings build their fixed, hand-picked relay set exactly as they
/// did before the fleet layer existed: no directory nodes are added, no
/// descriptors are built, and no randomness is drawn, so a fleet-off run
/// is bit-for-bit identical to a run of a build without the layer (the
/// same inertness bar `recover` and `obs` meet, byte-checked by the
/// `dst_sweep`/`dst_recover` CI diffs).
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct FleetConfig {
    /// Master switch. `false` means the wiring keeps its static relay
    /// set and the directory layer is never constructed.
    pub enabled: bool,
    /// Relay pool size the directory advertises. `0` means "as many as
    /// the wiring's own relay count" — the pool is exactly the fixed set,
    /// which is what the byte-identity probes pin. Larger pools give the
    /// selector real choices (EXPERIMENTS.md sweeps these).
    pub pool: u16,
    /// Number of directory nodes gossiping descriptors. Clamped to ≥ 1
    /// by the fleet layer; 3 exercises anti-entropy under partition.
    pub directories: u16,
    /// Gossip anti-entropy tick interval, µs.
    pub gossip_interval_us: u64,
    /// How many gossip ticks each directory runs before going quiet.
    /// Gossip must be *bounded* — the simulator runs to quiescence, so an
    /// unbounded re-arming timer would keep every run alive forever.
    pub gossip_rounds: u32,
    /// Epoch key-rotation interval per relay, µs. `0` disables rotation
    /// (relays keep their epoch-0 keys for the whole run).
    pub rotation_interval_us: u64,
    /// Maximum rotations per relay (bounded for the same quiescence
    /// reason as [`FleetConfig::gossip_rounds`]).
    pub max_rotations: u32,
    /// Grace window, in epochs: a ciphertext sealed under epoch `e` is
    /// accepted while the relay's current epoch is ≤ `e + grace_epochs`,
    /// and rejected fail-closed (typed `EpochError`) beyond that. Covers
    /// gossip propagation delay plus directory partition windows.
    pub grace_epochs: u64,
    /// Hot-relay exclusion factor: a relay whose per-epoch load exceeds
    /// `hot_factor ×` the mean candidate load is excluded from selection
    /// (unless exclusion would leave fewer candidates than the chain
    /// needs). `0` disables hot detection.
    pub hot_factor: u32,
}

impl Default for FleetConfig {
    fn default() -> Self {
        FleetConfig::disabled()
    }
}

impl FleetConfig {
    /// Fleet off: static relay sets, no directory nodes, no rotation.
    pub fn disabled() -> Self {
        FleetConfig {
            enabled: false,
            pool: 0,
            directories: 0,
            gossip_interval_us: 0,
            gossip_rounds: 0,
            rotation_interval_us: 0,
            max_rotations: 0,
            grace_epochs: 0,
            hot_factor: 0,
        }
    }

    /// The tier the fleet DST probes run under: pool pinned to the
    /// wiring's own relay count (so selection reproduces the fixed chain
    /// and knowledge tables stay byte-comparable), three directories,
    /// gossip fast enough to converge inside a run, rotation slow enough
    /// that the grace window comfortably covers a directory partition
    /// (`harsh_fleet` opens 40 ms windows; 4 × 200 ms of grace dwarfs
    /// them). The grace equals the rotation budget, so even a directory
    /// that misses every rotation publish can still be served by its
    /// clients — staleness rejection is for views *older than the run*,
    /// exercised by the hostile-input tests with tighter windows.
    pub fn standard() -> Self {
        FleetConfig {
            enabled: true,
            pool: 0,
            directories: 3,
            gossip_interval_us: 40_000,
            gossip_rounds: 50,
            rotation_interval_us: 200_000,
            max_rotations: 4,
            grace_epochs: 4,
            hot_factor: 4,
        }
    }

    /// Set the advertised relay pool size (`0` = the wiring's own count).
    pub fn pool(mut self, n: u16) -> Self {
        self.pool = n;
        self
    }

    /// Set the directory node count.
    pub fn directories(mut self, n: u16) -> Self {
        self.directories = n;
        self
    }

    /// Set the gossip tick interval, µs.
    pub fn gossip_interval_us(mut self, us: u64) -> Self {
        self.gossip_interval_us = us;
        self
    }

    /// Set the bounded gossip round count.
    pub fn gossip_rounds(mut self, n: u32) -> Self {
        self.gossip_rounds = n;
        self
    }

    /// Set the rotation interval, µs (`0` = never rotate).
    pub fn rotation_interval_us(mut self, us: u64) -> Self {
        self.rotation_interval_us = us;
        self
    }

    /// Set the per-relay rotation cap.
    pub fn max_rotations(mut self, n: u32) -> Self {
        self.max_rotations = n;
        self
    }

    /// Set the stale-epoch grace window, in epochs.
    pub fn grace_epochs(mut self, n: u64) -> Self {
        self.grace_epochs = n;
        self
    }

    /// Set the hot-relay exclusion factor (`0` = off).
    pub fn hot_factor(mut self, f: u32) -> Self {
        self.hot_factor = f;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_disabled() {
        let c = FleetConfig::default();
        assert!(!c.enabled);
        assert_eq!(c, FleetConfig::disabled());
    }

    #[test]
    fn builder_chains() {
        let c = FleetConfig::standard()
            .pool(8)
            .directories(5)
            .gossip_interval_us(10_000)
            .gossip_rounds(20)
            .rotation_interval_us(30_000)
            .max_rotations(2)
            .grace_epochs(1)
            .hot_factor(3);
        assert!(c.enabled);
        assert_eq!(c.pool, 8);
        assert_eq!(c.directories, 5);
        assert_eq!(c.gossip_interval_us, 10_000);
        assert_eq!(c.gossip_rounds, 20);
        assert_eq!(c.rotation_interval_us, 30_000);
        assert_eq!(c.max_rotations, 2);
        assert_eq!(c.grace_epochs, 1);
        assert_eq!(c.hot_factor, 3);
    }

    #[test]
    fn standard_grace_covers_harsh_fleet_partitions() {
        // The stale-rejection grace window must dwarf the longest
        // directory outage harsh_fleet() can open, or a partitioned
        // client would be unable to seal an acceptable ciphertext and
        // the completion bar would be unmeetable.
        let fleet = FleetConfig::standard();
        let faults = crate::FaultConfig::harsh_fleet();
        assert!(fleet.grace_epochs * fleet.rotation_interval_us > 4 * faults.partition_window_us);
    }
}
