//! The [`World`]: entities, users, keys, and per-entity knowledge ledgers.
//!
//! A `World` is the shared bookkeeping behind a simulated system run.
//! Protocol code registers entities and users, mints [`KeyId`]s alongside
//! its real cryptographic keys, and calls [`World::observe`] whenever an
//! entity sees a payload. The ledger then answers "what does entity X know
//! about user S" — the raw material for every table in the paper.

use std::collections::{BTreeMap, BTreeSet};
use std::sync::{Arc, Mutex};

use crate::entity::{Entity, EntityId, OrgId, UserId};
use crate::label::{InfoItem, InfoSet, KeyId, Label};
use crate::obs::{ObsEvent, ObsHandle, ObsSink};
use crate::tuple::KnowledgeTuple;

/// The knowledge base for one simulated system.
#[derive(Clone, Debug, Default)]
pub struct World {
    entities: Vec<Entity>,
    orgs: BTreeMap<OrgId, String>,
    users: Vec<UserId>,
    ledgers: BTreeMap<EntityId, InfoSet>,
    keys: BTreeMap<EntityId, BTreeSet<KeyId>>,
    next_entity: u64,
    next_org: u64,
    next_user: u64,
    next_key: u64,
    /// The installed observability sink (shared across clones; `None` —
    /// the default — makes every emission point a single branch).
    obs: ObsHandle,
    /// Sim-time clock for observability timestamps, advanced by the
    /// simulator's dispatch loop.
    obs_now_us: u64,
}

impl World {
    /// An empty world.
    pub fn new() -> Self {
        Self::default()
    }

    /// Register an organization (an institutional trust domain).
    pub fn add_org(&mut self, name: &str) -> OrgId {
        let id = OrgId(self.next_org);
        self.next_org += 1;
        self.orgs.insert(id, name.to_string());
        id
    }

    /// Register a user (data subject).
    pub fn add_user(&mut self) -> UserId {
        let id = UserId(self.next_user);
        self.next_user += 1;
        self.users.push(id);
        id
    }

    /// Register an entity operated by `org`. Pass `user_domain =
    /// Some(user)` for the user's own device.
    pub fn add_entity(&mut self, name: &str, org: OrgId, user_domain: Option<UserId>) -> EntityId {
        let id = EntityId(self.next_entity);
        self.next_entity += 1;
        self.entities.push(Entity {
            id,
            name: name.to_string(),
            org,
            user_domain,
        });
        self.ledgers.insert(id, InfoSet::new());
        self.keys.insert(id, BTreeSet::new());
        id
    }

    /// Mint a fresh key capability and grant it to `holders`.
    pub fn new_key(&mut self, holders: &[EntityId]) -> KeyId {
        let id = KeyId(self.next_key);
        self.next_key += 1;
        for h in holders {
            self.keys
                .get_mut(h)
                .expect("unknown entity granted key")
                .insert(id);
        }
        id
    }

    /// Grant an existing key to another entity (e.g. key distribution, or a
    /// modeled compromise).
    pub fn grant_key(&mut self, entity: EntityId, key: KeyId) {
        self.keys
            .get_mut(&entity)
            .expect("unknown entity")
            .insert(key);
    }

    /// Does `entity` hold `key`?
    pub fn has_key(&self, entity: EntityId, key: KeyId) -> bool {
        self.keys.get(&entity).is_some_and(|s| s.contains(&key))
    }

    /// Every key `entity` currently holds (e.g. to model a compromise
    /// that leaks a victim's whole keyring).
    pub fn keys_of(&self, entity: EntityId) -> Vec<KeyId> {
        self.keys
            .get(&entity)
            .map(|s| s.iter().copied().collect())
            .unwrap_or_default()
    }

    /// Record that `entity` observed a payload with the given label:
    /// everything its keys can open is added to its ledger. Returns the
    /// newly-learned items.
    pub fn observe(&mut self, entity: EntityId, label: &Label) -> InfoSet {
        let keys = self.keys.get(&entity).expect("unknown entity").clone();
        let learned = label.observe(|k| keys.contains(&k));
        let ledger = self.ledgers.get_mut(&entity).expect("unknown entity");
        let fresh: InfoSet = learned.difference(ledger).cloned().collect();
        ledger.extend(learned);
        if self.obs.is_enabled() {
            for item in &fresh {
                self.obs.emit(
                    self.obs_now_us,
                    &ObsEvent::Knowledge {
                        entity,
                        item: item.clone(),
                    },
                );
            }
        }
        fresh
    }

    /// Record an out-of-band fact (e.g. "the ISP knows the subscriber's
    /// name from the billing relationship").
    pub fn record(&mut self, entity: EntityId, item: InfoItem) {
        let fresh = self
            .ledgers
            .get_mut(&entity)
            .expect("unknown entity")
            .insert(item.clone());
        if fresh && self.obs.is_enabled() {
            self.obs
                .emit(self.obs_now_us, &ObsEvent::Knowledge { entity, item });
        }
    }

    /// Install an observability sink; every subsequent ledger accrual,
    /// simulator wire event, and protocol emission flows through it.
    pub fn install_obs(&mut self, sink: Arc<Mutex<dyn ObsSink>>) {
        self.obs = ObsHandle::new(sink);
    }

    /// Remove the installed sink (retained `World`s stop emitting).
    pub fn clear_obs(&mut self) {
        self.obs.clear();
    }

    /// Is an observability sink installed?
    #[inline]
    pub fn obs_enabled(&self) -> bool {
        self.obs.is_enabled()
    }

    /// Advance the observability clock (the simulator calls this as its
    /// event loop advances sim-time).
    #[inline]
    pub fn set_obs_now(&mut self, us: u64) {
        self.obs_now_us = us;
    }

    /// Current observability clock, µs of sim-time.
    #[inline]
    pub fn obs_now(&self) -> u64 {
        self.obs_now_us
    }

    /// Emit an event at the current observability clock. One branch when
    /// no sink is installed.
    #[inline]
    pub fn emit(&self, event: &ObsEvent) {
        self.obs.emit(self.obs_now_us, event);
    }

    /// Emit an event at an explicit sim-time.
    #[inline]
    pub fn emit_at(&self, at_us: u64, event: &ObsEvent) {
        self.obs.emit(at_us, event);
    }

    /// Count one cryptographic operation (protocol code calls this next
    /// to the real crypto invocation).
    #[inline]
    pub fn crypto_op(&self, op: &'static str) {
        if self.obs.is_enabled() {
            self.obs.emit(self.obs_now_us, &ObsEvent::CryptoOp { op });
        }
    }

    /// Record a completed protocol-phase span `[start_us, end_us]`.
    #[inline]
    pub fn span(&self, name: &'static str, start_us: u64, end_us: u64) {
        if self.obs.is_enabled() {
            self.obs.emit(
                end_us,
                &ObsEvent::Span {
                    name,
                    start_us,
                    end_us,
                },
            );
        }
    }

    /// The full ledger of `entity`.
    pub fn ledger(&self, entity: EntityId) -> &InfoSet {
        self.ledgers.get(&entity).expect("unknown entity")
    }

    /// Knowledge tuple of `entity` about `subject`.
    pub fn tuple(&self, entity: EntityId, subject: UserId) -> KnowledgeTuple {
        KnowledgeTuple::from_items(self.ledger(entity).iter().filter(|i| i.subject == subject))
    }

    /// Combined tuple of a coalition about `subject` (collusion closure of
    /// their union of ledgers).
    pub fn coalition_tuple(&self, coalition: &[EntityId], subject: UserId) -> KnowledgeTuple {
        KnowledgeTuple::from_items(
            coalition
                .iter()
                .flat_map(|e| self.ledger(*e).iter())
                .filter(|i| i.subject == subject),
        )
    }

    /// All registered entities, in registration order.
    pub fn entities(&self) -> &[Entity] {
        &self.entities
    }

    /// Look up an entity.
    pub fn entity(&self, id: EntityId) -> &Entity {
        self.entities
            .iter()
            .find(|e| e.id == id)
            .expect("unknown entity")
    }

    /// Find an entity by name (panics if absent — table assertions use
    /// stable names).
    pub fn entity_by_name(&self, name: &str) -> &Entity {
        self.entities
            .iter()
            .find(|e| e.name == name)
            .unwrap_or_else(|| panic!("no entity named {name:?}"))
    }

    /// All registered users.
    pub fn users(&self) -> &[UserId] {
        &self.users
    }

    /// Organization name.
    pub fn org_name(&self, org: OrgId) -> &str {
        self.orgs.get(&org).map(String::as_str).unwrap_or("?")
    }

    /// Entities operated by `org`.
    pub fn entities_of_org(&self, org: OrgId) -> Vec<EntityId> {
        self.entities
            .iter()
            .filter(|e| e.org == org)
            .map(|e| e.id)
            .collect()
    }

    /// All organizations.
    pub fn orgs(&self) -> impl Iterator<Item = OrgId> + '_ {
        self.orgs.keys().copied()
    }

    /// Assert the §2.4 decoupling invariant: no entity outside a user's
    /// own trust domain holds a coupled `(▲, ●)` tuple about them. Panics
    /// with the full offender list otherwise — the safety check the DST
    /// harness runs after every faulted simulation.
    pub fn assert_decoupled_except_user(&self) {
        let verdict = crate::analysis::analyze(self);
        assert!(
            verdict.decoupled,
            "decoupling violated: {}",
            verdict
                .violations
                .iter()
                .map(|v| format!(
                    "{} knows {} about user {}",
                    v.entity_name, v.tuple, v.subject.0
                ))
                .collect::<Vec<_>>()
                .join("; ")
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::label::{DataKind, IdentityKind};

    #[test]
    fn observe_respects_keys() {
        let mut w = World::new();
        let org = w.add_org("acme");
        let user = w.add_user();
        let a = w.add_entity("A", org, None);
        let b = w.add_entity("B", org, None);
        let key = w.new_key(&[b]);

        let secret = InfoItem::sensitive_data(user, DataKind::Payload);
        let label = Label::item(secret.clone()).sealed(key);

        assert!(w.observe(a, &label).is_empty(), "A lacks the key");
        let learned = w.observe(b, &label);
        assert!(learned.contains(&secret));
        assert!(w.ledger(b).contains(&secret));
        assert!(w.ledger(a).is_empty());
    }

    #[test]
    fn observe_reports_only_fresh_items() {
        let mut w = World::new();
        let org = w.add_org("o");
        let user = w.add_user();
        let e = w.add_entity("E", org, None);
        let item = InfoItem::plain_data(user, DataKind::Payload);
        let l = Label::item(item);
        assert_eq!(w.observe(e, &l).len(), 1);
        assert_eq!(w.observe(e, &l).len(), 0, "second observation not fresh");
    }

    #[test]
    fn tuples_are_per_subject() {
        let mut w = World::new();
        let org = w.add_org("o");
        let u1 = w.add_user();
        let u2 = w.add_user();
        let e = w.add_entity("E", org, None);
        w.record(e, InfoItem::sensitive_identity(u1, IdentityKind::Any));
        w.record(e, InfoItem::sensitive_data(u2, DataKind::Payload));
        assert!(w.tuple(e, u1).has_sensitive_identity());
        assert!(!w.tuple(e, u1).has_sensitive_data());
        assert!(w.tuple(e, u2).has_sensitive_data());
        assert!(!w.tuple(e, u2).has_sensitive_identity());
        // Neither subject is coupled at E.
        assert!(!w.tuple(e, u1).is_coupled() && !w.tuple(e, u2).is_coupled());
    }

    #[test]
    fn coalition_tuple_unions_knowledge() {
        let mut w = World::new();
        let org = w.add_org("o");
        let user = w.add_user();
        let a = w.add_entity("A", org, None);
        let b = w.add_entity("B", org, None);
        w.record(a, InfoItem::sensitive_identity(user, IdentityKind::Any));
        w.record(b, InfoItem::sensitive_data(user, DataKind::Payload));
        assert!(!w.tuple(a, user).is_coupled());
        assert!(!w.tuple(b, user).is_coupled());
        assert!(
            w.coalition_tuple(&[a, b], user).is_coupled(),
            "collusion re-couples"
        );
    }

    #[test]
    fn key_grant_extends_visibility() {
        let mut w = World::new();
        let org = w.add_org("o");
        let user = w.add_user();
        let a = w.add_entity("A", org, None);
        let key = w.new_key(&[]);
        let label = Label::item(InfoItem::sensitive_data(user, DataKind::Payload)).sealed(key);
        assert!(w.observe(a, &label).is_empty());
        w.grant_key(a, key);
        assert_eq!(w.observe(a, &label).len(), 1);
    }

    #[test]
    fn keys_of_enumerates_the_keyring() {
        let mut w = World::new();
        let org = w.add_org("o");
        let a = w.add_entity("A", org, None);
        let b = w.add_entity("B", org, None);
        let k1 = w.new_key(&[a]);
        let k2 = w.new_key(&[a, b]);
        assert_eq!(w.keys_of(a), vec![k1, k2]);
        assert_eq!(w.keys_of(b), vec![k2]);
        // A modeled compromise: copy A's keyring to B.
        for k in w.keys_of(a) {
            w.grant_key(b, k);
        }
        assert_eq!(w.keys_of(b), vec![k1, k2]);
    }

    #[test]
    fn assert_decoupled_passes_with_user_exemption() {
        let mut w = World::new();
        let org = w.add_org("user-org");
        let u = w.add_user();
        let client = w.add_entity("Client", org, Some(u));
        w.record(client, InfoItem::sensitive_identity(u, IdentityKind::Any));
        w.record(client, InfoItem::sensitive_data(u, DataKind::Payload));
        w.assert_decoupled_except_user();
    }

    #[test]
    #[should_panic(expected = "decoupling violated")]
    fn assert_decoupled_panics_on_third_party_coupling() {
        let mut w = World::new();
        let org = w.add_org("vpn");
        let u = w.add_user();
        let e = w.add_entity("VPN Server", org, None);
        w.record(e, InfoItem::sensitive_identity(u, IdentityKind::Any));
        w.record(e, InfoItem::sensitive_data(u, DataKind::Destination));
        w.assert_decoupled_except_user();
    }

    #[test]
    fn entity_lookup() {
        let mut w = World::new();
        let org = w.add_org("org-x");
        let e = w.add_entity("Resolver", org, None);
        assert_eq!(w.entity_by_name("Resolver").id, e);
        assert_eq!(w.org_name(org), "org-x");
        assert_eq!(w.entities_of_org(org), vec![e]);
    }
}
