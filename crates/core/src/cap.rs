//! Compile-time knowledge caps: the `(▲, ●)` lattice lifted into types.
//!
//! The runtime half of this repo *measures* coupling after the fact: every
//! payload carries a [`Label`](crate::Label), entities accumulate
//! [`InfoItem`](crate::InfoItem)s, and the analyzer derives the paper's §3
//! tables from the ledgers. This module adds the *static* half, following
//! "Privacy by typing in the π-calculus" and the static-taint-analysis
//! line of work: message types declare the sensitivity caps of their
//! plaintext-visible content ([`WireLabel`]), roles declare the knowledge
//! they are architecturally allowed to hold ([`KnowledgeCap`] on
//! [`Role`](crate::role::Role)), and the runtime's send paths demand an
//! [`Admits`] witness — so a wiring that would hand a sensitive
//! identity+data pair to a single non-initiator role **fails to build**,
//! with the runtime knowledge tables as the empirical cross-check.
//!
//! The check is deliberately a *cap* comparison, not a flow analysis: a
//! message's [`WireLabel`] bounds what its plaintext can reveal to the
//! peer it is delivered to, and a role's [`KnowledgeCap`] bounds what that
//! peer may accumulate. Encryption lowers message caps the way
//! [`Label::Sealed`](crate::Label::Sealed) does at runtime: wrapping a
//! message type in [`Sealed`] erases both caps (ciphertext in transit
//! reveals nothing), [`Addressed`] restores the envelope's sensitive
//! network identity, and [`Blinded`] erases the data half only (a blinded
//! token request still names the requesting account).

use core::marker::PhantomData;

use crate::label::Sensitivity;
use crate::role::RoleKind;
use crate::tuple::{DataVis, IdVis, KnowledgeTuple};

/// Rank a [`Sensitivity`] for `const` comparison (the derived `PartialOrd`
/// is not callable in const context).
const fn rank(s: Sensitivity) -> u8 {
    match s {
        Sensitivity::NonSensitive => 0,
        Sensitivity::Partial => 1,
        Sensitivity::Sensitive => 2,
    }
}

/// The `(identity, data)` knowledge bound of one architectural role: the
/// most sensitive identity and the most sensitive data the role is
/// allowed to see in message plaintext — one cell of the paper's §3
/// tables, as a compile-time constant.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct KnowledgeCap {
    /// Most sensitive user *identity* the role may see (`▲` / `△`).
    pub identity: Sensitivity,
    /// Most sensitive user *data* the role may see (`●` / `⊙/●` / `⊙`).
    pub data: Sensitivity,
}

impl KnowledgeCap {
    /// A cap from its two halves.
    pub const fn new(identity: Sensitivity, data: Sensitivity) -> Self {
        KnowledgeCap { identity, data }
    }

    /// `(▲, ●)` — the initiator's own view. Only the user's trust domain
    /// holds this by right; anywhere else it is the coupling the paper
    /// warns about (declare it with [`KnowledgeCap::coupled_by_design`]
    /// so the admission is visible in the wiring's types).
    pub const UNBOUNDED: Self = KnowledgeCap::new(Sensitivity::Sensitive, Sensitivity::Sensitive);

    /// `(▲, ⊙)` — the relay default: sees who (the connecting address)
    /// but never what.
    pub const RELAY: Self = KnowledgeCap::new(Sensitivity::Sensitive, Sensitivity::NonSensitive);

    /// `(△, ●)` — the service default: sees what (it must serve the
    /// request) but never who.
    pub const SERVICE: Self = KnowledgeCap::new(Sensitivity::NonSensitive, Sensitivity::Sensitive);

    /// The default cap of an architectural [`RoleKind`], mirroring the
    /// role vocabulary's doc comment: initiators hold `(▲, ●)` by
    /// definition, relays are bounded by `(▲, ⊙)`, services by `(△, ●)`.
    pub const fn for_kind(kind: RoleKind) -> Self {
        match kind {
            RoleKind::Initiator => Self::UNBOUNDED,
            RoleKind::Relay => Self::RELAY,
            RoleKind::Service => Self::SERVICE,
        }
    }

    /// An explicit `(▲, ●)` cap on a non-initiator role: the paper's
    /// *negative* examples (the §3.3 VPN server, the ECH TLS server)
    /// really do couple, and the framework must still be able to wire
    /// them — but only by writing this loud constructor into the role
    /// declaration, never silently.
    pub const fn coupled_by_design() -> Self {
        Self::UNBOUNDED
    }

    /// Does this cap admit a message whose plaintext-visible labels reach
    /// `identity` / `data`? Pairwise `≤` on the sensitivity lattice.
    pub const fn admits(self, identity: Sensitivity, data: Sensitivity) -> bool {
        rank(identity) <= rank(self.identity) && rank(data) <= rank(self.data)
    }

    /// Is this cap itself a coupling (`▲` *and* `●`)?
    pub const fn is_coupled(self) -> bool {
        rank(self.identity) == 2 && rank(self.data) == 2
    }

    /// The most visible [`IdVis`] a runtime tuple may reach under this
    /// cap.
    pub fn max_id_vis(self) -> IdVis {
        match self.identity {
            Sensitivity::Sensitive => IdVis::Sensitive,
            Sensitivity::Partial | Sensitivity::NonSensitive => IdVis::NonSensitive,
        }
    }

    /// The most visible [`DataVis`] a runtime tuple may reach under this
    /// cap.
    pub fn max_data_vis(self) -> DataVis {
        match self.data {
            Sensitivity::Sensitive => DataVis::Sensitive,
            Sensitivity::Partial => DataVis::Partial,
            Sensitivity::NonSensitive => DataVis::NonSensitive,
        }
    }

    /// Reconcile a runtime [`KnowledgeTuple`] against this static cap:
    /// the empirical cross-check closing the loop between the type claim
    /// and the ledger. `true` iff everything the entity accumulated fits
    /// under the declared bound.
    pub fn admits_tuple(self, tuple: &KnowledgeTuple) -> bool {
        tuple.identity_overall() <= self.max_id_vis() && tuple.data <= self.max_data_vis()
    }

    /// Render in the paper's notation, e.g. `(▲, ⊙)`.
    pub fn render(self) -> String {
        let id = match self.identity {
            Sensitivity::Sensitive => "▲",
            Sensitivity::Partial | Sensitivity::NonSensitive => "△",
        };
        let data = match self.data {
            Sensitivity::Sensitive => "●",
            Sensitivity::Partial => "⊙/●",
            Sensitivity::NonSensitive => "⊙",
        };
        format!("({id}, {data})")
    }
}

/// The plaintext-visible sensitivity cap of a wire message type: what the
/// peer a message is *delivered to* can learn by reading it. The static
/// twin of the runtime [`Label`](crate::Label) a payload carries.
///
/// Message types are zero-sized markers — they parameterize
/// [`Endpoint`](crate::role::Endpoint)s and send paths, and are never
/// constructed. Declare impls **only** in a wiring crate's `types`
/// module; the CI layering lint holds the workspace to it.
pub trait WireLabel {
    /// Most sensitive user identity the plaintext reveals.
    const IDENTITY: Sensitivity;
    /// Most sensitive user data the plaintext reveals.
    const DATA: Sensitivity;
}

/// Content sealed *past* the recipient (onion layers, ECH inner hello in
/// transit): ciphertext reveals nothing, so both caps drop to
/// non-sensitive — the static twin of [`Label::Sealed`](crate::Label::Sealed)
/// observed without the key. A message sealed *to* the recipient is not
/// `Sealed` from that endpoint's point of view: type the hop with the
/// inner message, because the peer will open it.
pub struct Sealed<T: ?Sized>(PhantomData<fn() -> T>);

impl<T: WireLabel + ?Sized> WireLabel for Sealed<T> {
    const IDENTITY: Sensitivity = Sensitivity::NonSensitive;
    const DATA: Sensitivity = Sensitivity::NonSensitive;
}

/// A message whose envelope exposes the sender's sensitive network
/// identity (source address, account, IMSI) on top of whatever the inner
/// content reveals — the static twin of the clear header half of a
/// [`Label::Bundle`](crate::Label::Bundle).
pub struct Addressed<T: ?Sized>(PhantomData<fn() -> T>);

impl<T: WireLabel + ?Sized> WireLabel for Addressed<T> {
    const IDENTITY: Sensitivity = Sensitivity::Sensitive;
    const DATA: Sensitivity = T::DATA;
}

/// Cryptographically blinded content (blind-RSA requests, VOPRF
/// evaluation inputs): the data half is information-theoretically hidden
/// from the evaluator, the identity half is whatever the inner message
/// already exposed.
pub struct Blinded<T: ?Sized>(PhantomData<fn() -> T>);

impl<T: WireLabel + ?Sized> WireLabel for Blinded<T> {
    const IDENTITY: Sensitivity = T::IDENTITY;
    const DATA: Sensitivity = Sensitivity::NonSensitive;
}

/// Plain protocol machinery (acks, padding, session control): reveals
/// nothing about any user. The static twin of
/// [`Label::Public`](crate::Label::Public).
pub struct Control;

impl WireLabel for Control {
    const IDENTITY: Sensitivity = Sensitivity::NonSensitive;
    const DATA: Sensitivity = Sensitivity::NonSensitive;
}

/// The compile-time admission check: message type `Self` may be delivered
/// to a peer playing role `R` only if `R`'s declared [`KnowledgeCap`]
/// admits `Self`'s plaintext-visible caps.
///
/// The blanket impl makes every `(role, message)` pair *nameable*; the
/// [`WITNESS`](Admits::WITNESS) const makes the illegal ones
/// *unbuildable*: typed send paths force its evaluation, so a wiring that
/// routes a `(▲, ●)` message to a default-capped relay or service fails
/// to compile with a `knowledge-cap violation` error at the exact send
/// site (a post-monomorphization `const` panic — the same mechanism as a
/// failed `static_assert`).
pub trait Admits<R: crate::role::Role>: WireLabel {
    /// Evaluates to `()` when the role's cap admits this message, and to
    /// a compile error otherwise. Typed send paths force it with
    /// `let _: () = <M as Admits<R>>::WITNESS;`.
    const WITNESS: () = assert!(
        R::CAP.admits(Self::IDENTITY, Self::DATA),
        "knowledge-cap violation: this message's plaintext-visible labels exceed the \
         receiving role's declared KnowledgeCap — routing a sensitive identity+data \
         pair to a non-initiator role is the coupling the decoupling principle \
         forbids; seal or blind the payload, or declare the role \
         KnowledgeCap::coupled_by_design() if the coupling is the point"
    );
}

impl<R: crate::role::Role, M: WireLabel + ?Sized> Admits<R> for M {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::role::{Role, RoleKind};

    struct Query;
    impl WireLabel for Query {
        const IDENTITY: Sensitivity = Sensitivity::NonSensitive;
        const DATA: Sensitivity = Sensitivity::Sensitive;
    }

    struct SomeRelay;
    impl Role for SomeRelay {
        const KIND: RoleKind = RoleKind::Relay;
        const NAME: &'static str = "some-relay";
    }

    struct SomeService;
    impl Role for SomeService {
        const KIND: RoleKind = RoleKind::Service;
        const NAME: &'static str = "some-service";
    }

    #[test]
    fn kind_defaults_mirror_the_role_doc() {
        assert_eq!(
            KnowledgeCap::for_kind(RoleKind::Initiator),
            KnowledgeCap::UNBOUNDED
        );
        assert_eq!(KnowledgeCap::for_kind(RoleKind::Relay), KnowledgeCap::RELAY);
        assert_eq!(
            KnowledgeCap::for_kind(RoleKind::Service),
            KnowledgeCap::SERVICE
        );
        assert_eq!(SomeRelay::CAP, KnowledgeCap::RELAY);
        assert_eq!(SomeService::CAP, KnowledgeCap::SERVICE);
    }

    #[test]
    fn admits_is_pairwise_lattice_le() {
        let relay = KnowledgeCap::RELAY;
        assert!(relay.admits(Sensitivity::Sensitive, Sensitivity::NonSensitive));
        assert!(relay.admits(Sensitivity::NonSensitive, Sensitivity::NonSensitive));
        assert!(!relay.admits(Sensitivity::NonSensitive, Sensitivity::Partial));
        assert!(!relay.admits(Sensitivity::Sensitive, Sensitivity::Sensitive));

        let service = KnowledgeCap::SERVICE;
        assert!(service.admits(Sensitivity::NonSensitive, Sensitivity::Sensitive));
        assert!(!service.admits(Sensitivity::Sensitive, Sensitivity::NonSensitive));

        assert!(KnowledgeCap::UNBOUNDED.admits(Sensitivity::Sensitive, Sensitivity::Sensitive));
        assert!(KnowledgeCap::coupled_by_design().is_coupled());
        assert!(!KnowledgeCap::RELAY.is_coupled());
        assert!(!KnowledgeCap::SERVICE.is_coupled());
    }

    #[test]
    fn wrappers_transform_caps_like_runtime_labels() {
        // Sealing erases both halves, like Label::Sealed seen without the key.
        assert_eq!(<Sealed<Query>>::IDENTITY, Sensitivity::NonSensitive);
        assert_eq!(<Sealed<Query>>::DATA, Sensitivity::NonSensitive);
        // The envelope restores the sensitive network identity.
        assert_eq!(<Addressed<Sealed<Query>>>::IDENTITY, Sensitivity::Sensitive);
        assert_eq!(<Addressed<Sealed<Query>>>::DATA, Sensitivity::NonSensitive);
        // Addressing without sealing couples.
        assert_eq!(<Addressed<Query>>::IDENTITY, Sensitivity::Sensitive);
        assert_eq!(<Addressed<Query>>::DATA, Sensitivity::Sensitive);
        // Blinding erases only the data half.
        assert_eq!(
            <Blinded<Addressed<Query>>>::IDENTITY,
            Sensitivity::Sensitive
        );
        assert_eq!(<Blinded<Addressed<Query>>>::DATA, Sensitivity::NonSensitive);
        // Control traffic reveals nothing.
        assert_eq!(Control::IDENTITY, Sensitivity::NonSensitive);
        assert_eq!(Control::DATA, Sensitivity::NonSensitive);
    }

    #[test]
    fn witnesses_for_legal_pairs_evaluate() {
        // The decoupled ODoH shape: the relay sees an addressed sealed
        // query, the service sees the bare query.
        let _: () = <Addressed<Sealed<Query>> as Admits<SomeRelay>>::WITNESS;
        let _: () = <Query as Admits<SomeService>>::WITNESS;
        let _: () = <Control as Admits<SomeRelay>>::WITNESS;
        // (The illegal pairs are covered by tests/compile_fail/, where
        // forcing the witness must *fail* the build.)
    }

    #[test]
    fn tuple_reconciliation_matches_caps() {
        use crate::entity::UserId;
        use crate::label::{DataKind, IdentityKind, InfoItem};
        let u = UserId(1);
        let relay_view = KnowledgeTuple::from_items(
            [
                InfoItem::sensitive_identity(u, IdentityKind::Network),
                InfoItem::plain_data(u, DataKind::Payload),
            ]
            .iter(),
        );
        assert!(KnowledgeCap::RELAY.admits_tuple(&relay_view));
        assert!(KnowledgeCap::UNBOUNDED.admits_tuple(&relay_view));
        assert!(!KnowledgeCap::SERVICE.admits_tuple(&relay_view));

        let coupled_view = KnowledgeTuple::from_items(
            [
                InfoItem::sensitive_identity(u, IdentityKind::Any),
                InfoItem::sensitive_data(u, DataKind::Destination),
            ]
            .iter(),
        );
        assert!(!KnowledgeCap::RELAY.admits_tuple(&coupled_view));
        assert!(!KnowledgeCap::SERVICE.admits_tuple(&coupled_view));
        assert!(KnowledgeCap::coupled_by_design().admits_tuple(&coupled_view));

        let partial_view = KnowledgeTuple::from_items(
            [
                InfoItem::plain_identity(u, IdentityKind::Any),
                InfoItem::partial_data(u, DataKind::Destination),
            ]
            .iter(),
        );
        let egress = KnowledgeCap::new(Sensitivity::NonSensitive, Sensitivity::Partial);
        assert!(egress.admits_tuple(&partial_view));
        assert!(!KnowledgeCap::RELAY.admits_tuple(&partial_view));
        assert_eq!(egress.render(), "(△, ⊙/●)");
        assert_eq!(KnowledgeCap::RELAY.render(), "(▲, ⊙)");
        assert_eq!(KnowledgeCap::UNBOUNDED.render(), "(▲, ●)");
    }

    #[test]
    fn cap_vis_maxima() {
        assert_eq!(KnowledgeCap::RELAY.max_id_vis(), IdVis::Sensitive);
        assert_eq!(KnowledgeCap::RELAY.max_data_vis(), DataVis::NonSensitive);
        assert_eq!(KnowledgeCap::SERVICE.max_id_vis(), IdVis::NonSensitive);
        assert_eq!(KnowledgeCap::SERVICE.max_data_vis(), DataVis::Sensitive);
    }
}
