//! Degrees of decoupling (§4.2): privacy/performance cost–benefit points.
//!
//! The paper argues that adding decoupling (more relays, more aggregators)
//! improves the privacy posture — raising the collusion bar — but "in
//! practice, decoupling eventually reaches a point where it offers limited
//! return in privacy at great cost". This module defines the measurement
//! record the `exp_degrees` harness sweeps to reproduce that curve.

use serde::{Deserialize, Serialize};

/// One point on the degrees-of-decoupling cost/benefit curve.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct DegreePoint {
    /// Configuration label ("direct", "vpn", "mpr-2", "tor-3", …).
    pub config: String,
    /// Number of independent intermediary parties between user and origin.
    pub parties: usize,
    /// Measured §2.4 verdict for the configuration.
    pub decoupled: bool,
    /// Minimal colluding-coalition size that re-couples the user
    /// (`None` = uncouplable; 1 = a single entity already couples).
    pub min_collusion: Option<usize>,
    /// Mean end-to-end latency in simulated microseconds.
    pub latency_us: f64,
    /// Total bytes sent on the wire per application byte delivered
    /// (overhead factor ≥ 1.0).
    pub bytes_factor: f64,
    /// Requests completed per simulated second (throughput axis).
    pub throughput_rps: f64,
}

impl DegreePoint {
    /// Privacy score used for plotting: the collusion bar, with
    /// uncouplable mapped to `parties + 1` (it cannot exceed the number of
    /// distinct parties anyway).
    pub fn privacy_score(&self) -> usize {
        match self.min_collusion {
            None => self.parties + 1,
            Some(n) => n,
        }
    }

    /// Marginal privacy gain per added party relative to `prev` — the
    /// quantity whose diminishing value §4.2 predicts.
    pub fn marginal_privacy(&self, prev: &DegreePoint) -> f64 {
        let dp = self.privacy_score() as f64 - prev.privacy_score() as f64;
        let dn = (self.parties as f64 - prev.parties as f64).max(1.0);
        dp / dn
    }

    /// Marginal latency cost per added party relative to `prev`.
    pub fn marginal_latency(&self, prev: &DegreePoint) -> f64 {
        let dl = self.latency_us - prev.latency_us;
        let dn = (self.parties as f64 - prev.parties as f64).max(1.0);
        dl / dn
    }
}

/// A full sweep, ordered by `parties`.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct DegreeSweep {
    /// Points in increasing-degree order.
    pub points: Vec<DegreePoint>,
}

impl DegreeSweep {
    /// Add a point (kept sorted by party count).
    pub fn push(&mut self, p: DegreePoint) {
        self.points.push(p);
        self.points.sort_by_key(|p| p.parties);
    }

    /// Verify the §4.2 shape claims:
    /// 1. privacy score is non-decreasing in parties,
    /// 2. latency is non-decreasing in parties,
    /// 3. marginal privacy gain is eventually ≤ the initial gain
    ///    (diminishing returns).
    pub fn check_shape(&self) -> Result<(), String> {
        for w in self.points.windows(2) {
            if w[1].privacy_score() < w[0].privacy_score() {
                return Err(format!(
                    "privacy regressed from {} ({}) to {} ({})",
                    w[0].config,
                    w[0].privacy_score(),
                    w[1].config,
                    w[1].privacy_score()
                ));
            }
            if w[1].latency_us + 1e-9 < w[0].latency_us {
                return Err(format!(
                    "latency decreased from {} ({:.1}us) to {} ({:.1}us)",
                    w[0].config, w[0].latency_us, w[1].config, w[1].latency_us
                ));
            }
        }
        if self.points.len() >= 3 {
            // Diminishing returns: after the marginal privacy gain peaks,
            // it never increases again.
            let gains: Vec<f64> = self
                .points
                .windows(2)
                .map(|w| w[1].marginal_privacy(&w[0]))
                .collect();
            let peak = gains
                .iter()
                .enumerate()
                .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
                .map(|(i, _)| i)
                .unwrap_or(0);
            for w in gains[peak..].windows(2) {
                if w[1] > w[0] + 1e-9 {
                    return Err(format!(
                        "marginal privacy gain grew after its peak ({} > {}) — expected diminishing",
                        w[1], w[0]
                    ));
                }
            }
        }
        Ok(())
    }

    /// Render as aligned text rows for the experiment harness.
    pub fn to_rows(&self) -> String {
        let mut out = String::from(
            "config     parties  decoupled  min-collusion  latency(us)  bytes-factor  throughput(rps)\n",
        );
        for p in &self.points {
            out.push_str(&format!(
                "{:<10} {:>7}  {:>9}  {:>13}  {:>11.1}  {:>12.3}  {:>15.1}\n",
                p.config,
                p.parties,
                p.decoupled,
                p.min_collusion
                    .map(|n| n.to_string())
                    .unwrap_or_else(|| "∞".into()),
                p.latency_us,
                p.bytes_factor,
                p.throughput_rps
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pt(config: &str, parties: usize, min_collusion: Option<usize>, lat: f64) -> DegreePoint {
        DegreePoint {
            config: config.into(),
            parties,
            decoupled: min_collusion != Some(1),
            min_collusion,
            latency_us: lat,
            bytes_factor: 1.0 + parties as f64 * 0.1,
            throughput_rps: 1000.0 / (1.0 + parties as f64),
        }
    }

    #[test]
    fn healthy_sweep_passes_shape_check() {
        let mut s = DegreeSweep::default();
        s.push(pt("direct", 0, Some(1), 100.0));
        s.push(pt("vpn", 1, Some(1), 200.0));
        s.push(pt("mpr-2", 2, Some(2), 300.0));
        s.push(pt("tor-3", 3, Some(3), 420.0));
        s.push(pt("relay-4", 4, Some(4), 560.0));
        assert!(s.check_shape().is_ok(), "{:?}", s.check_shape());
    }

    #[test]
    fn privacy_regression_is_caught() {
        let mut s = DegreeSweep::default();
        s.push(pt("a", 1, Some(2), 100.0));
        s.push(pt("b", 2, Some(1), 200.0));
        assert!(s.check_shape().unwrap_err().contains("privacy regressed"));
    }

    #[test]
    fn latency_regression_is_caught() {
        let mut s = DegreeSweep::default();
        s.push(pt("a", 1, Some(1), 300.0));
        s.push(pt("b", 2, Some(2), 100.0));
        assert!(s.check_shape().unwrap_err().contains("latency decreased"));
    }

    #[test]
    fn privacy_score_maps_uncouplable() {
        assert_eq!(pt("x", 3, None, 1.0).privacy_score(), 4);
        assert_eq!(pt("x", 3, Some(2), 1.0).privacy_score(), 2);
    }

    #[test]
    fn marginal_computations() {
        let a = pt("a", 1, Some(1), 100.0);
        let b = pt("b", 3, Some(3), 300.0);
        assert!((b.marginal_privacy(&a) - 1.0).abs() < 1e-9);
        assert!((b.marginal_latency(&a) - 100.0).abs() < 1e-9);
    }

    #[test]
    fn rows_render_every_point() {
        let mut s = DegreeSweep::default();
        s.push(pt("direct", 0, Some(1), 100.0));
        s.push(pt("mpr-2", 2, None, 300.0));
        let rows = s.to_rows();
        assert!(rows.contains("direct") && rows.contains("mpr-2"));
        assert!(rows.contains('∞'), "uncouplable renders as ∞");
    }

    #[test]
    fn push_keeps_sorted() {
        let mut s = DegreeSweep::default();
        s.push(pt("c", 3, Some(3), 300.0));
        s.push(pt("a", 0, Some(1), 100.0));
        s.push(pt("b", 2, Some(2), 200.0));
        let parties: Vec<usize> = s.points.iter().map(|p| p.parties).collect();
        assert_eq!(parties, vec![0, 2, 3]);
    }
}
