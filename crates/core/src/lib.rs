//! # dcp-core — an executable model of the Decoupling Principle
//!
//! "The Decoupling Principle" (Schmitt, Iyengar, Wood, Raghavan — HotNets
//! '22) states: *to ensure privacy, information should be divided
//! architecturally and institutionally such that each entity has only the
//! information it needs to perform its relevant function* — in short,
//! **decouple who you are from what you do**.
//!
//! §2.4 of the paper makes this analyzable with knowledge tuples:
//!
//! * `▲` — a **sensitive user identity** known by some entity,
//! * `△` — a non-sensitive user identity,
//! * `●` — **sensitive data**,
//! * `⊙` — non-sensitive data.
//!
//! A system is *decoupled* iff **only the user** holds `(▲, ●)`; every
//! other entity holds at most one of `▲` / `●`.
//!
//! This crate turns that notation into machinery:
//!
//! * [`label`] — information atoms ([`label::InfoItem`]), sensitivity
//!   lattices, and [`label::Label`] trees that mirror the *encryption
//!   structure* of real payloads so observation is computed, not asserted.
//! * [`entity`] — entities, organizations (institutional decoupling), and
//!   user trust domains.
//! * [`world`] — the [`world::World`] knowledge base: entities accumulate
//!   [`label::InfoItem`]s from what their keys actually open, and the
//!   analyzer derives per-entity [`tuple::KnowledgeTuple`]s from those
//!   ledgers.
//! * [`analysis`] — the §2.4 decoupling verdict, with per-entity violation
//!   reporting.
//! * [`cap`] — the same lattice lifted into the type system:
//!   [`cap::WireLabel`] message caps, [`cap::KnowledgeCap`] role bounds,
//!   and the [`cap::Admits`] witness that makes a `(▲, ●)` co-location at
//!   a non-initiator role a *compile error*, with the runtime ledgers as
//!   the empirical cross-check.
//! * [`collusion`] — §4.1/§5.1 collusion closure: which coalitions of
//!   entities (or whole organizations) re-couple a user, and the minimal
//!   collusion set size as a quantitative privacy measure.
//! * [`degrees`] — §4.2 degree-of-decoupling metrics combining the verdict,
//!   collusion resistance, and measured overhead into cost/benefit points.
//! * [`table`] — renders paper-style decoupling tables like
//!   `| Sender | Mix 1 | Mix 2 | Receiver |` / `| (▲, ●) | (▲, ⊙) | … |`
//!   and parses expected tables for test assertions.
//! * [`tee`] — the §4.3 TEE model: enclaves as attestable trust domains
//!   distinct from their operators.
//!
//! The system crates (`dcp-mixnet`, `dcp-odns`, `dcp-mpr`, …) run real
//! protocols over the `dcp-simnet` simulator; every payload carries a
//! [`label::Label`]; this crate's analyzer then reproduces each of the
//! paper's §3 tables *from observed knowledge*.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod analysis;
pub mod cap;
pub mod collusion;
pub mod degrees;
pub mod entity;
pub mod faults;
pub mod fleet;
pub mod label;
pub mod obs;
pub mod recover;
pub mod role;
pub mod scenario;
pub mod sweep;
pub mod table;
pub mod tee;
pub mod tuple;
pub mod world;

pub use analysis::RetryLinkage;
pub use analysis::{analyze, DecouplingVerdict, Violation};
pub use cap::{Addressed, Admits, Blinded, Control, KnowledgeCap, Sealed, WireLabel};
pub use entity::{EntityId, OrgId, UserId};
pub use faults::{FaultConfig, FaultEvent, FaultKind, FaultLog};
pub use fleet::FleetConfig;
pub use label::{Aspect, DataKind, IdentityKind, InfoItem, InfoSet, KeyId, Label, Sensitivity};
pub use obs::{
    KnowledgeRecord, MetricsReport, ObsEvent, ObsHandle, ObsSink, SpanRecord, SpanStats,
};
pub use recover::RecoverConfig;
pub use role::{Endpoint, Role, RoleKind};
pub use scenario::{QueueKind, RunOptions, Scenario, ScenarioReport};
pub use sweep::{
    derive_seed, SequentialExecutor, SweepBuilder, SweepEntry, SweepExecutor, SweepJob,
    SweepReport, SweepRun,
};
pub use tuple::{DataVis, IdVis, KnowledgeTuple};
pub use world::World;
