//! Observability: the [`ObsSink`] hook and the [`MetricsReport`] data
//! model.
//!
//! The decoupling analysis is a *final verdict*; this module makes the
//! events leading up to it first-class. A single sink trait is installed
//! into the [`World`](crate::World) and everything — the simulator's
//! dispatch loop, the fault injector's wire catalog, and the scenario
//! protocols — emits through it:
//!
//! * wire accounting ([`ObsEvent::MessageSent`] and friends) from the
//!   simulator,
//! * injected faults ([`ObsEvent::FaultInjected`]) alongside the
//!   `FaultLog`,
//! * crypto invocations ([`ObsEvent::CryptoOp`]) from protocol code,
//! * protocol-phase spans ([`ObsEvent::Span`]) with sim-time durations,
//! * knowledge accrual ([`ObsEvent::Knowledge`]) emitted automatically by
//!   `World::observe` / `World::record` whenever a ledger actually grows —
//!   *which label reached which entity at what sim-time*.
//!
//! The design constraint is zero cost when disabled: the `World` holds an
//! `Option` around the sink, every emission point is one branch on that
//! option, and no event is even constructed unless a sink is installed.
//! `crates/obs` provides the standard collector (`MetricsSink`) that folds
//! the event stream into a [`MetricsReport`]; the report type lives here
//! because every `ScenarioReport` embeds one.

use std::collections::BTreeMap;
use std::fmt;
use std::sync::{Arc, Mutex};

use serde::{Deserialize, Serialize};

use crate::entity::EntityId;
use crate::label::InfoItem;

/// One structured observability event. Emission points construct these
/// only when a sink is installed.
#[derive(Clone, Debug, PartialEq)]
pub enum ObsEvent {
    /// A wire copy was enqueued for delivery (duplicated packets count
    /// once per copy; dropped packets are counted `Sent` *and*
    /// `Dropped`, so `sent == delivered + dropped + lost + unserviced`).
    MessageSent {
        /// Sending node index.
        src: usize,
        /// Receiving node index.
        dst: usize,
        /// Payload size in bytes.
        bytes: usize,
    },
    /// A message reached a live node and was dispatched to it.
    MessageDelivered {
        /// Sending node index.
        src: usize,
        /// Receiving node index.
        dst: usize,
        /// Payload size in bytes.
        bytes: usize,
    },
    /// A message was lost on the wire (drop fault or partition window).
    MessageDropped {
        /// Sending node index.
        src: usize,
        /// Receiving node index.
        dst: usize,
        /// Payload size in bytes.
        bytes: usize,
        /// Why: `"drop"` or `"partition"`.
        reason: &'static str,
    },
    /// A delivery was swallowed by a crashed/down node.
    MessageLostToCrash {
        /// The node that was down.
        node: usize,
        /// Payload size in bytes.
        bytes: usize,
    },
    /// A delivery was still queued when the simulation was torn down
    /// (deadline hit before quiescence).
    MessageUnserviced {
        /// Payload size in bytes.
        bytes: usize,
    },
    /// A fault was injected (mirrors the `FaultLog` entry).
    FaultInjected {
        /// Catalog name, e.g. `"drop"`, `"crash"`, `"key_compromise"`.
        kind: &'static str,
    },
    /// A cryptographic operation ran (RSA blind-signature step, VOPRF
    /// evaluation, HPKE seal/open, AEAD, …).
    CryptoOp {
        /// Operation name, e.g. `"rsa_sign"`, `"hpke_open"`.
        op: &'static str,
    },
    /// A protocol phase completed, with its sim-time extent.
    Span {
        /// Phase name, e.g. `"withdraw"`, `"fetch"`, `"aggregate"`.
        name: &'static str,
        /// Phase start, µs of sim-time.
        start_us: u64,
        /// Phase end, µs of sim-time.
        end_us: u64,
    },
    /// An entity's ledger grew: `entity` learned `item` at the event's
    /// sim-time.
    Knowledge {
        /// The learning entity.
        entity: EntityId,
        /// What it learned.
        item: InfoItem,
    },
    /// The recovery layer re-sent a logical request: `attempt` (1-based
    /// for the first *retry*) of sequence number `seq` at `node`. The
    /// retransmission is re-randomized (fresh HPKE enc / blind factor /
    /// shares), never a byte replay — see `dcp-recover`.
    RecoveryRetry {
        /// The retrying node index.
        node: usize,
        /// ARQ sequence number of the logical request.
        seq: u64,
        /// Attempt number just sent (0 = first transmission).
        attempt: u32,
    },
    /// The recovery layer routed an attempt to a backup relay.
    RecoveryFailover {
        /// The failing-over node index.
        node: usize,
        /// ARQ sequence number of the logical request.
        seq: u64,
        /// Ordinal of the route the attempt left.
        from_route: usize,
        /// Ordinal of the route the attempt now takes.
        to_route: usize,
    },
    /// The deterministic circuit breaker quarantined a route after K
    /// consecutive failures.
    RecoveryQuarantine {
        /// The node whose breaker tripped.
        node: usize,
        /// Ordinal of the quarantined route.
        route: usize,
        /// Absolute µs sim-time at which the quarantine lifts.
        until_us: u64,
    },
    /// The recovery layer exhausted its attempt budget and abandoned a
    /// request (only reachable under fault tiers harsher than the DST
    /// completion bar).
    RecoveryGiveUp {
        /// The abandoning node index.
        node: usize,
        /// ARQ sequence number of the abandoned request.
        seq: u64,
        /// Attempts that were made.
        attempts: u32,
    },
    /// One world of a multi-seed sweep finished ([`crate::sweep`]). In a
    /// parallel sweep these arrive in **completion** order, which is not
    /// deterministic — progress events must never feed a report artifact.
    SweepProgress {
        /// Zero-based index of the finished world within the sweep.
        index: u64,
        /// The derived per-world seed.
        seed: u64,
        /// Worlds finished so far (including this one).
        done: u64,
        /// Total worlds in the sweep.
        total: u64,
    },
}

/// The single observability interface: everything in the workspace emits
/// through one installed sink.
///
/// Implementations must not call back into the `World` that hosts them
/// (the sink is locked during emission). Sinks are `Send` so a `World`
/// (and every report embedding one) can cross threads — the property the
/// parallel sweep engine ([`crate::sweep`]) fans worlds out on.
pub trait ObsSink: Send {
    /// Handle one event at sim-time `at_us`.
    fn on_event(&mut self, at_us: u64, event: &ObsEvent);
}

/// The `World`'s handle on an installed sink: a shared, optional
/// reference. `Default` is "no sink", so the disabled path through
/// [`ObsHandle::emit`] is a single `Option` branch; the enabled path
/// takes one uncontended mutex lock per event (a world and its sink live
/// on one thread — the lock exists so the *types* are `Send` and whole
/// worlds can be fanned across sweep workers).
#[derive(Clone, Default)]
pub struct ObsHandle {
    sink: Option<Arc<Mutex<dyn ObsSink>>>,
}

impl fmt::Debug for ObsHandle {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ObsHandle")
            .field("installed", &self.sink.is_some())
            .finish()
    }
}

impl ObsHandle {
    /// Wrap an installed sink.
    pub fn new(sink: Arc<Mutex<dyn ObsSink>>) -> Self {
        ObsHandle { sink: Some(sink) }
    }

    /// Is a sink installed?
    #[inline]
    pub fn is_enabled(&self) -> bool {
        self.sink.is_some()
    }

    /// Emit one event; a no-op (one branch) when no sink is installed.
    #[inline]
    pub fn emit(&self, at_us: u64, event: &ObsEvent) {
        if let Some(sink) = &self.sink {
            sink.lock()
                .expect("obs sink poisoned")
                .on_event(at_us, event);
        }
    }

    /// Remove the sink (so a retained `World` stops emitting).
    pub fn clear(&mut self) {
        self.sink = None;
    }
}

/// One recorded protocol-phase span.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct SpanRecord {
    /// Phase name.
    pub name: String,
    /// Start, µs of sim-time.
    pub start_us: u64,
    /// End, µs of sim-time.
    pub end_us: u64,
}

impl SpanRecord {
    /// Span duration in µs.
    pub fn duration_us(&self) -> u64 {
        self.end_us.saturating_sub(self.start_us)
    }
}

/// Fold-as-you-go aggregate over the spans of one name: the streaming
/// counterpart of the itemised [`SpanRecord`] list, always maintained by
/// the collector so population-scale runs (which drop the list) keep
/// exact counts, totals, and extremes.
#[derive(Clone, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct SpanStats {
    /// How many spans completed under this name.
    pub count: u64,
    /// Sum of span durations, µs.
    pub total_us: u64,
    /// Shortest span, µs (0 when `count == 0`).
    pub min_us: u64,
    /// Longest span, µs.
    pub max_us: u64,
}

impl SpanStats {
    /// Fold one span duration into the aggregate.
    pub fn fold(&mut self, duration_us: u64) {
        if self.count == 0 {
            self.min_us = duration_us;
            self.max_us = duration_us;
        } else {
            self.min_us = self.min_us.min(duration_us);
            self.max_us = self.max_us.max(duration_us);
        }
        self.count += 1;
        self.total_us += duration_us;
    }

    /// Mean duration in µs, or `None` when no span was folded.
    pub fn mean_us(&self) -> Option<f64> {
        if self.count == 0 {
            None
        } else {
            Some(self.total_us as f64 / self.count as f64)
        }
    }
}

/// One knowledge-accrual event: which label reached which entity at what
/// sim-time. `entity` is resolved to a name when the collector is
/// finalized against the final `World`.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct KnowledgeRecord {
    /// Sim-time of the accrual, µs.
    pub at_us: u64,
    /// Raw `EntityId` payload of the learner.
    pub entity_id: u64,
    /// Entity name (filled in at finalization; empty until then).
    pub entity: String,
    /// The learned item.
    pub item: InfoItem,
}

/// Aggregated metrics for one scenario run, embedded in every
/// `ScenarioReport`. When the run was not instrumented, `enabled` is
/// `false` and everything else is zero/empty.
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct MetricsReport {
    /// Was a sink installed for this run?
    pub enabled: bool,
    /// Scenario name (e.g. `"odns"`).
    pub scenario: String,
    /// Scenario seed.
    pub seed: u64,
    /// Sim-time of the last observed event, µs.
    pub sim_end_us: u64,
    /// Wire copies enqueued (duplicates count per copy; dropped sends
    /// count here too).
    pub messages_sent: u64,
    /// Messages dispatched to a live node.
    pub messages_delivered: u64,
    /// Messages lost on the wire (drop faults + partition windows).
    pub messages_dropped: u64,
    /// Deliveries swallowed by crashed nodes.
    pub messages_lost_to_crash: u64,
    /// Deliveries still queued at teardown (deadline runs).
    pub messages_unserviced: u64,
    /// Bytes across all sent copies.
    pub bytes_sent: u64,
    /// Bytes across delivered messages.
    pub bytes_delivered: u64,
    /// Retransmissions sent by the recovery layer
    /// ([`ObsEvent::RecoveryRetry`]).
    pub recovery_retries: u64,
    /// Attempts that switched to a backup route
    /// ([`ObsEvent::RecoveryFailover`]).
    pub recovery_failovers: u64,
    /// Circuit-breaker trips ([`ObsEvent::RecoveryQuarantine`]).
    pub recovery_quarantines: u64,
    /// Requests abandoned after the attempt budget
    /// ([`ObsEvent::RecoveryGiveUp`]).
    pub recovery_give_ups: u64,
    /// Crypto invocations by operation name.
    pub crypto_ops: BTreeMap<String, u64>,
    /// Injected faults by catalog name.
    pub faults: BTreeMap<String, u64>,
    /// Knowledge-accrual events per entity name (filled at finalization).
    pub knowledge_by_entity: BTreeMap<String, u64>,
    /// Fold-as-you-go span aggregates by name — always populated, even
    /// when the itemised `spans` list is dropped (streaming mode).
    pub span_stats: BTreeMap<String, SpanStats>,
    /// Every completed protocol-phase span. Empty in streaming mode;
    /// `span_stats` keeps the aggregates.
    pub spans: Vec<SpanRecord>,
    /// The knowledge-accrual timeline, in emission order. Empty in
    /// streaming mode; `knowledge_by_entity` keeps the counts.
    pub knowledge: Vec<KnowledgeRecord>,
}

impl MetricsReport {
    /// A report for an uninstrumented run.
    pub fn disabled() -> Self {
        MetricsReport::default()
    }

    /// Total crypto invocations across all operations.
    pub fn crypto_total(&self) -> u64 {
        self.crypto_ops.values().sum()
    }

    /// Count of spans with the given name. Prefers the streaming
    /// aggregate (always folded by the collector); falls back to the
    /// itemised list for hand-built reports.
    pub fn span_count(&self, name: &str) -> usize {
        match self.span_stats.get(name) {
            Some(s) => s.count as usize,
            None => self.spans.iter().filter(|s| s.name == name).count(),
        }
    }

    /// Mean duration (µs) of spans with the given name, or `None` if
    /// there are none. Same streaming-first sourcing as
    /// [`span_count`](MetricsReport::span_count).
    pub fn mean_span_us(&self, name: &str) -> Option<f64> {
        if let Some(s) = self.span_stats.get(name) {
            return s.mean_us();
        }
        let durations: Vec<u64> = self
            .spans
            .iter()
            .filter(|s| s.name == name)
            .map(SpanRecord::duration_us)
            .collect();
        if durations.is_empty() {
            return None;
        }
        Some(durations.iter().sum::<u64>() as f64 / durations.len() as f64)
    }

    /// A fixed-bucket histogram of span durations (µs) for `name`:
    /// `bounds` are inclusive upper edges, the returned vector has
    /// `bounds.len() + 1` counts (last bucket = overflow).
    pub fn span_histogram(&self, name: &str, bounds: &[u64]) -> Vec<u64> {
        let mut counts = vec![0u64; bounds.len() + 1];
        for s in self.spans.iter().filter(|s| s.name == name) {
            let d = s.duration_us();
            let idx = bounds.iter().position(|&b| d <= b).unwrap_or(bounds.len());
            counts[idx] += 1;
        }
        counts
    }

    /// The wire-accounting identity every run must satisfy at
    /// quiescence; the obs property tests assert this across presets.
    pub fn wire_accounting_holds(&self) -> bool {
        self.messages_sent
            == self.messages_delivered
                + self.messages_dropped
                + self.messages_lost_to_crash
                + self.messages_unserviced
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct CountingSink {
        events: Vec<(u64, ObsEvent)>,
    }

    impl ObsSink for CountingSink {
        fn on_event(&mut self, at_us: u64, event: &ObsEvent) {
            self.events.push((at_us, event.clone()));
        }
    }

    #[test]
    fn disabled_handle_is_inert() {
        let h = ObsHandle::default();
        assert!(!h.is_enabled());
        h.emit(5, &ObsEvent::CryptoOp { op: "noop" });
    }

    #[test]
    fn handle_forwards_events() {
        let sink = Arc::new(Mutex::new(CountingSink { events: Vec::new() }));
        let h = ObsHandle::new(sink.clone());
        assert!(h.is_enabled());
        h.emit(7, &ObsEvent::CryptoOp { op: "rsa_sign" });
        h.emit(
            9,
            &ObsEvent::MessageSent {
                src: 0,
                dst: 1,
                bytes: 32,
            },
        );
        assert_eq!(sink.lock().unwrap().events.len(), 2);
        assert_eq!(sink.lock().unwrap().events[0].0, 7);
    }

    #[test]
    fn report_helpers() {
        let mut r = MetricsReport::default();
        r.spans.push(SpanRecord {
            name: "fetch".into(),
            start_us: 0,
            end_us: 100,
        });
        r.spans.push(SpanRecord {
            name: "fetch".into(),
            start_us: 10,
            end_us: 310,
        });
        r.crypto_ops.insert("hpke_seal".into(), 3);
        r.crypto_ops.insert("hpke_open".into(), 2);
        assert_eq!(r.span_count("fetch"), 2);
        assert_eq!(r.mean_span_us("fetch"), Some(200.0));
        assert_eq!(r.mean_span_us("absent"), None);
        assert_eq!(r.crypto_total(), 5);
        assert_eq!(r.span_histogram("fetch", &[150, 500]), vec![1, 1, 0]);
    }

    #[test]
    fn wire_accounting_identity() {
        let mut r = MetricsReport {
            messages_sent: 10,
            messages_delivered: 7,
            messages_dropped: 2,
            messages_lost_to_crash: 1,
            ..MetricsReport::default()
        };
        assert!(r.wire_accounting_holds());
        r.messages_delivered = 8;
        assert!(!r.wire_accounting_holds());
    }
}
