//! Knowledge tuples — the `(▲, ⊙)` cells of the paper's tables — derived
//! from an entity's accumulated [`crate::label::InfoSet`].

use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

use crate::label::{Aspect, IdentityKind, InfoItem, Sensitivity};

/// What an entity knows about a user's *identity* (one lattice point per
/// [`IdentityKind`]).
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum IdVis {
    /// Knows nothing that identifies the user at all.
    None,
    /// `△` — knows the user only as a non-sensitive identity (e.g. an
    /// anonymous member of a network aggregate, or a shuffled pseudonym).
    NonSensitive,
    /// `▲` — knows a sensitive identity.
    Sensitive,
}

/// What an entity knows about a user's *data*.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum DataVis {
    /// Sees no user data.
    None,
    /// `⊙` — sees only non-sensitive data.
    NonSensitive,
    /// `⊙/●` — sees non-sensitive data plus limited sensitive content
    /// (e.g. an origin FQDN, or the validity of a coin).
    Partial,
    /// `●` — sees sensitive data.
    Sensitive,
}

/// The knowledge tuple of one entity about one subject.
///
/// Most tables use a single undifferentiated identity column; PGPP
/// (§3.2.3) splits identity into `▲_H` and `▲_N`, which is why `identity`
/// is a map keyed by [`IdentityKind`].
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct KnowledgeTuple {
    /// Identity visibility per kind (empty map = knows nothing).
    pub identity: BTreeMap<IdentityKind, IdVis>,
    /// Data visibility.
    pub data: DataVis,
}

impl KnowledgeTuple {
    /// The empty tuple (entity knows nothing about the subject).
    pub fn empty() -> Self {
        KnowledgeTuple {
            identity: BTreeMap::new(),
            data: DataVis::None,
        }
    }

    /// Derive a tuple from the subset of `items` about one subject.
    pub fn from_items<'a, I: IntoIterator<Item = &'a InfoItem>>(items: I) -> Self {
        let mut tuple = Self::empty();
        for item in items {
            match &item.aspect {
                Aspect::Identity(kind) => {
                    let vis = match item.sensitivity {
                        Sensitivity::Sensitive => IdVis::Sensitive,
                        Sensitivity::Partial | Sensitivity::NonSensitive => IdVis::NonSensitive,
                    };
                    let slot = tuple.identity.entry(*kind).or_insert(IdVis::None);
                    if vis > *slot {
                        *slot = vis;
                    }
                }
                Aspect::Data(_) => {
                    let vis = match item.sensitivity {
                        Sensitivity::Sensitive => DataVis::Sensitive,
                        Sensitivity::Partial => DataVis::Partial,
                        Sensitivity::NonSensitive => DataVis::NonSensitive,
                    };
                    if vis > tuple.data {
                        tuple.data = vis;
                    }
                }
            }
        }
        tuple
    }

    /// The *overall* identity visibility: the max across kinds.
    pub fn identity_overall(&self) -> IdVis {
        self.identity.values().copied().max().unwrap_or(IdVis::None)
    }

    /// Does this tuple hold a sensitive identity (`▲`, any kind)?
    pub fn has_sensitive_identity(&self) -> bool {
        self.identity_overall() == IdVis::Sensitive
    }

    /// Does this tuple hold sensitive data (`●`, counting `⊙/●` as seeing
    /// some sensitive content)?
    pub fn has_sensitive_data(&self) -> bool {
        matches!(self.data, DataVis::Sensitive | DataVis::Partial)
    }

    /// The §2.4 coupling test: `(▲, ●)` — knows who the user is *and*
    /// what they do.
    pub fn is_coupled(&self) -> bool {
        self.has_sensitive_identity() && self.has_sensitive_data()
    }

    /// Render in the paper's notation, e.g. `(▲, ⊙)`, `(△, ⊙/●)`, or with
    /// subscripts `(▲_H, △_N, ⊙)` when multiple identity kinds are present.
    pub fn render(&self) -> String {
        let mut parts: Vec<String> = Vec::new();
        let subscripted = self
            .identity
            .keys()
            .any(|k| !matches!(k, IdentityKind::Any));
        if self.identity.is_empty() {
            parts.push("−".to_string());
        } else {
            for (kind, vis) in &self.identity {
                let sym = match vis {
                    IdVis::None => "−",
                    IdVis::NonSensitive => "△",
                    IdVis::Sensitive => "▲",
                };
                let sub = match kind {
                    IdentityKind::Any => "",
                    IdentityKind::Human => "_H",
                    IdentityKind::Network => "_N",
                };
                if subscripted {
                    parts.push(format!("{sym}{sub}"));
                } else {
                    parts.push(sym.to_string());
                }
            }
        }
        parts.push(
            match self.data {
                DataVis::None => "−",
                DataVis::NonSensitive => "⊙",
                DataVis::Partial => "⊙/●",
                DataVis::Sensitive => "●",
            }
            .to_string(),
        );
        format!("({})", parts.join(", "))
    }
}

impl core::fmt::Display for KnowledgeTuple {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.write_str(&self.render())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::entity::UserId;
    use crate::label::DataKind;

    fn u() -> UserId {
        UserId(1)
    }

    #[test]
    fn empty_tuple_renders_dashes() {
        let t = KnowledgeTuple::empty();
        assert_eq!(t.render(), "(−, −)");
        assert!(!t.is_coupled());
    }

    #[test]
    fn coupled_tuple() {
        let items = [
            InfoItem::sensitive_identity(u(), IdentityKind::Any),
            InfoItem::sensitive_data(u(), DataKind::Payload),
        ];
        let t = KnowledgeTuple::from_items(items.iter());
        assert_eq!(t.render(), "(▲, ●)");
        assert!(t.is_coupled());
    }

    #[test]
    fn decoupled_tuples() {
        let id_only = KnowledgeTuple::from_items(
            [
                InfoItem::sensitive_identity(u(), IdentityKind::Any),
                InfoItem::plain_data(u(), DataKind::Payload),
            ]
            .iter(),
        );
        assert_eq!(id_only.render(), "(▲, ⊙)");
        assert!(!id_only.is_coupled());

        let data_only = KnowledgeTuple::from_items(
            [
                InfoItem::plain_identity(u(), IdentityKind::Any),
                InfoItem::sensitive_data(u(), DataKind::Payload),
            ]
            .iter(),
        );
        assert_eq!(data_only.render(), "(△, ●)");
        assert!(!data_only.is_coupled());
    }

    #[test]
    fn partial_data_renders_slash_and_counts_as_coupling_half() {
        let t = KnowledgeTuple::from_items(
            [
                InfoItem::plain_identity(u(), IdentityKind::Any),
                InfoItem::partial_data(u(), DataKind::Destination),
            ]
            .iter(),
        );
        assert_eq!(t.render(), "(△, ⊙/●)");
        assert!(t.has_sensitive_data());
        assert!(!t.is_coupled(), "no sensitive identity");

        let c = KnowledgeTuple::from_items(
            [
                InfoItem::sensitive_identity(u(), IdentityKind::Any),
                InfoItem::partial_data(u(), DataKind::Destination),
            ]
            .iter(),
        );
        assert!(c.is_coupled(), "▲ plus partial ● couples");
    }

    #[test]
    fn max_wins_within_aspect() {
        let t = KnowledgeTuple::from_items(
            [
                InfoItem::plain_data(u(), DataKind::Payload),
                InfoItem::sensitive_data(u(), DataKind::DnsQuery),
                InfoItem::plain_identity(u(), IdentityKind::Any),
            ]
            .iter(),
        );
        assert_eq!(t.data, DataVis::Sensitive);
        assert_eq!(t.identity_overall(), IdVis::NonSensitive);
    }

    #[test]
    fn pgpp_style_subscripts() {
        let t = KnowledgeTuple::from_items(
            [
                InfoItem::sensitive_identity(u(), IdentityKind::Human),
                InfoItem::plain_identity(u(), IdentityKind::Network),
                InfoItem::plain_data(u(), DataKind::Payload),
            ]
            .iter(),
        );
        assert_eq!(t.render(), "(▲_H, △_N, ⊙)");
        assert!(!t.is_coupled());
    }

    #[test]
    fn data_vis_ordering_drives_max() {
        assert!(DataVis::Sensitive > DataVis::Partial);
        assert!(DataVis::Partial > DataVis::NonSensitive);
        assert!(DataVis::NonSensitive > DataVis::None);
        assert!(IdVis::Sensitive > IdVis::NonSensitive);
    }
}
