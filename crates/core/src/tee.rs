//! Trusted Execution Environments as decoupling substrates (§4.3).
//!
//! "A TEE moves the locus of trust in which the software runs to the
//! hardware manufacturer." In framework terms, a verified enclave is an
//! entity whose trust domain is *neither* its operator nor the user: it is
//! keyed by a measurement-bound attestation, so the operator cannot read
//! what the enclave reads — achieving decoupling on a single machine.
//!
//! The model is deliberately small: measurements are hashes of the
//! "program"; attestation binds (measurement, enclave key) under a
//! vendor key; verifiers check both before sealing data to the enclave.

use dcp_crypto::hmac::{hmac_sha256, hmac_verify};
use dcp_crypto::sha256::sha256;
use serde::{Deserialize, Serialize};

/// A hardware vendor (root of trust). Holds the attestation key.
#[derive(Clone)]
pub struct Vendor {
    name: String,
    attestation_key: [u8; 32],
}

/// A measured enclave program.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct Measurement(pub [u8; 32]);

/// An attestation: the vendor vouches that an enclave with this
/// measurement holds this (public) key.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct Attestation {
    /// Program measurement.
    pub measurement: Measurement,
    /// The enclave's key-exchange public key.
    pub enclave_public: [u8; 32],
    /// Vendor MAC over (measurement ‖ enclave_public).
    pub evidence: [u8; 32],
}

/// A running enclave instance.
pub struct Enclave {
    measurement: Measurement,
    /// X25519 private key generated inside the enclave.
    private: [u8; 32],
    /// Its public half, bound into the attestation.
    pub public: [u8; 32],
    attestation: Attestation,
}

impl Vendor {
    /// Create a vendor root of trust.
    pub fn new<R: rand::Rng + ?Sized>(rng: &mut R, name: &str) -> Self {
        let mut attestation_key = [0u8; 32];
        rng.fill_bytes(&mut attestation_key);
        Vendor {
            name: name.to_string(),
            attestation_key,
        }
    }

    /// Vendor name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Launch an enclave running `program` (its bytes are measured) on this
    /// vendor's hardware.
    pub fn launch<R: rand::Rng + ?Sized>(&self, rng: &mut R, program: &[u8]) -> Enclave {
        let measurement = Measurement(sha256(program));
        let (private, public) = dcp_crypto::x25519::keypair(rng);
        let mut msg = measurement.0.to_vec();
        msg.extend_from_slice(&public);
        let evidence = hmac_sha256(&self.attestation_key, &msg);
        Enclave {
            measurement: measurement.clone(),
            private,
            public,
            attestation: Attestation {
                measurement,
                enclave_public: public,
                evidence,
            },
        }
    }

    /// Verify an attestation produced by this vendor's hardware.
    pub fn verify(&self, att: &Attestation) -> bool {
        let mut msg = att.measurement.0.to_vec();
        msg.extend_from_slice(&att.enclave_public);
        hmac_verify(&self.attestation_key, &msg, &att.evidence)
    }
}

impl Enclave {
    /// The attestation to present to remote verifiers.
    pub fn attestation(&self) -> &Attestation {
        &self.attestation
    }

    /// The program measurement.
    pub fn measurement(&self) -> &Measurement {
        &self.measurement
    }

    /// Open an HPKE message sealed to the enclave's attested key. The
    /// *operator* of the machine has no access to `private`, which is what
    /// makes the enclave a distinct trust domain.
    pub fn open(&self, info: &[u8], aad: &[u8], msg: &[u8]) -> dcp_crypto::Result<Vec<u8>> {
        let kp = dcp_crypto::hpke::Keypair {
            private: self.private,
            public: self.public,
        };
        dcp_crypto::hpke::open(&kp, info, aad, msg)
    }
}

/// Client-side: verify attestation against the expected vendor and
/// program, then seal `plaintext` to the enclave.
pub fn seal_to_enclave<R: rand::Rng + ?Sized>(
    rng: &mut R,
    vendor: &Vendor,
    expected_program: &[u8],
    att: &Attestation,
    info: &[u8],
    aad: &[u8],
    plaintext: &[u8],
) -> Result<Vec<u8>, SealError> {
    if !vendor.verify(att) {
        return Err(SealError::BadAttestation);
    }
    if att.measurement != Measurement(sha256(expected_program)) {
        return Err(SealError::WrongProgram);
    }
    dcp_crypto::hpke::seal(rng, &att.enclave_public, info, aad, plaintext)
        .map_err(|_| SealError::Crypto)
}

/// Errors from [`seal_to_enclave`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SealError {
    /// Attestation evidence failed vendor verification.
    BadAttestation,
    /// Attestation is genuine but for a different program.
    WrongProgram,
    /// Underlying HPKE failure.
    Crypto,
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng() -> rand::rngs::StdRng {
        rand::rngs::StdRng::seed_from_u64(321)
    }

    #[test]
    fn attested_enclave_roundtrip() {
        let mut rng = rng();
        let vendor = Vendor::new(&mut rng, "chipco");
        let program = b"fn main() { cache_without_looking(); }";
        let enclave = vendor.launch(&mut rng, program);
        let sealed = seal_to_enclave(
            &mut rng,
            &vendor,
            program,
            enclave.attestation(),
            b"cdn",
            b"",
            b"origin TLS key",
        )
        .unwrap();
        assert_eq!(
            enclave.open(b"cdn", b"", &sealed).unwrap(),
            b"origin TLS key"
        );
    }

    #[test]
    fn wrong_program_rejected() {
        let mut rng = rng();
        let vendor = Vendor::new(&mut rng, "chipco");
        let enclave = vendor.launch(&mut rng, b"honest program");
        let err = seal_to_enclave(
            &mut rng,
            &vendor,
            b"the program the client expects",
            enclave.attestation(),
            b"",
            b"",
            b"secret",
        )
        .unwrap_err();
        assert_eq!(err, SealError::WrongProgram);
    }

    #[test]
    fn forged_attestation_rejected() {
        let mut rng = rng();
        let vendor = Vendor::new(&mut rng, "chipco");
        let other_vendor = Vendor::new(&mut rng, "evil-fab");
        let program = b"p";
        // Enclave launched on a different root of trust.
        let enclave = other_vendor.launch(&mut rng, program);
        let err = seal_to_enclave(
            &mut rng,
            &vendor,
            program,
            enclave.attestation(),
            b"",
            b"",
            b"secret",
        )
        .unwrap_err();
        assert_eq!(err, SealError::BadAttestation);
    }

    #[test]
    fn tampered_evidence_rejected() {
        let mut rng = rng();
        let vendor = Vendor::new(&mut rng, "chipco");
        let enclave = vendor.launch(&mut rng, b"p");
        let mut att = enclave.attestation().clone();
        att.evidence[0] ^= 1;
        assert!(!vendor.verify(&att));
        // Key substitution also caught (evidence binds the key).
        let mut att2 = enclave.attestation().clone();
        att2.enclave_public[0] ^= 1;
        assert!(!vendor.verify(&att2));
    }

    #[test]
    fn operator_cannot_open() {
        // The "operator" is anyone without the enclave's private key: a
        // fresh keypair cannot open what was sealed to the enclave.
        let mut rng = rng();
        let vendor = Vendor::new(&mut rng, "chipco");
        let enclave = vendor.launch(&mut rng, b"p");
        let sealed = seal_to_enclave(
            &mut rng,
            &vendor,
            b"p",
            enclave.attestation(),
            b"",
            b"",
            b"s",
        )
        .unwrap();
        let operator_kp = dcp_crypto::hpke::Keypair::generate(&mut rng);
        assert!(dcp_crypto::hpke::open(&operator_kp, b"", b"", &sealed).is_err());
    }
}
