//! Fault-injection *data* types: configuration, catalog, and replay log.
//!
//! These live in `dcp-core` (rather than `dcp-faults`, which hosts the
//! seeded [`Injector`](https://docs.rs) machinery) because the unified
//! [`Scenario`](crate::Scenario) trait takes a [`FaultConfig`] and every
//! report carries a [`FaultLog`] — the *vocabulary* of faults is part of
//! the core API surface, while the *generator* stays in `dcp-faults`.
//! `dcp-faults` re-exports everything here at its original paths, so
//! `dcp_faults::FaultConfig` keeps working.

use serde::{Deserialize, Serialize};

/// Probabilities and parameters for every fault the injector can draw.
///
/// All probabilities are per-opportunity (per packet send, per node
/// dispatch, …) in `[0, 1]`. The three presets — [`FaultConfig::calm`],
/// [`FaultConfig::moderate`], [`FaultConfig::chaos`] — are the tiers the
/// DST harness sweeps; hand-tuned configs are fine too.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct FaultConfig {
    /// Master switch. `false` means the injector is never even
    /// constructed, so the disabled-faults overhead inside the simulator
    /// is a single `Option` branch.
    pub enabled: bool,
    /// P(drop a packet on the wire).
    pub p_drop: f64,
    /// P(deliver a packet twice).
    pub p_duplicate: f64,
    /// P(add extra queueing delay to a delivery).
    pub p_extra_delay: f64,
    /// Upper bound on the extra delay, in µs.
    pub max_extra_delay_us: u64,
    /// P(reorder: hold a packet long enough that later traffic on the
    /// same link overtakes it).
    pub p_reorder: f64,
    /// P(open a bidirectional partition between the endpoints of the
    /// packet being sent). While a partition window is open, everything
    /// between the pair is silently dropped.
    pub p_partition: f64,
    /// How long a partition window stays open, in µs.
    pub partition_window_us: u64,
    /// P(a node crashes when an event is dispatched to it). The node
    /// loses every message and timer that arrives while it is down, then
    /// restarts with its state intact.
    pub p_crash: f64,
    /// How long a crashed node stays down, in µs.
    pub crash_down_us: u64,
    /// P(crash) for nodes marked as *relays* — the mid-circuit churn the
    /// multi-hop systems (mix-nets, MPR, ODoH proxies) must survive.
    pub p_relay_churn: f64,
    /// P(a relay *joins* the fleet) per directory gossip tick — a
    /// departed or spare relay is re-admitted to the directory. Only
    /// meaningful for fleet-enabled runs (`dcp-fleet`); the fixed-relay
    /// wirings never consult it.
    pub p_relay_join: f64,
    /// P(a relay *leaves* the fleet) per directory gossip tick — its
    /// descriptor is tombstoned and new chains stop selecting it (in-
    /// flight circuits finish; departure is membership churn, not a
    /// crash). Fleet-only, like [`FaultConfig::p_relay_join`].
    pub p_relay_leave: f64,
    /// P(open a bidirectional partition between two *directory* nodes on
    /// a gossip send) — the anti-entropy healing test. Uses the same
    /// window length as [`FaultConfig::partition_window_us`]. Fleet-only.
    pub p_dir_partition: f64,
    /// Hard cap on injected faults per run: a liveness backstop so chaos
    /// tiers cannot starve a protocol forever (TigerBeetle caps its
    /// storage faults the same way).
    pub max_faults: u64,
}

impl Default for FaultConfig {
    fn default() -> Self {
        FaultConfig::calm()
    }
}

impl FaultConfig {
    /// No faults at all — the baseline every DST comparison is made
    /// against.
    pub fn calm() -> Self {
        FaultConfig {
            enabled: false,
            p_drop: 0.0,
            p_duplicate: 0.0,
            p_extra_delay: 0.0,
            max_extra_delay_us: 0,
            p_reorder: 0.0,
            p_partition: 0.0,
            partition_window_us: 0,
            p_crash: 0.0,
            crash_down_us: 0,
            p_relay_churn: 0.0,
            p_relay_join: 0.0,
            p_relay_leave: 0.0,
            p_dir_partition: 0.0,
            max_faults: 0,
        }
    }

    /// Realistic bad-day network: a few percent of packets misbehave,
    /// relays occasionally blip. Scenarios are expected to *complete or
    /// fail closed* under this tier.
    pub fn moderate() -> Self {
        FaultConfig {
            enabled: true,
            p_drop: 0.01,
            p_duplicate: 0.02,
            p_extra_delay: 0.05,
            max_extra_delay_us: 20_000,
            p_reorder: 0.03,
            p_partition: 0.002,
            partition_window_us: 30_000,
            p_crash: 0.0,
            crash_down_us: 20_000,
            p_relay_churn: 0.002,
            p_relay_join: 0.0,
            p_relay_leave: 0.0,
            p_dir_partition: 0.0,
            max_faults: 200,
        }
    }

    /// Hostile *infrastructure*: heavy loss, duplication, reordering,
    /// partitions, and relay churn — but no client crashes (`p_crash =
    /// 0`), because the harsh tier carries a **completion** bar: with the
    /// recovery layer enabled every request must eventually be answered,
    /// and a scenario whose client dies mid-protocol has no one left to
    /// retry. The finite [`FaultConfig::max_faults`] budget is the
    /// liveness lever — once it is exhausted, retransmissions run
    /// fault-free and the ARQ completes.
    pub fn harsh() -> Self {
        FaultConfig {
            enabled: true,
            p_drop: 0.10,
            p_duplicate: 0.08,
            p_extra_delay: 0.10,
            max_extra_delay_us: 40_000,
            p_reorder: 0.06,
            p_partition: 0.004,
            partition_window_us: 40_000,
            p_crash: 0.0,
            crash_down_us: 30_000,
            p_relay_churn: 0.006,
            p_relay_join: 0.0,
            p_relay_leave: 0.0,
            p_dir_partition: 0.0,
            max_faults: 600,
        }
    }

    /// [`FaultConfig::harsh`] plus fleet-level churn: relays join and
    /// leave the directory mid-run, directory gossip links partition, and
    /// (in fleet-enabled wirings) relay keys rotate underneath in-flight
    /// traffic. Like `harsh` it carries a **completion** bar: every
    /// fleet-enabled wiring must finish its whole workload with knowledge
    /// tables byte-identical to the fixed-relay, fault-free baseline.
    ///
    /// Deliberately *not* part of [`FaultConfig::presets`]: the DST sweep
    /// battery iterates that array, and its baseline artifacts are
    /// byte-pinned in CI. Fleet probes (`dst_fleet`) call this directly.
    pub fn harsh_fleet() -> Self {
        FaultConfig {
            p_relay_join: 0.10,
            p_relay_leave: 0.15,
            p_dir_partition: 0.02,
            ..FaultConfig::harsh()
        }
    }

    /// Hostile network: heavy loss, duplication, partitions, and node
    /// crashes. Liveness is *not* promised here — only safety (the
    /// knowledge ledgers stay decoupled).
    pub fn chaos() -> Self {
        FaultConfig {
            enabled: true,
            p_drop: 0.08,
            p_duplicate: 0.08,
            p_extra_delay: 0.15,
            max_extra_delay_us: 100_000,
            p_reorder: 0.10,
            p_partition: 0.01,
            partition_window_us: 80_000,
            p_crash: 0.005,
            crash_down_us: 50_000,
            p_relay_churn: 0.01,
            p_relay_join: 0.0,
            p_relay_leave: 0.0,
            p_dir_partition: 0.0,
            max_faults: 2_000,
        }
    }

    /// The four presets with their names, in escalating order — what the
    /// DST harness sweeps. `harsh` sits between `moderate` and `chaos`:
    /// heavier wire faults than `moderate`, but no client crashes, so the
    /// harness can demand full completion (every query answered, every
    /// token redeemed) when the recovery layer is on.
    pub fn presets() -> [(&'static str, FaultConfig); 4] {
        [
            ("calm", FaultConfig::calm()),
            ("moderate", FaultConfig::moderate()),
            ("harsh", FaultConfig::harsh()),
            ("chaos", FaultConfig::chaos()),
        ]
    }
}

/// One injected fault, as recorded in the [`FaultLog`].
///
/// Node ids are raw `usize` indices (the simulator's `NodeId` payload):
/// this crate sits *below* `dcp-simnet` in the dependency graph, so it
/// speaks indices, and the log still replays and compares exactly.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum FaultKind {
    /// A packet from `src` to `dst` vanished on the wire.
    Drop {
        /// Sending node index.
        src: usize,
        /// Receiving node index.
        dst: usize,
    },
    /// A packet was delivered `copies` times instead of once.
    Duplicate {
        /// Sending node index.
        src: usize,
        /// Receiving node index.
        dst: usize,
        /// Total deliveries (≥ 2).
        copies: u32,
    },
    /// A delivery was held back by `delay_us` extra microseconds.
    ExtraDelay {
        /// Sending node index.
        src: usize,
        /// Receiving node index.
        dst: usize,
        /// Extra queueing delay in µs.
        delay_us: u64,
    },
    /// A delivery was held back far enough for later same-link traffic to
    /// overtake it (distinct from [`FaultKind::ExtraDelay`] so logs show
    /// *intent*).
    Reorder {
        /// Sending node index.
        src: usize,
        /// Receiving node index.
        dst: usize,
        /// The hold-back applied, in µs.
        delay_us: u64,
    },
    /// A bidirectional partition opened between `a` and `b`.
    Partition {
        /// One endpoint (lower index).
        a: usize,
        /// Other endpoint.
        b: usize,
        /// Absolute µs timestamp at which the window closes.
        until_us: u64,
    },
    /// Node `node` crashed; it restarts (state intact) at `until_us`.
    Crash {
        /// The crashed node.
        node: usize,
        /// Absolute µs timestamp of the restart.
        until_us: u64,
    },
    /// A relay node crashed mid-circuit (drawn from `p_relay_churn`
    /// rather than `p_crash`). This used to be called `RelayChurn` back
    /// when a crash was the *only* churn the injector modeled; the
    /// observability event stream still names the draw `relay_churn` so
    /// recorded fault logs stay readable, and [`FaultKind::relay_churn`]
    /// keeps old constructor call sites compiling (with a deprecation
    /// warning).
    RelayCrash {
        /// The crashed relay.
        node: usize,
        /// Absolute µs timestamp of the restart.
        until_us: u64,
    },
    /// A relay joined (or re-joined) the fleet: its directory descriptor
    /// became servable again. Drawn from `p_relay_join` at a directory
    /// gossip tick; `node` is the relay's fleet index, not a simulator
    /// node id (the fleet layer sits above the simulator).
    RelayJoin {
        /// Fleet index of the joining relay.
        node: usize,
    },
    /// A relay left the fleet: its descriptor was tombstoned, so new
    /// chains stop selecting it while in-flight circuits finish. Drawn
    /// from `p_relay_leave` at a directory gossip tick.
    RelayLeave {
        /// Fleet index of the departing relay.
        node: usize,
    },
    /// A bidirectional partition opened between two *directory* nodes —
    /// recorded distinctly from [`FaultKind::Partition`] so logs show
    /// that the anti-entropy path, not the data path, was attacked.
    DirPartition {
        /// One directory endpoint (lower index).
        a: usize,
        /// Other directory endpoint.
        b: usize,
        /// Absolute µs timestamp at which the window closes.
        until_us: u64,
    },
    /// A message or timer arrived at a node while it was down and was
    /// lost.
    CrashLoss {
        /// The down node that missed the event.
        node: usize,
    },
    /// `beneficiary` acquired one of `victim`'s decryption capabilities —
    /// the §4.2 collusion model. The only catalog entry allowed to break
    /// decoupling.
    KeyCompromise {
        /// Entity whose key leaked (raw `EntityId` payload).
        victim: u64,
        /// Entity that gained the key.
        beneficiary: u64,
        /// The leaked key (raw `KeyId` payload).
        key: u64,
    },
}

impl FaultKind {
    /// Deprecated constructor for what is now
    /// [`FaultKind::RelayCrash`]. Enum variants cannot carry rename
    /// aliases, so the old name survives as this constructor (for code)
    /// and as the `relay_churn` observability event name (for logs).
    #[deprecated(since = "0.1.0", note = "renamed to FaultKind::RelayCrash")]
    pub fn relay_churn(node: usize, until_us: u64) -> FaultKind {
        FaultKind::RelayCrash { node, until_us }
    }
}

/// One timestamped entry of the [`FaultLog`].
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct FaultEvent {
    /// Simulated time of injection, µs.
    pub at_us: u64,
    /// What was injected.
    pub kind: FaultKind,
}

/// The replay artifact: every fault injected during one run, in
/// injection order. Two runs from the same `(seed, FaultConfig)` must
/// produce `==` logs — the DST harness asserts exactly that.
#[derive(Clone, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct FaultLog {
    events: Vec<FaultEvent>,
}

impl FaultLog {
    /// All events, in injection order.
    pub fn events(&self) -> &[FaultEvent] {
        &self.events
    }

    /// Number of injected faults.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Were any faults injected?
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Count events matching a predicate (e.g. "how many drops?").
    pub fn count(&self, pred: impl Fn(&FaultKind) -> bool) -> usize {
        self.events.iter().filter(|e| pred(&e.kind)).count()
    }

    /// Packets lost on the directed link `src → dst`: wire drops plus
    /// deliveries swallowed by a down receiver. The trace property tests
    /// reconcile `Trace::on_link` against this.
    pub fn drops_on_link(&self, src: usize, dst: usize) -> usize {
        self.count(|k| matches!(k, FaultKind::Drop { src: s, dst: d } if *s == src && *d == dst))
    }

    /// Extra copies delivered on the directed link `src → dst`.
    pub fn duplicates_on_link(&self, src: usize, dst: usize) -> usize {
        self.events
            .iter()
            .filter_map(|e| match &e.kind {
                FaultKind::Duplicate {
                    src: s,
                    dst: d,
                    copies,
                } if *s == src && *d == dst => Some(*copies as usize - 1),
                _ => None,
            })
            .sum()
    }

    /// Append an event (the injector and hand-built test logs both use
    /// this).
    pub fn push(&mut self, at_us: u64, kind: FaultKind) {
        self.events.push(FaultEvent { at_us, kind });
    }
}
