//! The multi-seed sweep model: deterministic seed derivation, the
//! [`SweepBuilder`] description, the [`SweepExecutor`] execution hook,
//! and the ordered reduction that makes a parallel sweep's output
//! **byte-identical** to the sequential run.
//!
//! Every empirical claim this workspace makes — the §3 knowledge tables,
//! the §4.2 degrees-of-decoupling curves, the DST safety sweeps — gets
//! more convincing with more seeds, and every seed is an independent
//! world. This module turns "for s in 0..seeds" loops into a first-class
//! object with three guarantees:
//!
//! 1. **Independent streams.** Per-world seeds are derived from the
//!    master seed by the SplitMix64 output function
//!    ([`derive_seed`]); worlds never share RNG state, so world *i*'s
//!    traffic is the same whether worlds run on one thread or sixteen.
//! 2. **Ordered reduction.** Executors must yield results positionally
//!    aligned with their jobs; [`SweepRun`] additionally carries each
//!    world's index and re-sorts before any fold, so aggregation never
//!    observes completion order.
//! 3. **Progress is observability, not data.** The optional progress
//!    callback goes through the standard [`ObsSink`] hook and arrives in
//!    completion order — deliberately segregated from results so nothing
//!    nondeterministic can leak into an artifact.
//!
//! The actual parallel engine lives in `dcp-sweep` (so scenario crates
//! never grow a rayon dependency); this module defines the contract plus
//! the sequential reference executor the engine is compared against.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use serde::Serialize;

use crate::obs::{ObsEvent, ObsSink};

/// The SplitMix64 output function (Steele, Lea, Flood 2014): a bijective
/// avalanche mix over `u64`.
#[inline]
pub fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Derive the seed for world `index` of a sweep from `master_seed`: the
/// `index`-th output of the SplitMix64 stream seeded at `master_seed`
/// (closed form, so derivation is O(1) and order-independent). Distinct
/// indices give statistically independent streams; no world ever
/// continues another world's RNG.
#[inline]
pub fn derive_seed(master_seed: u64, index: u64) -> u64 {
    splitmix64(master_seed.wrapping_add(index.wrapping_mul(0x9e37_79b9_7f4a_7c15)))
}

/// One unit of sweep work: the `index`-th world and its derived seed.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize)]
pub struct SweepJob {
    /// Zero-based position in the sweep.
    pub index: u64,
    /// [`derive_seed`]`(master_seed, index)`.
    pub seed: u64,
}

/// How to execute a batch of independent sweep jobs.
///
/// Contract: the returned vector must be positionally aligned with
/// `jobs` (`out[i]` is `f(&jobs[i])`), and `f` must be called **at most
/// once per job**. Parallel implementations may run jobs in any order on
/// any thread; alignment is what keeps the reduction deterministic.
pub trait SweepExecutor {
    /// Run `f` over every job, returning outputs aligned with `jobs`.
    fn execute<T: Send>(&self, jobs: &[SweepJob], f: &(dyn Fn(&SweepJob) -> T + Sync)) -> Vec<T>;
}

/// The reference executor: runs jobs in index order on the calling
/// thread. The parallel engine in `dcp-sweep` is required (and tested)
/// to produce byte-identical results to this.
#[derive(Clone, Copy, Debug, Default)]
pub struct SequentialExecutor;

impl SweepExecutor for SequentialExecutor {
    fn execute<T: Send>(&self, jobs: &[SweepJob], f: &(dyn Fn(&SweepJob) -> T + Sync)) -> Vec<T> {
        jobs.iter().map(f).collect()
    }
}

/// Describes a multi-seed sweep: master seed, world count, thread cap,
/// and an optional completion-progress sink.
#[derive(Clone, Default)]
pub struct SweepBuilder {
    master_seed: u64,
    worlds: u64,
    threads: usize,
    progress: Option<Arc<Mutex<dyn ObsSink>>>,
}

impl SweepBuilder {
    /// A sweep of one world from `master_seed`.
    pub fn new(master_seed: u64) -> Self {
        SweepBuilder {
            master_seed,
            worlds: 1,
            threads: 0,
            progress: None,
        }
    }

    /// Number of independent worlds to run.
    pub fn worlds(mut self, n: u64) -> Self {
        self.worlds = n;
        self
    }

    /// Cap parallel executors at `cap` threads (`0`, the default, means
    /// "let the executor decide" — all cores for the parallel engine).
    /// Purely an execution hint: results are identical at any cap.
    pub fn threads(mut self, cap: usize) -> Self {
        self.threads = cap;
        self
    }

    /// Install a progress sink: one [`ObsEvent::SweepProgress`] per
    /// finished world, in completion order (not deterministic under a
    /// parallel executor — display only, never data).
    pub fn progress(mut self, sink: Arc<Mutex<dyn ObsSink>>) -> Self {
        self.progress = Some(sink);
        self
    }

    /// The sweep's master seed.
    pub fn master_seed(&self) -> u64 {
        self.master_seed
    }

    /// The number of worlds this sweep will run.
    pub fn world_count(&self) -> u64 {
        self.worlds
    }

    /// The configured thread cap (`0` = executor default).
    pub fn thread_cap(&self) -> usize {
        self.threads
    }

    /// The derived seed for world `index` (see [`derive_seed`]).
    pub fn seed_at(&self, index: u64) -> u64 {
        derive_seed(self.master_seed, index)
    }

    /// Materialize the job list, in index order.
    pub fn jobs(&self) -> Vec<SweepJob> {
        (0..self.worlds)
            .map(|index| SweepJob {
                index,
                seed: self.seed_at(index),
            })
            .collect()
    }

    /// Run the sweep on `exec`. `f` must be a pure function of its job
    /// (the same discipline [`crate::Scenario::run_with`] already
    /// demands), and the returned [`SweepRun`] is identical for every
    /// conforming executor.
    pub fn run_on<T, F, X>(&self, exec: &X, f: F) -> SweepRun<T>
    where
        T: Send,
        F: Fn(&SweepJob) -> T + Sync,
        X: SweepExecutor + ?Sized,
    {
        let jobs = self.jobs();
        let total = self.worlds;
        let done = AtomicU64::new(0);
        let progress = self.progress.clone();
        let wrapped = |job: &SweepJob| {
            let out = f(job);
            if let Some(sink) = &progress {
                let done = done.fetch_add(1, Ordering::Relaxed) + 1;
                sink.lock().expect("progress sink poisoned").on_event(
                    0,
                    &ObsEvent::SweepProgress {
                        index: job.index,
                        seed: job.seed,
                        done,
                        total,
                    },
                );
            }
            out
        };
        let results = exec.execute(&jobs, &wrapped);
        debug_assert_eq!(results.len(), jobs.len(), "executor dropped jobs");
        let mut entries: Vec<SweepEntry<T>> = jobs
            .into_iter()
            .zip(results)
            .map(|(job, result)| SweepEntry {
                index: job.index,
                seed: job.seed,
                result,
            })
            .collect();
        // Executors are contractually aligned, but the reduction must not
        // depend on it: order by index before anything folds.
        entries.sort_by_key(|e| e.index);
        SweepRun {
            master_seed: self.master_seed,
            entries,
        }
    }

    /// Run the sweep on the calling thread ([`SequentialExecutor`]).
    pub fn run_sequential<T, F>(&self, f: F) -> SweepRun<T>
    where
        T: Send,
        F: Fn(&SweepJob) -> T + Sync,
    {
        self.run_on(&SequentialExecutor, f)
    }
}

impl core::fmt::Debug for SweepBuilder {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("SweepBuilder")
            .field("master_seed", &self.master_seed)
            .field("worlds", &self.worlds)
            .field("threads", &self.threads)
            .field("progress", &self.progress.is_some())
            .finish()
    }
}

/// One world's slot in a sweep result.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SweepEntry<T> {
    /// Zero-based world index.
    pub index: u64,
    /// The world's derived seed.
    pub seed: u64,
    /// What the world produced.
    pub result: T,
}

/// The outcome of a sweep: per-world results **in index order**,
/// independent of which executor ran them.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SweepRun<T> {
    /// The sweep's master seed.
    pub master_seed: u64,
    /// One entry per world, sorted by index.
    pub entries: Vec<SweepEntry<T>>,
}

impl<T> SweepRun<T> {
    /// Per-world results in index order.
    pub fn results(&self) -> impl Iterator<Item = &T> {
        self.entries.iter().map(|e| &e.result)
    }

    /// Consume into the per-world results, in index order.
    pub fn into_results(self) -> Vec<T> {
        self.entries.into_iter().map(|e| e.result).collect()
    }

    /// The derived seeds, in index order.
    pub fn seeds(&self) -> Vec<u64> {
        self.entries.iter().map(|e| e.seed).collect()
    }

    /// Ordered fold: `f` sees entries strictly in index order, so any
    /// aggregate built here is executor-independent.
    pub fn fold<B>(&self, init: B, f: impl FnMut(B, &SweepEntry<T>) -> B) -> B {
        self.entries.iter().fold(init, f)
    }

    /// Summarize each world into a serializable [`SweepReport`] (the
    /// JSON artifact shape: what the CI determinism diff compares).
    pub fn report<R, F>(&self, mut summarize: F) -> SweepReport<R>
    where
        R: Serialize,
        F: FnMut(&SweepEntry<T>) -> R,
    {
        SweepReport {
            master_seed: self.master_seed,
            worlds: self.entries.len() as u64,
            entries: self
                .entries
                .iter()
                .map(|e| SweepEntry {
                    index: e.index,
                    seed: e.seed,
                    result: summarize(e),
                })
                .collect(),
        }
    }
}

/// The serializable face of a sweep: master seed, world count, and one
/// summarized entry per world in index order. Byte-identical JSON across
/// executors and thread counts is the engine's headline guarantee.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SweepReport<R: Serialize> {
    /// The sweep's master seed.
    pub master_seed: u64,
    /// Number of worlds.
    pub worlds: u64,
    /// Per-world summaries, in index order.
    pub entries: Vec<SweepEntry<R>>,
}

// The vendored serde derive shim doesn't handle generic types, so the
// serializable sweep containers spell out their `Value` trees by hand
// (field order here IS the JSON field order the CI diff compares).
impl<T: Serialize> Serialize for SweepEntry<T> {
    fn serialize_value(&self) -> serde::Value {
        serde::Value::Object(vec![
            ("index".to_string(), self.index.serialize_value()),
            ("seed".to_string(), self.seed.serialize_value()),
            ("result".to_string(), self.result.serialize_value()),
        ])
    }
}

impl<T: Serialize> Serialize for SweepRun<T> {
    fn serialize_value(&self) -> serde::Value {
        serde::Value::Object(vec![
            (
                "master_seed".to_string(),
                self.master_seed.serialize_value(),
            ),
            ("entries".to_string(), self.entries.serialize_value()),
        ])
    }
}

impl<R: Serialize> Serialize for SweepReport<R> {
    fn serialize_value(&self) -> serde::Value {
        serde::Value::Object(vec![
            (
                "master_seed".to_string(),
                self.master_seed.serialize_value(),
            ),
            ("worlds".to_string(), self.worlds.serialize_value()),
            ("entries".to_string(), self.entries.serialize_value()),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn derive_seed_is_stable_and_spread() {
        // Pinned values: changing the derivation silently would invalidate
        // every recorded sweep artifact, so lock it down.
        assert_eq!(derive_seed(0, 0), splitmix64(0));
        assert_eq!(derive_seed(42, 0), splitmix64(42));
        let seeds: Vec<u64> = (0..64).map(|i| derive_seed(7, i)).collect();
        let mut uniq = seeds.clone();
        uniq.sort_unstable();
        uniq.dedup();
        assert_eq!(uniq.len(), seeds.len(), "derived seeds collide");
        // Neighbouring indices differ in roughly half their bits.
        let close = (derive_seed(7, 0) ^ derive_seed(7, 1)).count_ones();
        assert!((8..=56).contains(&close), "weak avalanche: {close} bits");
    }

    #[test]
    fn builder_jobs_are_indexed_and_derived() {
        let b = SweepBuilder::new(99).worlds(4);
        let jobs = b.jobs();
        assert_eq!(jobs.len(), 4);
        for (i, j) in jobs.iter().enumerate() {
            assert_eq!(j.index, i as u64);
            assert_eq!(j.seed, derive_seed(99, i as u64));
        }
    }

    #[test]
    fn sequential_run_folds_in_order() {
        let run = SweepBuilder::new(3)
            .worlds(5)
            .run_sequential(|job| job.index * 10);
        assert_eq!(run.into_results(), vec![0, 10, 20, 30, 40]);
    }

    /// An adversarial executor that reverses job order (but keeps the
    /// positional alignment contract); the reduction must not care.
    struct ReversingExecutor;

    impl SweepExecutor for ReversingExecutor {
        fn execute<T: Send>(
            &self,
            jobs: &[SweepJob],
            f: &(dyn Fn(&SweepJob) -> T + Sync),
        ) -> Vec<T> {
            let mut out: Vec<(usize, T)> = jobs
                .iter()
                .enumerate()
                .rev()
                .map(|(i, job)| (i, f(job)))
                .collect();
            out.sort_by_key(|(i, _)| *i);
            out.into_iter().map(|(_, t)| t).collect()
        }
    }

    #[test]
    fn reduction_is_executor_independent() {
        let b = SweepBuilder::new(1234).worlds(7);
        let f = |job: &SweepJob| format!("w{}:{:x}", job.index, job.seed);
        let seq = b.run_on(&SequentialExecutor, f);
        let rev = b.run_on(&ReversingExecutor, f);
        assert_eq!(seq, rev);
        let report_a = seq.report(|e| e.result.clone());
        let report_b = rev.report(|e| e.result.clone());
        assert_eq!(report_a.serialize_value(), report_b.serialize_value());
    }

    struct CountingSink {
        events: Vec<ObsEvent>,
    }

    impl ObsSink for CountingSink {
        fn on_event(&mut self, _at_us: u64, event: &ObsEvent) {
            self.events.push(event.clone());
        }
    }

    #[test]
    fn progress_fires_once_per_world() {
        let sink = Arc::new(Mutex::new(CountingSink { events: Vec::new() }));
        let run = SweepBuilder::new(5)
            .worlds(6)
            .progress(sink.clone())
            .run_sequential(|job| job.seed);
        assert_eq!(run.entries.len(), 6);
        let events = &sink.lock().unwrap().events;
        assert_eq!(events.len(), 6);
        let ObsEvent::SweepProgress { done, total, .. } = events[5] else {
            panic!("wrong event kind");
        };
        assert_eq!((done, total), (6, 6));
    }
}
