//! Recovery *data* types: configuration for the deterministic
//! retry/timeout/failover layer.
//!
//! Like [`crate::faults`], this module holds only the *vocabulary*: the
//! [`RecoverConfig`] every [`Scenario`](crate::Scenario) run takes via
//! [`RunOptions`](crate::RunOptions). The machinery — the `ReliableCall`
//! ARQ state machine, the `Failover` circuit breaker, the wire framing —
//! lives in `dcp-recover`, which sits *above* this crate in the
//! dependency graph and re-exports these types at its own paths.

use serde::{Deserialize, Serialize};

/// Parameters of the deterministic recovery layer: per-attempt deadlines,
/// exponential backoff, and the failover circuit breaker.
///
/// `Default` is [`RecoverConfig::disabled`] — the zero-overhead path, in
/// which scenarios neither frame sequence numbers nor arm retry timers,
/// so a calm run is bit-for-bit identical to a run of a build without the
/// recovery layer. [`RecoverConfig::standard`] is what the DST harness
/// enables; the chainable setters tune individual knobs from either
/// starting point.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct RecoverConfig {
    /// Master switch. `false` means no sequence framing, no timers, no
    /// retries — the scenario behaves exactly as if the layer did not
    /// exist.
    pub enabled: bool,
    /// Total attempts per logical request, including the first
    /// transmission. Retries stop (and the call is reported abandoned)
    /// after this many.
    pub max_attempts: u32,
    /// Deadline for the first attempt, in µs. Must comfortably exceed the
    /// scenario's worst-case fault-free round trip.
    pub base_timeout_us: u64,
    /// Multiplier applied to the deadline after each failed attempt
    /// (`2` = classic exponential backoff).
    pub backoff_factor: u64,
    /// Upper bound on the per-attempt deadline, in µs (keeps the
    /// exponential curve from overshooting the fault budget's horizon).
    pub max_backoff_us: u64,
    /// Maximum seeded jitter added to each deadline, in µs. Drawn from a
    /// dedicated SplitMix64 stream derived from the run seed — never from
    /// the protocol RNG — so enabling recovery perturbs no protocol
    /// randomness and runs stay bit-for-bit reproducible under sweeps.
    pub jitter_us: u64,
    /// Consecutive failures on one route before the circuit breaker
    /// quarantines it (K in the issue's terms).
    pub breaker_threshold: u32,
    /// How long a quarantined route is skipped, in µs.
    pub quarantine_us: u64,
}

impl Default for RecoverConfig {
    fn default() -> Self {
        RecoverConfig::disabled()
    }
}

impl RecoverConfig {
    /// Recovery off: no framing, no timers, no retries.
    pub fn disabled() -> Self {
        RecoverConfig {
            enabled: false,
            max_attempts: 1,
            base_timeout_us: 0,
            backoff_factor: 1,
            max_backoff_us: 0,
            jitter_us: 0,
            breaker_threshold: u32::MAX,
            quarantine_us: 0,
        }
    }

    /// The tier the DST harness runs under every preset: generous
    /// attempts (the harsh preset's finite fault budget guarantees the
    /// tail attempts run clean), deadlines that clear the worst injected
    /// delay plus a partition window, and a fast-tripping breaker.
    /// Values are documented in `docs/DST_GUIDE.md`.
    pub fn standard() -> Self {
        RecoverConfig {
            enabled: true,
            max_attempts: 24,
            base_timeout_us: 120_000,
            backoff_factor: 2,
            max_backoff_us: 500_000,
            jitter_us: 15_000,
            breaker_threshold: 2,
            quarantine_us: 300_000,
        }
    }

    /// Set the attempt ceiling.
    pub fn max_attempts(mut self, n: u32) -> Self {
        self.max_attempts = n.max(1);
        self
    }

    /// Set the first-attempt deadline, µs.
    pub fn base_timeout_us(mut self, us: u64) -> Self {
        self.base_timeout_us = us;
        self
    }

    /// Set the per-failure deadline multiplier.
    pub fn backoff_factor(mut self, f: u64) -> Self {
        self.backoff_factor = f.max(1);
        self
    }

    /// Set the deadline cap, µs.
    pub fn max_backoff_us(mut self, us: u64) -> Self {
        self.max_backoff_us = us;
        self
    }

    /// Set the maximum seeded jitter, µs.
    pub fn jitter_us(mut self, us: u64) -> Self {
        self.jitter_us = us;
        self
    }

    /// Set the circuit-breaker trip threshold (consecutive failures).
    pub fn breaker_threshold(mut self, k: u32) -> Self {
        self.breaker_threshold = k.max(1);
        self
    }

    /// Set the quarantine window, µs.
    pub fn quarantine_us(mut self, us: u64) -> Self {
        self.quarantine_us = us;
        self
    }

    /// The deterministic (pre-jitter) deadline for `attempt` (0-based):
    /// `min(base · factor^attempt, max_backoff)`, saturating — a
    /// `u64::MAX` base survives as "the end of time", it does not panic.
    pub fn backoff_for(&self, attempt: u32) -> u64 {
        let mut d = self.base_timeout_us;
        for _ in 0..attempt {
            d = d.saturating_mul(self.backoff_factor);
            if d >= self.max_backoff_us {
                break;
            }
        }
        if self.max_backoff_us > 0 {
            d.min(self.max_backoff_us)
        } else {
            d
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_disabled() {
        let c = RecoverConfig::default();
        assert!(!c.enabled);
        assert_eq!(c, RecoverConfig::disabled());
    }

    #[test]
    fn builder_chains() {
        let c = RecoverConfig::standard()
            .max_attempts(7)
            .base_timeout_us(1_000)
            .backoff_factor(3)
            .max_backoff_us(50_000)
            .jitter_us(0)
            .breaker_threshold(4)
            .quarantine_us(9_000);
        assert!(c.enabled);
        assert_eq!(c.max_attempts, 7);
        assert_eq!(c.backoff_for(0), 1_000);
        assert_eq!(c.backoff_for(1), 3_000);
        assert_eq!(c.backoff_for(2), 9_000);
        assert_eq!(c.backoff_for(10), 50_000, "capped");
        assert_eq!(c.breaker_threshold, 4);
        assert_eq!(c.quarantine_us, 9_000);
    }

    #[test]
    fn backoff_saturates_at_u64_max() {
        let c = RecoverConfig::standard()
            .base_timeout_us(u64::MAX)
            .max_backoff_us(0); // 0 = uncapped
        assert_eq!(c.backoff_for(0), u64::MAX);
        assert_eq!(c.backoff_for(5), u64::MAX, "multiplication saturates");
        let capped = RecoverConfig::standard()
            .base_timeout_us(u64::MAX / 2)
            .backoff_factor(u64::MAX)
            .max_backoff_us(u64::MAX);
        assert_eq!(capped.backoff_for(3), u64::MAX);
    }

    #[test]
    fn degenerate_knobs_are_clamped() {
        let c = RecoverConfig::standard()
            .max_attempts(0)
            .backoff_factor(0)
            .breaker_threshold(0);
        assert_eq!(c.max_attempts, 1);
        assert_eq!(c.backoff_factor, 1);
        assert_eq!(c.breaker_threshold, 1);
    }
}
