//! Information atoms, sensitivity lattices, and payload label trees.
//!
//! Every plaintext that flows through the simulator carries an [`InfoSet`]:
//! the set of facts an observer learns by reading it. Encryption wraps that
//! set inside a [`Label::Sealed`] node keyed by a [`KeyId`]; only entities
//! holding the key can descend into the node. This mirrors the *real*
//! cryptographic structure built by `dcp-transport` (HPKE layers, onion
//! wrapping) so that "who learns what" is a computation over labels, never
//! a hand-written assertion.

use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;

use crate::entity::UserId;

/// Sensitivity of a piece of information, per §2.4 of the paper.
///
/// The paper's footnote 1 acknowledges that sensitivity is not binary; we
/// add `Partial` for data that is "limited information about the user's
/// request (such as the FQDN of the origin server)" — rendered `⊙/●` in
/// the MPR and blind-signature tables.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum Sensitivity {
    /// `⊙` / `△` — non-sensitive.
    NonSensitive,
    /// `⊙/●` — limited sensitive content (data only).
    Partial,
    /// `●` / `▲` — sensitive.
    Sensitive,
}

/// Which *kind* of user identity an item names. §3.2.3 (PGPP) decomposes
/// `▲` into a human identity `▲_H` (name, billing) and a network identity
/// `▲_N` (IMSI, IP address); other systems use a single undifferentiated
/// identity.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum IdentityKind {
    /// Undifferentiated user identity (most tables in the paper).
    Any,
    /// Human identity: legal name, billing relationship (`▲_H`).
    Human,
    /// Network identity: IP address, IMSI, account id (`▲_N`).
    Network,
}

/// Which kind of user data an item describes. Used for reporting and for
/// fine-grained experiments (e.g. DNS striping measures `DnsQuery` items).
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum DataKind {
    /// Generic application payload.
    Payload,
    /// A DNS query name.
    DnsQuery,
    /// The destination/origin a user is contacting (FQDN or address).
    Destination,
    /// Message content in a messaging system.
    Message,
    /// A financial transaction (amount, merchandise).
    Purchase,
    /// Physical location (cell, geo-area).
    Location,
    /// An individual telemetry/measurement contribution.
    Measurement,
    /// Browsing or usage history in aggregate.
    Activity,
}

/// The aspect of the user an [`InfoItem`] describes: an identity or data.
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum Aspect {
    /// A user identity of the given kind.
    Identity(IdentityKind),
    /// User data of the given kind.
    Data(DataKind),
}

/// One labeled atom of knowledge: *entity X knows this aspect of user S
/// at this sensitivity*.
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct InfoItem {
    /// The user (data subject) the item is about.
    pub subject: UserId,
    /// Identity or data, and which kind.
    pub aspect: Aspect,
    /// How sensitive the item is.
    pub sensitivity: Sensitivity,
}

impl InfoItem {
    /// A sensitive identity item (`▲`).
    pub fn sensitive_identity(subject: UserId, kind: IdentityKind) -> Self {
        InfoItem {
            subject,
            aspect: Aspect::Identity(kind),
            sensitivity: Sensitivity::Sensitive,
        }
    }

    /// A non-sensitive identity item (`△`), e.g. "an anonymous member of a
    /// network aggregate".
    pub fn plain_identity(subject: UserId, kind: IdentityKind) -> Self {
        InfoItem {
            subject,
            aspect: Aspect::Identity(kind),
            sensitivity: Sensitivity::NonSensitive,
        }
    }

    /// A sensitive data item (`●`).
    pub fn sensitive_data(subject: UserId, kind: DataKind) -> Self {
        InfoItem {
            subject,
            aspect: Aspect::Data(kind),
            sensitivity: Sensitivity::Sensitive,
        }
    }

    /// A partially-sensitive data item (`⊙/●`), e.g. an origin FQDN.
    pub fn partial_data(subject: UserId, kind: DataKind) -> Self {
        InfoItem {
            subject,
            aspect: Aspect::Data(kind),
            sensitivity: Sensitivity::Partial,
        }
    }

    /// A non-sensitive data item (`⊙`).
    pub fn plain_data(subject: UserId, kind: DataKind) -> Self {
        InfoItem {
            subject,
            aspect: Aspect::Data(kind),
            sensitivity: Sensitivity::NonSensitive,
        }
    }

    /// Is this an identity item?
    pub fn is_identity(&self) -> bool {
        matches!(self.aspect, Aspect::Identity(_))
    }
}

/// A set of information atoms.
pub type InfoSet = BTreeSet<InfoItem>;

/// Identifier of a decryption capability. A [`Label::Sealed`] node can only
/// be opened by entities that hold its key.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct KeyId(pub u64);

/// The information structure of a payload, mirroring its encryption
/// structure.
///
/// `dcp-transport` keeps labels in lock-step with real ciphertext: sealing
/// bytes under an HPKE key also wraps the label in [`Label::Sealed`] with
/// the corresponding [`KeyId`].
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum Label {
    /// No user information at all (padding, control traffic).
    Public,
    /// Plaintext carrying these facts.
    Clear(InfoSet),
    /// Ciphertext: the inner label is only visible to holders of `key`.
    Sealed {
        /// The decryption capability required.
        key: KeyId,
        /// What the ciphertext protects.
        inner: Box<Label>,
    },
    /// Concatenation of independently-visible parts (e.g. an envelope's
    /// clear header plus its sealed body).
    Bundle(Vec<Label>),
}

impl Label {
    /// Convenience: a clear label with a single item.
    pub fn item(item: InfoItem) -> Self {
        let mut s = InfoSet::new();
        s.insert(item);
        Label::Clear(s)
    }

    /// Convenience: a clear label from items.
    pub fn items<I: IntoIterator<Item = InfoItem>>(items: I) -> Self {
        Label::Clear(items.into_iter().collect())
    }

    /// Seal this label under `key`.
    pub fn sealed(self, key: KeyId) -> Self {
        Label::Sealed {
            key,
            inner: Box::new(self),
        }
    }

    /// Bundle with another label.
    pub fn and(self, other: Label) -> Self {
        match self {
            Label::Bundle(mut v) => {
                v.push(other);
                Label::Bundle(v)
            }
            l => Label::Bundle(vec![l, other]),
        }
    }

    /// Everything an observer holding `keys` learns from this payload.
    ///
    /// Sealed nodes are opaque to non-holders: they contribute nothing
    /// (envelope metadata such as source address must be modeled as clear
    /// parts of a [`Label::Bundle`], which is exactly what `dcp-simnet`
    /// does for packet headers).
    pub fn observe<F: Fn(KeyId) -> bool + Copy>(&self, has_key: F) -> InfoSet {
        let mut out = InfoSet::new();
        self.observe_into(has_key, &mut out);
        out
    }

    fn observe_into<F: Fn(KeyId) -> bool + Copy>(&self, has_key: F, out: &mut InfoSet) {
        match self {
            Label::Public => {}
            Label::Clear(items) => out.extend(items.iter().cloned()),
            Label::Sealed { key, inner } => {
                if has_key(*key) {
                    inner.observe_into(has_key, out);
                }
            }
            Label::Bundle(parts) => {
                for p in parts {
                    p.observe_into(has_key, out);
                }
            }
        }
    }

    /// The full information content (what an omniscient observer —
    /// equivalently, a coalition holding every key — would learn).
    pub fn full_content(&self) -> InfoSet {
        self.observe(|_| true)
    }

    /// Depth of the deepest sealed nesting (onion layer count).
    pub fn seal_depth(&self) -> usize {
        match self {
            Label::Public | Label::Clear(_) => 0,
            Label::Sealed { inner, .. } => 1 + inner.seal_depth(),
            Label::Bundle(parts) => parts.iter().map(Label::seal_depth).max().unwrap_or(0),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn uid(n: u64) -> UserId {
        UserId(n)
    }

    #[test]
    fn sensitivity_is_ordered() {
        assert!(Sensitivity::Sensitive > Sensitivity::Partial);
        assert!(Sensitivity::Partial > Sensitivity::NonSensitive);
    }

    #[test]
    fn clear_label_is_visible_to_all() {
        let item = InfoItem::sensitive_data(uid(1), DataKind::Payload);
        let l = Label::item(item.clone());
        let seen = l.observe(|_| false);
        assert!(seen.contains(&item));
        assert_eq!(seen.len(), 1);
    }

    #[test]
    fn sealed_label_requires_key() {
        let item = InfoItem::sensitive_data(uid(1), DataKind::Payload);
        let l = Label::item(item.clone()).sealed(KeyId(7));
        assert!(l.observe(|_| false).is_empty());
        assert!(l.observe(|k| k == KeyId(7)).contains(&item));
        assert!(l.observe(|k| k == KeyId(8)).is_empty());
    }

    #[test]
    fn nested_sealing_requires_all_keys_on_path() {
        let item = InfoItem::sensitive_data(uid(1), DataKind::Message);
        let onion = Label::item(item.clone()).sealed(KeyId(1)).sealed(KeyId(2));
        // Outer key only: still opaque.
        assert!(onion.observe(|k| k == KeyId(2)).is_empty());
        // Inner key only: can't get past the outer layer.
        assert!(onion.observe(|k| k == KeyId(1)).is_empty());
        // Both: visible.
        assert!(onion.observe(|_| true).contains(&item));
        assert_eq!(onion.seal_depth(), 2);
    }

    #[test]
    fn bundle_unions_visible_parts() {
        let hdr = InfoItem::sensitive_identity(uid(1), IdentityKind::Network);
        let body = InfoItem::sensitive_data(uid(1), DataKind::Payload);
        let pkt = Label::item(hdr.clone()).and(Label::item(body.clone()).sealed(KeyId(3)));
        let outside = pkt.observe(|_| false);
        assert!(outside.contains(&hdr), "envelope is visible");
        assert!(!outside.contains(&body), "body is sealed");
        let holder = pkt.observe(|k| k == KeyId(3));
        assert!(holder.contains(&hdr) && holder.contains(&body));
    }

    #[test]
    fn full_content_sees_everything() {
        let a = InfoItem::plain_data(uid(1), DataKind::Activity);
        let b = InfoItem::sensitive_data(uid(2), DataKind::Location);
        let l =
            Label::item(a.clone()).and(Label::item(b.clone()).sealed(KeyId(1)).sealed(KeyId(2)));
        let all = l.full_content();
        assert!(all.contains(&a) && all.contains(&b));
    }

    #[test]
    fn public_label_carries_nothing() {
        assert!(Label::Public.full_content().is_empty());
        assert_eq!(Label::Public.seal_depth(), 0);
    }

    #[test]
    fn and_flattens_bundles() {
        let l = Label::Public.and(Label::Public).and(Label::Public);
        match l {
            Label::Bundle(v) => assert_eq!(v.len(), 3),
            _ => panic!("expected bundle"),
        }
    }
}
