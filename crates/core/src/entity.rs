//! Entities, organizations, and users.
//!
//! The paper distinguishes **architectural** decoupling (separating
//! functions across components) from **institutional** decoupling
//! (separating the remaining knowledge across *non-colluding
//! organizations*). Entities here carry an [`OrgId`] so the collusion
//! analysis can reason at either granularity.

use serde::{Deserialize, Serialize};

/// A user / data subject.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct UserId(pub u64);

/// An entity participating in a system (a server, relay, resolver, …, or
/// the user's own device).
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct EntityId(pub u64);

/// An organization operating one or more entities.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct OrgId(pub u64);

/// Metadata describing one entity.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Entity {
    /// Stable identifier.
    pub id: EntityId,
    /// Human-readable role name, used as the table column header
    /// ("Mix 1", "Oblivious Resolver", …).
    pub name: String,
    /// The operating organization (institutional trust domain).
    pub org: OrgId,
    /// When `Some(u)`, this entity *is* user `u` (their device / client
    /// software): it is allowed to hold `(▲, ●)` about `u`.
    pub user_domain: Option<UserId>,
}

impl Entity {
    /// Does this entity belong to `user`'s own trust domain?
    pub fn is_user_domain_of(&self, user: UserId) -> bool {
        self.user_domain == Some(user)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn user_domain_check() {
        let e = Entity {
            id: EntityId(1),
            name: "Client".into(),
            org: OrgId(0),
            user_domain: Some(UserId(9)),
        };
        assert!(e.is_user_domain_of(UserId(9)));
        assert!(!e.is_user_domain_of(UserId(8)));
        let s = Entity {
            id: EntityId(2),
            name: "Server".into(),
            org: OrgId(1),
            user_domain: None,
        };
        assert!(!s.is_user_domain_of(UserId(9)));
    }
}
