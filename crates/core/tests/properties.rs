//! Property-based tests of the framework's invariants: the analyzer must
//! behave like a proper information-flow judgment (monotone, order-
//! independent, consistent between its entity- and coalition-level views).

use dcp_core::collusion::entity_collusion;
use dcp_core::{
    analyze, Aspect, DataKind, IdentityKind, InfoItem, KnowledgeTuple, Sensitivity, UserId, World,
};
use proptest::prelude::*;

/// Strategy: an arbitrary info item about one of `n_users` subjects.
fn arb_item(n_users: u64) -> impl Strategy<Value = InfoItem> {
    (
        0..n_users,
        prop_oneof![
            Just(Aspect::Identity(IdentityKind::Any)),
            Just(Aspect::Identity(IdentityKind::Human)),
            Just(Aspect::Identity(IdentityKind::Network)),
            Just(Aspect::Data(DataKind::Payload)),
            Just(Aspect::Data(DataKind::DnsQuery)),
            Just(Aspect::Data(DataKind::Location)),
        ],
        prop_oneof![
            Just(Sensitivity::NonSensitive),
            Just(Sensitivity::Partial),
            Just(Sensitivity::Sensitive),
        ],
    )
        .prop_map(|(u, aspect, sensitivity)| InfoItem {
            subject: UserId(u),
            aspect,
            sensitivity,
        })
}

/// Build a world with `n_entities` third-party entities and ledgers from
/// the given per-entity item lists.
fn build_world(items: &[Vec<InfoItem>], n_users: u64) -> World {
    let mut w = World::new();
    let org = w.add_org("org");
    for _ in 0..n_users {
        w.add_user();
    }
    for (i, ledger) in items.iter().enumerate() {
        let e = w.add_entity(&format!("E{i}"), org, None);
        for item in ledger {
            w.record(e, item.clone());
        }
    }
    w
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn analyzer_is_monotone(
        base in proptest::collection::vec(proptest::collection::vec(arb_item(3), 0..8), 1..4),
        extra in proptest::collection::vec(arb_item(3), 0..6),
    ) {
        let w1 = build_world(&base, 3);
        let coupled_before = !analyze(&w1).decoupled;

        // Add more knowledge to entity 0.
        let mut grown = base.clone();
        grown[0].extend(extra);
        let w2 = build_world(&grown, 3);
        if coupled_before {
            prop_assert!(!analyze(&w2).decoupled, "coupling can never be cured by learning more");
        }
        // And violations only grow.
        prop_assert!(analyze(&w2).violations.len() >= analyze(&w1).violations.len());
    }

    #[test]
    fn verdict_matches_tuple_definition(
        items in proptest::collection::vec(proptest::collection::vec(arb_item(2), 0..8), 1..4),
    ) {
        let w = build_world(&items, 2);
        let verdict = analyze(&w);
        let any_coupled = w.entities().iter().any(|e| {
            w.users().iter().any(|&u| w.tuple(e.id, u).is_coupled())
        });
        prop_assert_eq!(verdict.decoupled, !any_coupled);
    }

    #[test]
    fn tuple_derivation_is_order_independent(
        mut items in proptest::collection::vec(arb_item(1), 0..10),
    ) {
        let forward = KnowledgeTuple::from_items(items.iter());
        items.reverse();
        let backward = KnowledgeTuple::from_items(items.iter());
        prop_assert_eq!(forward, backward);
    }

    #[test]
    fn coalition_dominates_members(
        items in proptest::collection::vec(proptest::collection::vec(arb_item(2), 0..6), 2..4),
    ) {
        let w = build_world(&items, 2);
        let all: Vec<_> = w.entities().iter().map(|e| e.id).collect();
        for &u in w.users() {
            let coalition = w.coalition_tuple(&all, u);
            for &e in &all {
                let single = w.tuple(e, u);
                // The coalition knows at least as much on every axis.
                prop_assert!(coalition.identity_overall() >= single.identity_overall());
                prop_assert!(coalition.data >= single.data);
                if single.is_coupled() {
                    prop_assert!(coalition.is_coupled());
                }
            }
        }
    }

    #[test]
    fn min_collusion_one_iff_single_entity_coupled(
        items in proptest::collection::vec(proptest::collection::vec(arb_item(2), 0..8), 1..4),
    ) {
        let w = build_world(&items, 2);
        for &u in w.users() {
            let single_coupled = w
                .entities()
                .iter()
                .any(|e| w.tuple(e.id, u).is_coupled());
            let rep = entity_collusion(&w, u, w.entities().len());
            prop_assert_eq!(
                rep.min_coalition_size == Some(1),
                single_coupled,
                "min={:?}",
                rep.min_coalition_size
            );
        }
    }

    #[test]
    fn minimal_coalitions_are_minimal(
        items in proptest::collection::vec(proptest::collection::vec(arb_item(1), 0..6), 2..5),
    ) {
        let w = build_world(&items, 1);
        let rep = entity_collusion(&w, UserId(0), w.entities().len());
        // No listed coalition is a superset of another listed coalition.
        for (i, a) in rep.minimal_coalitions.iter().enumerate() {
            for (j, b) in rep.minimal_coalitions.iter().enumerate() {
                if i != j {
                    let a_contains_b = b.iter().all(|x| a.contains(x));
                    prop_assert!(!a_contains_b, "{a:?} ⊇ {b:?}");
                }
            }
        }
    }

    #[test]
    fn render_roundtrips_semantics(items in proptest::collection::vec(arb_item(1), 0..8)) {
        let t = KnowledgeTuple::from_items(items.iter());
        let rendered = t.render();
        // The rendering reflects the coupling state faithfully.
        let shows_sensitive_id = rendered.contains('▲');
        let shows_sensitive_data = rendered.contains('●');
        prop_assert_eq!(t.has_sensitive_identity(), shows_sensitive_id);
        prop_assert_eq!(t.has_sensitive_data(), shows_sensitive_data);
    }
}
