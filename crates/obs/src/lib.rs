//! # dcp-obs — the standard observability collector
//!
//! `dcp-core` defines the hook ([`ObsSink`]) and the data model
//! ([`MetricsReport`]); this crate provides the standard implementation:
//!
//! * [`MetricsSink`] folds the event stream — wire accounting from the
//!   simulator, fault injections, crypto ops, protocol-phase spans, and
//!   per-entity knowledge accrual — into a [`MetricsReport`];
//! * [`MetricsHandle`] is what a scenario keeps while the `World` (and
//!   the sink inside it) is away inside the simulator, and what it
//!   finalizes the report from afterwards;
//! * [`write_json`] / [`to_json`] export reports as the artifacts
//!   `experiments.rs` drops under `out/`.
//!
//! The intended wiring, used identically by all eight scenario crates:
//!
//! ```
//! use dcp_core::World;
//! use dcp_obs::MetricsHandle;
//!
//! let mut world = World::new();
//! let handle = MetricsHandle::install(&mut world, "demo", 42);
//! world.crypto_op("hpke_seal");
//! world.span("fetch", 0, 250);
//! // … run the simulation, get `world` back …
//! let report = handle.finish(&mut world);
//! assert_eq!(report.crypto_ops["hpke_seal"], 1);
//! assert_eq!(report.span_count("fetch"), 1);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::io::Write as _;
use std::path::Path;
use std::sync::{Arc, Mutex};

use std::collections::BTreeMap;

use dcp_core::obs::{KnowledgeRecord, MetricsReport, ObsEvent, ObsSink, SpanRecord};
use dcp_core::World;

/// The standard collector: aggregates every [`ObsEvent`] into a
/// [`MetricsReport`].
///
/// In **streaming** mode the collector keeps only bounded state: the
/// counter fields, the per-name [`SpanStats`](dcp_core::SpanStats)
/// aggregates (folded in both modes), and a compact per-entity knowledge
/// count table — the itemised `spans` / `knowledge` vectors stay empty.
/// That is what lets a 10⁸-event population run carry a metrics sink
/// without unbounded memory.
#[derive(Debug, Default)]
pub struct MetricsSink {
    report: MetricsReport,
    streaming: bool,
    /// Streaming mode's knowledge table: entity id → accruals. Resolved
    /// to names (into `knowledge_by_entity`) at finalization.
    knowledge_counts: BTreeMap<u64, u64>,
}

impl MetricsSink {
    /// A fresh collector tagged with the scenario name and seed.
    pub fn new(scenario: &str, seed: u64) -> Self {
        MetricsSink {
            report: MetricsReport {
                enabled: true,
                scenario: scenario.to_string(),
                seed,
                ..MetricsReport::default()
            },
            streaming: false,
            knowledge_counts: BTreeMap::new(),
        }
    }

    /// A fresh collector in bounded-memory streaming mode.
    pub fn new_streaming(scenario: &str, seed: u64) -> Self {
        MetricsSink {
            streaming: true,
            ..MetricsSink::new(scenario, seed)
        }
    }

    /// Is this collector folding in streaming (bounded-memory) mode?
    pub fn is_streaming(&self) -> bool {
        self.streaming
    }

    /// The report accumulated so far.
    pub fn report(&self) -> &MetricsReport {
        &self.report
    }

    /// Take the accumulated report, leaving a fresh (still-enabled) one.
    pub fn take_report(&mut self) -> MetricsReport {
        let scenario = self.report.scenario.clone();
        let seed = self.report.seed;
        std::mem::replace(&mut self.report, MetricsSink::new(&scenario, seed).report)
    }

    /// Take the report *and* the streaming knowledge table (empty unless
    /// streaming) — what finalization consumes.
    fn take_parts(&mut self) -> (MetricsReport, BTreeMap<u64, u64>) {
        (
            self.take_report(),
            std::mem::take(&mut self.knowledge_counts),
        )
    }
}

impl ObsSink for MetricsSink {
    fn on_event(&mut self, at_us: u64, event: &ObsEvent) {
        let r = &mut self.report;
        r.sim_end_us = r.sim_end_us.max(at_us);
        match event {
            ObsEvent::MessageSent { bytes, .. } => {
                r.messages_sent += 1;
                r.bytes_sent += *bytes as u64;
            }
            ObsEvent::MessageDelivered { bytes, .. } => {
                r.messages_delivered += 1;
                r.bytes_delivered += *bytes as u64;
            }
            ObsEvent::MessageDropped { .. } => {
                r.messages_dropped += 1;
            }
            ObsEvent::MessageLostToCrash { .. } => {
                r.messages_lost_to_crash += 1;
            }
            ObsEvent::MessageUnserviced { .. } => {
                r.messages_unserviced += 1;
            }
            ObsEvent::FaultInjected { kind } => {
                *r.faults.entry((*kind).to_string()).or_insert(0) += 1;
            }
            ObsEvent::CryptoOp { op } => {
                *r.crypto_ops.entry((*op).to_string()).or_insert(0) += 1;
            }
            ObsEvent::Span {
                name,
                start_us,
                end_us,
            } => {
                r.span_stats
                    .entry((*name).to_string())
                    .or_default()
                    .fold(end_us.saturating_sub(*start_us));
                if !self.streaming {
                    r.spans.push(SpanRecord {
                        name: (*name).to_string(),
                        start_us: *start_us,
                        end_us: *end_us,
                    });
                }
            }
            ObsEvent::Knowledge { entity, item } => {
                if self.streaming {
                    *self.knowledge_counts.entry(entity.0).or_insert(0) += 1;
                } else {
                    r.knowledge.push(KnowledgeRecord {
                        at_us,
                        entity_id: entity.0,
                        entity: String::new(),
                        item: item.clone(),
                    });
                }
            }
            ObsEvent::RecoveryRetry { .. } => {
                r.recovery_retries += 1;
            }
            ObsEvent::RecoveryFailover { .. } => {
                r.recovery_failovers += 1;
            }
            ObsEvent::RecoveryQuarantine { .. } => {
                r.recovery_quarantines += 1;
            }
            ObsEvent::RecoveryGiveUp { .. } => {
                r.recovery_give_ups += 1;
            }
            // Sweep progress arrives in completion order, which is not
            // deterministic under parallel execution — it must never fold
            // into a report.
            ObsEvent::SweepProgress { .. } => {}
        }
    }
}

/// The scenario's grip on an installed [`MetricsSink`]. The `World`
/// shares the same `Arc`, so events emitted while the world is inside the
/// simulator land here. (`Arc<Mutex<…>>` rather than `Rc<RefCell<…>>` so
/// a `World` — and every report embedding one — is `Send`, which the
/// parallel sweep engine relies on; a world and its sink still live on
/// one thread, so the lock is always uncontended.)
#[derive(Clone)]
pub struct MetricsHandle {
    sink: Arc<Mutex<MetricsSink>>,
}

impl MetricsHandle {
    /// Create a collector and install it into `world`.
    pub fn install(world: &mut World, scenario: &str, seed: u64) -> Self {
        let sink = Arc::new(Mutex::new(MetricsSink::new(scenario, seed)));
        world.install_obs(sink.clone());
        MetricsHandle { sink }
    }

    /// Create a streaming (bounded-memory) collector and install it.
    pub fn install_streaming(world: &mut World, scenario: &str, seed: u64) -> Self {
        let sink = Arc::new(Mutex::new(MetricsSink::new_streaming(scenario, seed)));
        world.install_obs(sink.clone());
        MetricsHandle { sink }
    }

    /// Install only if `observe` is set — the standard one-liner at the
    /// top of every `Scenario::run_with`.
    pub fn install_if(world: &mut World, observe: bool, scenario: &str, seed: u64) -> Option<Self> {
        observe.then(|| MetricsHandle::install(world, scenario, seed))
    }

    /// Install only if `observe` is set, in streaming mode if `streaming`
    /// is also set — the runtime harness's entrypoint, fed straight from
    /// `RunOptions { observe, streaming_metrics, .. }`.
    pub fn install_with(
        world: &mut World,
        observe: bool,
        streaming: bool,
        scenario: &str,
        seed: u64,
    ) -> Option<Self> {
        observe.then(|| {
            if streaming {
                MetricsHandle::install_streaming(world, scenario, seed)
            } else {
                MetricsHandle::install(world, scenario, seed)
            }
        })
    }

    /// Finalize: detach the sink from `world`, resolve entity names in
    /// the knowledge timeline (and the streaming knowledge table), and
    /// return the report.
    pub fn finish(&self, world: &mut World) -> MetricsReport {
        world.clear_obs();
        let (mut report, counts) = self
            .sink
            .lock()
            .expect("metrics sink poisoned")
            .take_parts();
        // One pass over the entity list instead of a scan per record —
        // finalization is O(entities + records) even for big worlds.
        let names: BTreeMap<u64, String> = world
            .entities()
            .iter()
            .map(|e| (e.id.0, e.name.clone()))
            .collect();
        let resolve = |id: u64| -> String {
            names
                .get(&id)
                .cloned()
                .unwrap_or_else(|| format!("entity-{id}"))
        };
        for rec in &mut report.knowledge {
            let name = resolve(rec.entity_id);
            *report.knowledge_by_entity.entry(name.clone()).or_insert(0) += 1;
            rec.entity = name;
        }
        for (id, n) in counts {
            *report.knowledge_by_entity.entry(resolve(id)).or_insert(0) += n;
        }
        report
    }

    /// [`finish`](MetricsHandle::finish) an optional handle (from
    /// [`install_if`](MetricsHandle::install_if)), yielding a disabled
    /// report when no sink was installed.
    pub fn finish_opt(handle: Option<&MetricsHandle>, world: &mut World) -> MetricsReport {
        match handle {
            Some(h) => h.finish(world),
            None => MetricsReport::disabled(),
        }
    }
}

/// Render any report as pretty-printed JSON — the one serializer every
/// artifact in this repository goes through.
///
/// Struct fields serialize in declaration order and every map in the
/// report types is a `BTreeMap`, so two runs of the same code produce
/// key-for-key identical files and `out/` artifacts diff cleanly across
/// commits.
pub fn to_json<T: serde::Serialize>(report: &T) -> String {
    serde_json::to_string_pretty(report).expect("report serializes")
}

/// Write a report to `path` as JSON (newline-terminated), creating
/// parent directories. All artifact writers — `out/metrics/*.json`,
/// `out/experiments_out.json`, the `dst_sweep`/`dst_recover` probe
/// outputs — funnel through here.
pub fn write_json<T: serde::Serialize>(report: &T, path: impl AsRef<Path>) -> std::io::Result<()> {
    let path = path.as_ref();
    if let Some(dir) = path.parent() {
        std::fs::create_dir_all(dir)?;
    }
    let mut f = std::fs::File::create(path)?;
    f.write_all(to_json(report).as_bytes())?;
    f.write_all(b"\n")
}

#[cfg(test)]
mod tests {
    use super::*;
    use dcp_core::{DataKind, InfoItem, Label};

    fn demo_world() -> World {
        let mut w = World::new();
        let org = w.add_org("o");
        let user = w.add_user();
        let e = w.add_entity("Resolver", org, None);
        let _ = (user, e);
        w
    }

    #[test]
    fn install_collect_finish() {
        let mut world = demo_world();
        let handle = MetricsHandle::install(&mut world, "demo", 7);
        assert!(world.obs_enabled());

        world.set_obs_now(40);
        world.crypto_op("rsa_sign");
        world.crypto_op("rsa_sign");
        world.span("issue", 10, 40);
        let user = world.users()[0];
        let e = world.entity_by_name("Resolver").id;
        world.observe(
            e,
            &Label::item(InfoItem::plain_data(user, DataKind::DnsQuery)),
        );

        let report = handle.finish(&mut world);
        assert!(!world.obs_enabled(), "finish detaches the sink");
        assert!(report.enabled);
        assert_eq!(report.scenario, "demo");
        assert_eq!(report.seed, 7);
        assert_eq!(report.crypto_ops["rsa_sign"], 2);
        assert_eq!(report.span_count("issue"), 1);
        assert_eq!(report.knowledge.len(), 1);
        assert_eq!(report.knowledge[0].entity, "Resolver");
        assert_eq!(report.knowledge[0].at_us, 40);
        assert_eq!(report.knowledge_by_entity["Resolver"], 1);
        assert_eq!(report.sim_end_us, 40);
    }

    #[test]
    fn install_if_and_finish_opt() {
        let mut world = demo_world();
        let none = MetricsHandle::install_if(&mut world, false, "demo", 1);
        assert!(none.is_none() && !world.obs_enabled());
        let report = MetricsHandle::finish_opt(none.as_ref(), &mut world);
        assert!(!report.enabled);

        let some = MetricsHandle::install_if(&mut world, true, "demo", 1);
        assert!(some.is_some() && world.obs_enabled());
        let report = MetricsHandle::finish_opt(some.as_ref(), &mut world);
        assert!(report.enabled);
    }

    #[test]
    fn json_export_carries_the_catalog() {
        let mut world = demo_world();
        let handle = MetricsHandle::install(&mut world, "demo", 3);
        world.crypto_op("hpke_open");
        world.span("fetch", 5, 25);
        let report = handle.finish(&mut world);
        let json = to_json(&report);
        for needle in [
            "hpke_open",
            "\"scenario\": \"demo\"",
            "messages_sent",
            "knowledge",
            "\"name\": \"fetch\"",
        ] {
            assert!(json.contains(needle), "missing {needle} in {json}");
        }
    }

    #[test]
    fn streaming_sink_matches_itemised_aggregates_with_bounded_state() {
        let run = |streaming: bool| {
            let mut world = demo_world();
            let handle =
                MetricsHandle::install_with(&mut world, true, streaming, "demo", 9).unwrap();
            let e = world.entity_by_name("Resolver").id;
            for i in 0..50u64 {
                world.set_obs_now(i);
                world.crypto_op("aead_seal");
                world.span("fetch", i, i + 10 + i % 3);
                let user = world.add_user();
                world.record(e, InfoItem::plain_data(user, DataKind::DnsQuery));
            }
            handle.finish(&mut world)
        };
        let full = run(false);
        let lean = run(true);
        // Aggregates agree exactly…
        assert_eq!(lean.crypto_ops, full.crypto_ops);
        assert_eq!(lean.span_stats, full.span_stats);
        assert_eq!(lean.knowledge_by_entity, full.knowledge_by_entity);
        assert_eq!(lean.span_count("fetch"), 50);
        assert_eq!(lean.mean_span_us("fetch"), full.mean_span_us("fetch"));
        assert_eq!(lean.sim_end_us, full.sim_end_us);
        // …while the streaming report holds no per-event vectors.
        assert_eq!(full.spans.len(), 50);
        assert_eq!(full.knowledge.len(), 50);
        assert!(lean.spans.is_empty());
        assert!(lean.knowledge.is_empty());
    }

    #[test]
    fn record_emits_knowledge_once() {
        let mut world = demo_world();
        let handle = MetricsHandle::install(&mut world, "demo", 3);
        let user = world.users()[0];
        let e = world.entity_by_name("Resolver").id;
        let item = InfoItem::sensitive_data(user, DataKind::Payload);
        world.record(e, item.clone());
        world.record(e, item); // already known → no second event
        let report = handle.finish(&mut world);
        assert_eq!(report.knowledge.len(), 1);
    }
}
