//! # dcp-obs — the standard observability collector
//!
//! `dcp-core` defines the hook ([`ObsSink`]) and the data model
//! ([`MetricsReport`]); this crate provides the standard implementation:
//!
//! * [`MetricsSink`] folds the event stream — wire accounting from the
//!   simulator, fault injections, crypto ops, protocol-phase spans, and
//!   per-entity knowledge accrual — into a [`MetricsReport`];
//! * [`MetricsHandle`] is what a scenario keeps while the `World` (and
//!   the sink inside it) is away inside the simulator, and what it
//!   finalizes the report from afterwards;
//! * [`write_json`] / [`to_json`] export reports as the artifacts
//!   `experiments.rs` drops under `out/`.
//!
//! The intended wiring, used identically by all eight scenario crates:
//!
//! ```
//! use dcp_core::World;
//! use dcp_obs::MetricsHandle;
//!
//! let mut world = World::new();
//! let handle = MetricsHandle::install(&mut world, "demo", 42);
//! world.crypto_op("hpke_seal");
//! world.span("fetch", 0, 250);
//! // … run the simulation, get `world` back …
//! let report = handle.finish(&mut world);
//! assert_eq!(report.crypto_ops["hpke_seal"], 1);
//! assert_eq!(report.span_count("fetch"), 1);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::io::Write as _;
use std::path::Path;
use std::sync::{Arc, Mutex};

use dcp_core::obs::{KnowledgeRecord, MetricsReport, ObsEvent, ObsSink, SpanRecord};
use dcp_core::World;

/// The standard collector: aggregates every [`ObsEvent`] into a
/// [`MetricsReport`].
#[derive(Debug, Default)]
pub struct MetricsSink {
    report: MetricsReport,
}

impl MetricsSink {
    /// A fresh collector tagged with the scenario name and seed.
    pub fn new(scenario: &str, seed: u64) -> Self {
        MetricsSink {
            report: MetricsReport {
                enabled: true,
                scenario: scenario.to_string(),
                seed,
                ..MetricsReport::default()
            },
        }
    }

    /// The report accumulated so far.
    pub fn report(&self) -> &MetricsReport {
        &self.report
    }

    /// Take the accumulated report, leaving a fresh (still-enabled) one.
    pub fn take_report(&mut self) -> MetricsReport {
        let scenario = self.report.scenario.clone();
        let seed = self.report.seed;
        std::mem::replace(&mut self.report, MetricsSink::new(&scenario, seed).report)
    }
}

impl ObsSink for MetricsSink {
    fn on_event(&mut self, at_us: u64, event: &ObsEvent) {
        let r = &mut self.report;
        r.sim_end_us = r.sim_end_us.max(at_us);
        match event {
            ObsEvent::MessageSent { bytes, .. } => {
                r.messages_sent += 1;
                r.bytes_sent += *bytes as u64;
            }
            ObsEvent::MessageDelivered { bytes, .. } => {
                r.messages_delivered += 1;
                r.bytes_delivered += *bytes as u64;
            }
            ObsEvent::MessageDropped { .. } => {
                r.messages_dropped += 1;
            }
            ObsEvent::MessageLostToCrash { .. } => {
                r.messages_lost_to_crash += 1;
            }
            ObsEvent::MessageUnserviced { .. } => {
                r.messages_unserviced += 1;
            }
            ObsEvent::FaultInjected { kind } => {
                *r.faults.entry((*kind).to_string()).or_insert(0) += 1;
            }
            ObsEvent::CryptoOp { op } => {
                *r.crypto_ops.entry((*op).to_string()).or_insert(0) += 1;
            }
            ObsEvent::Span {
                name,
                start_us,
                end_us,
            } => {
                r.spans.push(SpanRecord {
                    name: (*name).to_string(),
                    start_us: *start_us,
                    end_us: *end_us,
                });
            }
            ObsEvent::Knowledge { entity, item } => {
                r.knowledge.push(KnowledgeRecord {
                    at_us,
                    entity_id: entity.0,
                    entity: String::new(),
                    item: item.clone(),
                });
            }
            ObsEvent::RecoveryRetry { .. } => {
                r.recovery_retries += 1;
            }
            ObsEvent::RecoveryFailover { .. } => {
                r.recovery_failovers += 1;
            }
            ObsEvent::RecoveryQuarantine { .. } => {
                r.recovery_quarantines += 1;
            }
            ObsEvent::RecoveryGiveUp { .. } => {
                r.recovery_give_ups += 1;
            }
            // Sweep progress arrives in completion order, which is not
            // deterministic under parallel execution — it must never fold
            // into a report.
            ObsEvent::SweepProgress { .. } => {}
        }
    }
}

/// The scenario's grip on an installed [`MetricsSink`]. The `World`
/// shares the same `Arc`, so events emitted while the world is inside the
/// simulator land here. (`Arc<Mutex<…>>` rather than `Rc<RefCell<…>>` so
/// a `World` — and every report embedding one — is `Send`, which the
/// parallel sweep engine relies on; a world and its sink still live on
/// one thread, so the lock is always uncontended.)
#[derive(Clone)]
pub struct MetricsHandle {
    sink: Arc<Mutex<MetricsSink>>,
}

impl MetricsHandle {
    /// Create a collector and install it into `world`.
    pub fn install(world: &mut World, scenario: &str, seed: u64) -> Self {
        let sink = Arc::new(Mutex::new(MetricsSink::new(scenario, seed)));
        world.install_obs(sink.clone());
        MetricsHandle { sink }
    }

    /// Install only if `observe` is set — the standard one-liner at the
    /// top of every `Scenario::run_with`.
    pub fn install_if(world: &mut World, observe: bool, scenario: &str, seed: u64) -> Option<Self> {
        observe.then(|| MetricsHandle::install(world, scenario, seed))
    }

    /// Finalize: detach the sink from `world`, resolve entity names in
    /// the knowledge timeline, and return the report.
    pub fn finish(&self, world: &mut World) -> MetricsReport {
        world.clear_obs();
        let mut report = self
            .sink
            .lock()
            .expect("metrics sink poisoned")
            .take_report();
        for rec in &mut report.knowledge {
            let name = world
                .entities()
                .iter()
                .find(|e| e.id.0 == rec.entity_id)
                .map(|e| e.name.clone())
                .unwrap_or_else(|| format!("entity-{}", rec.entity_id));
            *report.knowledge_by_entity.entry(name.clone()).or_insert(0) += 1;
            rec.entity = name;
        }
        report
    }

    /// [`finish`](MetricsHandle::finish) an optional handle (from
    /// [`install_if`](MetricsHandle::install_if)), yielding a disabled
    /// report when no sink was installed.
    pub fn finish_opt(handle: Option<&MetricsHandle>, world: &mut World) -> MetricsReport {
        match handle {
            Some(h) => h.finish(world),
            None => MetricsReport::disabled(),
        }
    }
}

/// Render any report as pretty-printed JSON — the one serializer every
/// artifact in this repository goes through.
///
/// Struct fields serialize in declaration order and every map in the
/// report types is a `BTreeMap`, so two runs of the same code produce
/// key-for-key identical files and `out/` artifacts diff cleanly across
/// commits.
pub fn to_json<T: serde::Serialize>(report: &T) -> String {
    serde_json::to_string_pretty(report).expect("report serializes")
}

/// Write a report to `path` as JSON (newline-terminated), creating
/// parent directories. All artifact writers — `out/metrics/*.json`,
/// `out/experiments_out.json`, the `dst_sweep`/`dst_recover` probe
/// outputs — funnel through here.
pub fn write_json<T: serde::Serialize>(report: &T, path: impl AsRef<Path>) -> std::io::Result<()> {
    let path = path.as_ref();
    if let Some(dir) = path.parent() {
        std::fs::create_dir_all(dir)?;
    }
    let mut f = std::fs::File::create(path)?;
    f.write_all(to_json(report).as_bytes())?;
    f.write_all(b"\n")
}

#[cfg(test)]
mod tests {
    use super::*;
    use dcp_core::{DataKind, InfoItem, Label};

    fn demo_world() -> World {
        let mut w = World::new();
        let org = w.add_org("o");
        let user = w.add_user();
        let e = w.add_entity("Resolver", org, None);
        let _ = (user, e);
        w
    }

    #[test]
    fn install_collect_finish() {
        let mut world = demo_world();
        let handle = MetricsHandle::install(&mut world, "demo", 7);
        assert!(world.obs_enabled());

        world.set_obs_now(40);
        world.crypto_op("rsa_sign");
        world.crypto_op("rsa_sign");
        world.span("issue", 10, 40);
        let user = world.users()[0];
        let e = world.entity_by_name("Resolver").id;
        world.observe(
            e,
            &Label::item(InfoItem::plain_data(user, DataKind::DnsQuery)),
        );

        let report = handle.finish(&mut world);
        assert!(!world.obs_enabled(), "finish detaches the sink");
        assert!(report.enabled);
        assert_eq!(report.scenario, "demo");
        assert_eq!(report.seed, 7);
        assert_eq!(report.crypto_ops["rsa_sign"], 2);
        assert_eq!(report.span_count("issue"), 1);
        assert_eq!(report.knowledge.len(), 1);
        assert_eq!(report.knowledge[0].entity, "Resolver");
        assert_eq!(report.knowledge[0].at_us, 40);
        assert_eq!(report.knowledge_by_entity["Resolver"], 1);
        assert_eq!(report.sim_end_us, 40);
    }

    #[test]
    fn install_if_and_finish_opt() {
        let mut world = demo_world();
        let none = MetricsHandle::install_if(&mut world, false, "demo", 1);
        assert!(none.is_none() && !world.obs_enabled());
        let report = MetricsHandle::finish_opt(none.as_ref(), &mut world);
        assert!(!report.enabled);

        let some = MetricsHandle::install_if(&mut world, true, "demo", 1);
        assert!(some.is_some() && world.obs_enabled());
        let report = MetricsHandle::finish_opt(some.as_ref(), &mut world);
        assert!(report.enabled);
    }

    #[test]
    fn json_export_carries_the_catalog() {
        let mut world = demo_world();
        let handle = MetricsHandle::install(&mut world, "demo", 3);
        world.crypto_op("hpke_open");
        world.span("fetch", 5, 25);
        let report = handle.finish(&mut world);
        let json = to_json(&report);
        for needle in [
            "hpke_open",
            "\"scenario\": \"demo\"",
            "messages_sent",
            "knowledge",
            "\"name\": \"fetch\"",
        ] {
            assert!(json.contains(needle), "missing {needle} in {json}");
        }
    }

    #[test]
    fn record_emits_knowledge_once() {
        let mut world = demo_world();
        let handle = MetricsHandle::install(&mut world, "demo", 3);
        let user = world.users()[0];
        let e = world.entity_by_name("Resolver").id;
        let item = InfoItem::sensitive_data(user, DataKind::Payload);
        world.record(e, item.clone());
        world.record(e, item); // already known → no second event
        let report = handle.finish(&mut world);
        assert_eq!(report.knowledge.len(), 1);
    }
}
