//! The population engine: a compact discrete-event model of a decoupled
//! query path, built to push 10⁶ users / 10⁸ events through one host
//! with bounded memory.
//!
//! The full simulator (`dcp-simnet`) runs real protocol bytes through
//! boxed nodes — the right tool for correctness, too heavy for
//! population-scale measurement. This engine keeps the same event
//! discipline (the shared [`TimerWheel`], a `(time, seq)` total order, a
//! serializable RNG) but models the *architecture* of a decoupled path:
//!
//! ```text
//! users → ingress relay(s) (batching) → relay hops → striped resolvers
//!       ←            responses, padded           ←
//! ```
//!
//! and folds, as it goes, exactly the paper's §4–5 population measures:
//!
//! * **anonymity-set size vs. batch window** — distinct users per
//!   ingress batch (§4.3: batching is what buys metadata privacy);
//! * **linkage success vs. padding** — a response is linkable when its
//!   padded size is unique among in-flight responses (§4.3 traffic
//!   analysis);
//! * **per-resolver knowledge vs. striping** — what fraction of the user
//!   population each resolver sees, and how much of one user's query
//!   stream the busiest resolver for that user captures (§5's "limits
//!   how much any single entity learns").
//!
//! Every per-event cost is O(1) on compact state (counters, histograms,
//! bitsets) — no per-event allocation survives the event.

use serde::Serialize;

use dcp_simnet::TimerWheel;

use crate::gen::Workload;
use crate::rng::SplitMix64;
use crate::spec::{WorkloadBuilder, WorldSpec};

/// The abstract shape of one decoupled query path — which of the nine
/// wirings a population run is modelling.
#[derive(Clone, Debug, PartialEq, Serialize)]
pub struct Topology {
    /// Wiring name (matches the scenario crate).
    pub scenario: String,
    /// Relay hops between client and resolver (0 = direct).
    pub hops: u32,
    /// Ingress relays (the batching points). Ignored when `hops == 0`.
    pub ingresses: u32,
    /// Ingress batch window, µs (0 = no batching).
    pub batch_window_us: u64,
    /// Pad query/response sizes up to a multiple of this (0 = no
    /// padding).
    pub pad_to: u64,
    /// Resolver/service instances queries are striped over.
    pub resolvers: u32,
    /// Stripe by query name (true) or by user (false).
    pub stripe_by_name: bool,
    /// Per-hop one-way latency, µs.
    pub link_us: u64,
    /// Base query size, bytes.
    pub query_bytes: u64,
    /// Base response size, bytes.
    pub resp_bytes: u64,
}

impl Topology {
    fn named(scenario: &str) -> Topology {
        Topology {
            scenario: scenario.to_string(),
            hops: 1,
            ingresses: 1,
            batch_window_us: 0,
            pad_to: 0,
            resolvers: 1,
            stripe_by_name: true,
            link_us: 10_000,
            query_bytes: 128,
            resp_bytes: 256,
        }
    }

    /// Oblivious DoH: client → proxy (batching) → striped target
    /// resolvers, padded DNS messages.
    pub fn odoh() -> Topology {
        Topology {
            hops: 1,
            ingresses: 2,
            batch_window_us: 5_000,
            pad_to: 128,
            resolvers: 2,
            stripe_by_name: true,
            query_bytes: 64,
            resp_bytes: 196,
            ..Topology::named("odoh")
        }
    }

    /// A 3-hop mix cascade with heavy batching and uniform padding.
    pub fn mixnet() -> Topology {
        Topology {
            hops: 3,
            ingresses: 1,
            batch_window_us: 20_000,
            pad_to: 512,
            resolvers: 1,
            link_us: 15_000,
            query_bytes: 256,
            resp_bytes: 256,
            ..Topology::named("mixnet")
        }
    }

    /// Multi-Party Relay: two non-colluding hops, egress striped wide.
    pub fn mpr() -> Topology {
        Topology {
            hops: 2,
            ingresses: 2,
            batch_window_us: 2_000,
            pad_to: 256,
            resolvers: 4,
            link_us: 8_000,
            query_bytes: 200,
            resp_bytes: 600,
            ..Topology::named("mpr")
        }
    }

    /// Trusted-relay VPN: one hop, no padding, one egress.
    pub fn vpn() -> Topology {
        Topology {
            hops: 1,
            ingresses: 1,
            batch_window_us: 0,
            pad_to: 0,
            resolvers: 1,
            query_bytes: 180,
            resp_bytes: 800,
            ..Topology::named("vpn")
        }
    }

    /// The coupled baseline: clients talk straight to one resolver.
    pub fn direct() -> Topology {
        Topology {
            hops: 0,
            ingresses: 0,
            batch_window_us: 0,
            pad_to: 0,
            resolvers: 1,
            query_bytes: 64,
            resp_bytes: 196,
            ..Topology::named("direct")
        }
    }

    /// PGPP-style cellular core: gateway batching, identity stripped,
    /// backends striped by user-session.
    pub fn pgpp() -> Topology {
        Topology {
            hops: 1,
            ingresses: 4,
            batch_window_us: 10_000,
            pad_to: 64,
            resolvers: 4,
            stripe_by_name: false,
            query_bytes: 96,
            resp_bytes: 96,
            ..Topology::named("pgpp")
        }
    }

    /// PPM-style split aggregation: leader batches reports toward two
    /// helper shares.
    pub fn ppm() -> Topology {
        Topology {
            hops: 1,
            ingresses: 1,
            batch_window_us: 50_000,
            pad_to: 128,
            resolvers: 2,
            stripe_by_name: false,
            query_bytes: 160,
            resp_bytes: 32,
            ..Topology::named("ppm")
        }
    }

    /// Privacy Pass issuance/redemption through an edge.
    pub fn privacypass() -> Topology {
        Topology {
            hops: 1,
            ingresses: 1,
            batch_window_us: 0,
            pad_to: 64,
            resolvers: 2,
            query_bytes: 96,
            resp_bytes: 96,
            ..Topology::named("privacypass")
        }
    }

    /// Blind-signature cash: mint and merchants behind one relay hop.
    pub fn blindcash() -> Topology {
        Topology {
            hops: 1,
            ingresses: 1,
            batch_window_us: 1_000,
            pad_to: 256,
            resolvers: 2,
            query_bytes: 300,
            resp_bytes: 300,
            ..Topology::named("blindcash")
        }
    }

    /// Look a preset up by scenario name (the bench CLI's `--preset`).
    pub fn by_name(name: &str) -> Option<Topology> {
        Some(match name {
            "odoh" => Topology::odoh(),
            "mixnet" => Topology::mixnet(),
            "mpr" => Topology::mpr(),
            "vpn" => Topology::vpn(),
            "direct" => Topology::direct(),
            "pgpp" => Topology::pgpp(),
            "ppm" => Topology::ppm(),
            "privacypass" => Topology::privacypass(),
            "blindcash" => Topology::blindcash(),
            _ => return None,
        })
    }

    /// All preset names, in a stable order.
    pub fn preset_names() -> &'static [&'static str] {
        &[
            "odoh",
            "mixnet",
            "mpr",
            "vpn",
            "direct",
            "pgpp",
            "ppm",
            "privacypass",
            "blindcash",
        ]
    }

    fn pad(&self, size: u64) -> u64 {
        if self.pad_to == 0 {
            size
        } else {
            size.div_ceil(self.pad_to) * self.pad_to
        }
    }
}

/// One queued engine event. Kept small (≤ 24 bytes of payload): the
/// wheel holds about one pending arrival per user plus in-flight
/// packets, and this type *is* the queue's memory footprint.
#[derive(Clone, Debug, PartialEq)]
pub(crate) enum PopEvent {
    /// `user` issues their next query now.
    Arrival { user: u32 },
    /// A query travelling up, about to arrive at path element `hop`
    /// (elements `0..hops` are relays; element `hops` is the resolver).
    Up {
        user: u32,
        name: u32,
        size: u32,
        hop: u8,
        sent_us: u64,
    },
    /// A response travelling down; `hop` is the number of hops left
    /// (`0` = arriving at the client).
    Down {
        user: u32,
        size: u32,
        hop: u8,
        sent_us: u64,
    },
    /// Ingress `ingress` flushes its batch now.
    Flush { ingress: u32 },
}

/// Streaming statistics — all bounded: counters, fixed histograms, one
/// bitset and two small count vectors over the user population.
#[derive(Clone, Debug, Default, PartialEq)]
pub(crate) struct Stats {
    pub queries_sent: u64,
    pub queries_answered: u64,
    pub messages: u64,
    pub batches: u64,
    pub batch_users_sum: u64,
    /// log₂ buckets of distinct users per batch: `[1, 2, 4, …, ≥2¹⁵]`.
    pub anon_hist: Vec<u64>,
    pub linkage_attempts: u64,
    pub linkage_linked: u64,
    /// log₂ buckets of end-to-end latency in ms.
    pub latency_hist: Vec<u64>,
    pub latency_sum_us: u64,
    /// Per-resolver query counts.
    pub resolver_queries: Vec<u64>,
    /// Per-resolver seen-user bitsets (`users/64` words each).
    pub resolver_seen: Vec<Vec<u64>>,
    /// `users × resolvers` per-user-per-resolver query counts.
    pub per_user_resolver: Vec<u32>,
    /// Per-user total queries.
    pub per_user_queries: Vec<u32>,
    /// In-flight responses by padded size — the linkage observer's view.
    pub inflight_sizes: std::collections::BTreeMap<u32, u32>,
}

const ANON_BUCKETS: usize = 16;
const LATENCY_BUCKETS: usize = 20;

impl Stats {
    fn new(users: usize, resolvers: usize) -> Stats {
        Stats {
            anon_hist: vec![0; ANON_BUCKETS],
            latency_hist: vec![0; LATENCY_BUCKETS],
            resolver_queries: vec![0; resolvers],
            resolver_seen: vec![vec![0u64; users.div_ceil(64)]; resolvers],
            per_user_resolver: vec![0; users * resolvers],
            per_user_queries: vec![0; users],
            ..Stats::default()
        }
    }
}

fn log2_bucket(v: u64, buckets: usize) -> usize {
    ((64 - v.max(1).leading_zeros()) as usize - 1).min(buckets - 1)
}

/// The final report of one population run: the spec and topology it ran,
/// exact event/message accounting, and the three §4–5 population
/// measures. A pure function of `(spec, topology, seed)` — byte-stable
/// JSON, which is what the checkpoint/resume gate diffs.
#[derive(Clone, Debug, PartialEq, Serialize)]
pub struct PopReport {
    /// The topology preset this world modelled.
    pub scenario: String,
    /// Run seed.
    pub seed: u64,
    /// User population.
    pub users: u64,
    /// Simulated duration that was configured, µs.
    pub duration_us: u64,
    /// Sim-time of the last processed event, µs.
    pub final_time_us: u64,
    /// Events popped from the wheel.
    pub events: u64,
    /// Protocol messages carried (each scheduled hop transit).
    pub messages: u64,
    /// Queries issued by users.
    pub queries_sent: u64,
    /// Responses delivered back to users.
    pub queries_answered: u64,
    /// Ingress batches flushed.
    pub batches: u64,
    /// Mean distinct users per batch — the anonymity-set size.
    pub mean_anonymity_set: f64,
    /// log₂ histogram of batch anonymity-set sizes (`[1,2),[2,4),…`).
    pub anonymity_set_hist: Vec<u64>,
    /// Size-uniqueness linkage attempts (= deliveries observed).
    pub linkage_attempts: u64,
    /// Deliveries whose padded size was unique in flight — linkable.
    pub linkage_linked: u64,
    /// `linkage_linked / linkage_attempts` (0 when no deliveries).
    pub linkage_rate: f64,
    /// Resolver instances.
    pub resolvers: u32,
    /// Mean over resolvers of (fraction of user population seen).
    pub resolver_user_coverage: f64,
    /// Mean over active users of (share of that user's queries at the
    /// user's busiest resolver) — 1.0 means no striping benefit.
    pub max_resolver_share: f64,
    /// log₂ histogram of end-to-end latency in ms.
    pub latency_hist_ms: Vec<u64>,
    /// Mean end-to-end latency, µs.
    pub mean_latency_us: f64,
}

/// The population engine: the timer wheel, the seeded workload, compact
/// streaming stats, and (via [`checkpoint`](crate::checkpoint)) a
/// serializable snapshot of all of it.
#[derive(Clone, Debug)]
pub struct Engine {
    pub(crate) spec: WorldSpec,
    pub(crate) topo: Topology,
    pub(crate) seed: u64,
    pub(crate) workload: Workload,
    pub(crate) wheel: TimerWheel<PopEvent>,
    pub(crate) rng: SplitMix64,
    pub(crate) now_us: u64,
    pub(crate) next_seq: u64,
    pub(crate) events: u64,
    pub(crate) stats: Stats,
    /// Per-ingress batch buffers: `(user, name, size, sent_us)`.
    pub(crate) batches: Vec<Vec<(u32, u32, u32, u64)>>,
}

impl Engine {
    /// Build a world and schedule every user's first arrival.
    pub fn new(spec: &WorldSpec, topo: &Topology, seed: u64) -> Result<Engine, String> {
        let mut e = Engine::empty(spec, topo, seed)?;
        let mut rng = e.rng.clone();
        for user in 0..e.spec.users as u32 {
            if let Some(t) = e.workload.next_arrival_us(user, 0, &mut rng) {
                if t < e.spec.duration_us {
                    e.schedule(t, PopEvent::Arrival { user });
                }
            }
        }
        e.rng = rng;
        Ok(e)
    }

    /// A world with *no* scheduled events — the checkpoint restore path,
    /// which overlays queue and state from the snapshot.
    pub(crate) fn empty(spec: &WorldSpec, topo: &Topology, seed: u64) -> Result<Engine, String> {
        if topo.resolvers == 0 {
            return Err("topology needs at least one resolver".into());
        }
        if topo.hops > 0 && topo.ingresses == 0 {
            return Err("relayed topology needs at least one ingress".into());
        }
        if spec.users > u32::MAX as u64 || spec.names > u32::MAX as u64 {
            return Err("population exceeds u32 index space".into());
        }
        let workload = WorkloadBuilder::new(spec).build()?;
        Ok(Engine {
            spec: spec.clone(),
            topo: topo.clone(),
            seed,
            workload,
            wheel: TimerWheel::new(),
            rng: SplitMix64::new(seed),
            now_us: 0,
            next_seq: 0,
            events: 0,
            stats: Stats::new(spec.users as usize, topo.resolvers as usize),
            batches: vec![Vec::new(); topo.ingresses as usize],
        })
    }

    fn schedule(&mut self, t: u64, ev: PopEvent) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.wheel.push(t, seq, ev);
    }

    /// Events processed so far.
    pub fn events_processed(&self) -> u64 {
        self.events
    }

    /// Current simulated time, µs.
    pub fn now_us(&self) -> u64 {
        self.now_us
    }

    /// Pending events (≈ one arrival per active user + packets in
    /// flight).
    pub fn pending(&self) -> usize {
        self.wheel.len()
    }

    /// Process events until the queue drains or `max_events` have been
    /// processed *in total* (across resumes). Returns `true` when the
    /// world ran to quiescence.
    pub fn run_until_events(&mut self, max_events: u64) -> bool {
        while self.events < max_events {
            let Some((t, _seq, ev)) = self.wheel.pop() else {
                return true;
            };
            self.now_us = t;
            self.events += 1;
            self.handle(ev);
        }
        self.wheel.is_empty()
    }

    /// Run to quiescence.
    pub fn run_to_end(&mut self) {
        self.run_until_events(u64::MAX);
    }

    fn handle(&mut self, ev: PopEvent) {
        match ev {
            PopEvent::Arrival { user } => self.on_arrival(user),
            PopEvent::Up {
                user,
                name,
                size,
                hop,
                sent_us,
            } => self.on_up(user, name, size, hop, sent_us),
            PopEvent::Down {
                user,
                size,
                hop,
                sent_us,
            } => self.on_down(user, size, hop, sent_us),
            PopEvent::Flush { ingress } => self.on_flush(ingress),
        }
    }

    fn on_arrival(&mut self, user: u32) {
        // Issue one query…
        let mut rng = std::mem::replace(&mut self.rng, SplitMix64::new(0));
        let name = self.workload.sample_name(&mut rng);
        let next = self.workload.next_arrival_us(user, self.now_us, &mut rng);
        self.rng = rng;

        let jitter = (name as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 58; // 0..64
        let size = self.topo.pad(self.topo.query_bytes + jitter) as u32;
        self.stats.queries_sent += 1;
        self.stats.per_user_queries[user as usize] += 1;
        self.send_up(user, name, size, 0, self.now_us);

        // …and book the next one while the workload window is open.
        if let Some(t) = next {
            if t < self.spec.duration_us {
                self.schedule(t, PopEvent::Arrival { user });
            }
        }
    }

    /// Put a query on the wire toward path element `hop`.
    fn send_up(&mut self, user: u32, name: u32, size: u32, hop: u8, sent_us: u64) {
        self.stats.messages += 1;
        let at = self.now_us.saturating_add(self.topo.link_us);
        self.schedule(
            at,
            PopEvent::Up {
                user,
                name,
                size,
                hop,
                sent_us,
            },
        );
    }

    fn on_up(&mut self, user: u32, name: u32, size: u32, hop: u8, sent_us: u64) {
        let hops = self.topo.hops as u8;
        if hop < hops {
            // A relay. The ingress (hop 0) batches when configured.
            if hop == 0 && self.topo.batch_window_us > 0 {
                let ingress = (user % self.topo.ingresses) as usize;
                self.batches[ingress].push((user, name, size, sent_us));
                if self.batches[ingress].len() == 1 {
                    let at = self.now_us.saturating_add(self.topo.batch_window_us);
                    self.schedule(
                        at,
                        PopEvent::Flush {
                            ingress: ingress as u32,
                        },
                    );
                }
            } else {
                self.send_up(user, name, size, hop + 1, sent_us);
            }
        } else {
            // The resolver stripe.
            let key = if self.topo.stripe_by_name { name } else { user };
            let r = (key % self.topo.resolvers) as usize;
            self.stats.resolver_queries[r] += 1;
            self.stats.resolver_seen[r][user as usize / 64] |= 1u64 << (user % 64);
            self.stats.per_user_resolver[user as usize * self.topo.resolvers as usize + r] += 1;

            let jitter = (name as u64).wrapping_mul(0xD1B5_4A32_D192_ED03) >> 56; // 0..256
            let rsize = self.topo.pad(self.topo.resp_bytes + jitter) as u32;
            *self.stats.inflight_sizes.entry(rsize).or_insert(0) += 1;
            self.stats.messages += 1;
            let at = self.now_us.saturating_add(self.topo.link_us);
            self.schedule(
                at,
                PopEvent::Down {
                    user,
                    size: rsize,
                    hop: hops,
                    sent_us,
                },
            );
        }
    }

    fn on_down(&mut self, user: u32, size: u32, hop: u8, sent_us: u64) {
        if hop == 0 {
            // Delivered to the client: latency + the padding-linkage
            // measure (a response whose padded size is unique among
            // in-flight responses is trivially linkable by size).
            self.stats.queries_answered += 1;
            let latency = self.now_us.saturating_sub(sent_us);
            self.stats.latency_sum_us += latency;
            self.stats.latency_hist[log2_bucket(latency / 1000, LATENCY_BUCKETS)] += 1;

            self.stats.linkage_attempts += 1;
            match self.stats.inflight_sizes.get_mut(&size) {
                Some(n) if *n > 1 => *n -= 1,
                _ => {
                    self.stats.inflight_sizes.remove(&size);
                    self.stats.linkage_linked += 1;
                }
            }
        } else {
            self.stats.messages += 1;
            let at = self.now_us.saturating_add(self.topo.link_us);
            self.schedule(
                at,
                PopEvent::Down {
                    user,
                    size,
                    hop: hop - 1,
                    sent_us,
                },
            );
        }
    }

    fn on_flush(&mut self, ingress: u32) {
        let batch = std::mem::take(&mut self.batches[ingress as usize]);
        if batch.is_empty() {
            return;
        }
        // Anonymity set = distinct users in the batch.
        let mut users: Vec<u32> = batch.iter().map(|&(u, ..)| u).collect();
        users.sort_unstable();
        users.dedup();
        let distinct = users.len() as u64;
        self.stats.batches += 1;
        self.stats.batch_users_sum += distinct;
        self.stats.anon_hist[log2_bucket(distinct, ANON_BUCKETS)] += 1;
        for (user, name, size, sent_us) in batch {
            self.send_up(user, name, size, 1, sent_us);
        }
    }

    /// The final (or in-progress) report. Deterministic: a pure fold of
    /// the processed event prefix.
    pub fn report(&self) -> PopReport {
        let s = &self.stats;
        let users = self.spec.users.max(1);
        let coverage = if s.resolver_seen.is_empty() {
            0.0
        } else {
            let per: f64 = s
                .resolver_seen
                .iter()
                .map(|bits| bits.iter().map(|w| w.count_ones() as u64).sum::<u64>() as f64)
                .sum();
            per / (s.resolver_seen.len() as f64 * users as f64)
        };
        let resolvers = self.topo.resolvers as usize;
        let mut active_users = 0u64;
        let mut share_sum = 0.0f64;
        for u in 0..self.spec.users as usize {
            let total = s.per_user_queries[u];
            // Only users whose queries actually reached a resolver have a
            // defined share.
            let row = &s.per_user_resolver[u * resolvers..(u + 1) * resolvers];
            let reached: u32 = row.iter().sum();
            if reached == 0 {
                continue;
            }
            let max = row.iter().copied().max().unwrap_or(0);
            active_users += 1;
            share_sum += max as f64 / reached as f64;
            let _ = total;
        }
        PopReport {
            scenario: self.topo.scenario.clone(),
            seed: self.seed,
            users: self.spec.users,
            duration_us: self.spec.duration_us,
            final_time_us: self.now_us,
            events: self.events,
            messages: s.messages,
            queries_sent: s.queries_sent,
            queries_answered: s.queries_answered,
            batches: s.batches,
            mean_anonymity_set: if s.batches == 0 {
                0.0
            } else {
                s.batch_users_sum as f64 / s.batches as f64
            },
            anonymity_set_hist: s.anon_hist.clone(),
            linkage_attempts: s.linkage_attempts,
            linkage_linked: s.linkage_linked,
            linkage_rate: if s.linkage_attempts == 0 {
                0.0
            } else {
                s.linkage_linked as f64 / s.linkage_attempts as f64
            },
            resolvers: self.topo.resolvers,
            resolver_user_coverage: coverage,
            max_resolver_share: if active_users == 0 {
                0.0
            } else {
                share_sum / active_users as f64
            },
            latency_hist_ms: s.latency_hist.clone(),
            mean_latency_us: if s.queries_answered == 0 {
                0.0
            } else {
                s.latency_sum_us as f64 / s.queries_answered as f64
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_spec() -> WorldSpec {
        WorldSpec::smoke()
            .users(50)
            .names(30)
            .duration_us(2_000_000)
    }

    #[test]
    fn world_runs_to_quiescence_and_answers_queries() {
        let mut e = Engine::new(&tiny_spec(), &Topology::odoh(), 7).unwrap();
        e.run_to_end();
        let r = e.report();
        assert!(r.queries_sent > 0, "{r:?}");
        assert_eq!(r.queries_answered, r.queries_sent, "calm world: all done");
        assert!(r.batches > 0, "odoh batches");
        assert!(r.mean_anonymity_set >= 1.0);
        assert!(r.events > 0 && r.messages > 0);
        assert!(r.final_time_us >= r.duration_us || e.pending() == 0);
    }

    #[test]
    fn identical_seeds_identical_reports() {
        let run = |seed| {
            let mut e = Engine::new(&tiny_spec(), &Topology::mixnet(), seed).unwrap();
            e.run_to_end();
            e.report()
        };
        assert_eq!(run(42), run(42));
        assert_ne!(run(42), run(43), "different seed, different world");
    }

    #[test]
    fn direct_topology_couples_and_links() {
        // No batching, no padding, one resolver: every response is
        // linkable-ish and the single resolver sees everyone.
        let mut e = Engine::new(&tiny_spec(), &Topology::direct(), 3).unwrap();
        e.run_to_end();
        let r = e.report();
        assert_eq!(r.batches, 0);
        assert_eq!(r.resolvers, 1);
        assert_eq!(r.max_resolver_share, 1.0, "one resolver sees all");
        assert!(r.resolver_user_coverage > 0.9);
    }

    #[test]
    fn striping_reduces_per_resolver_share() {
        let run = |topo: Topology| {
            let mut e = Engine::new(&tiny_spec().users(200).rate_hz(5.0), &topo, 9).unwrap();
            e.run_to_end();
            e.report()
        };
        let wide = run(Topology::mpr()); // 4 resolvers, stripe by name
        let single = run(Topology::vpn()); // 1 resolver
        assert!(
            wide.max_resolver_share < single.max_resolver_share,
            "striping must cut the busiest resolver's share: {} vs {}",
            wide.max_resolver_share,
            single.max_resolver_share
        );
        assert!(wide.resolver_user_coverage < 1.0);
    }

    #[test]
    fn padding_reduces_linkage() {
        let spec = tiny_spec().users(300).rate_hz(5.0);
        let run = |pad| {
            let mut t = Topology::odoh();
            t.pad_to = pad;
            let mut e = Engine::new(&spec, &t, 11).unwrap();
            e.run_to_end();
            e.report()
        };
        let padded = run(4096); // one big bucket → collisions everywhere
        let bare = run(0);
        assert!(
            padded.linkage_rate < bare.linkage_rate,
            "padding must cut size-linkage: {} vs {}",
            padded.linkage_rate,
            bare.linkage_rate
        );
    }

    #[test]
    fn wider_batch_window_grows_anonymity_sets() {
        let spec = tiny_spec().users(400).rate_hz(5.0);
        let run = |window| {
            let mut t = Topology::odoh();
            t.batch_window_us = window;
            let mut e = Engine::new(&spec, &t, 13).unwrap();
            e.run_to_end();
            e.report()
        };
        let narrow = run(1_000);
        let wide = run(50_000);
        assert!(
            wide.mean_anonymity_set > narrow.mean_anonymity_set,
            "bigger window, bigger sets: {} vs {}",
            wide.mean_anonymity_set,
            narrow.mean_anonymity_set
        );
    }

    #[test]
    fn rejects_degenerate_topologies() {
        let mut t = Topology::odoh();
        t.resolvers = 0;
        assert!(Engine::new(&tiny_spec(), &t, 1).is_err());
        let mut t = Topology::odoh();
        t.ingresses = 0;
        assert!(Engine::new(&tiny_spec(), &t, 1).is_err());
        assert!(Engine::new(&tiny_spec().users(0), &Topology::odoh(), 1).is_err());
    }

    #[test]
    fn run_until_events_pauses_and_resumes_exactly() {
        let spec = tiny_spec();
        let mut straight = Engine::new(&spec, &Topology::odoh(), 21).unwrap();
        straight.run_to_end();

        let mut stepped = Engine::new(&spec, &Topology::odoh(), 21).unwrap();
        let mut budget = 500;
        while !stepped.run_until_events(budget) {
            budget += 500;
        }
        assert_eq!(stepped.report(), straight.report());
    }

    #[test]
    fn every_preset_resolves_and_runs() {
        for name in Topology::preset_names() {
            let topo = Topology::by_name(name).unwrap();
            assert_eq!(&topo.scenario, name);
            let mut e = Engine::new(&tiny_spec().users(20), &topo, 1).unwrap();
            e.run_to_end();
            assert!(e.report().queries_sent > 0, "{name}");
        }
        assert!(Topology::by_name("nope").is_none());
    }
}
