//! # dcp-worlds — population-scale world engine
//!
//! The paper's argument is population-scale: decoupling matters because
//! *what any one entity learns across millions of users* shrinks, not
//! because one query's bytes look different. This crate makes that
//! measurable on one machine:
//!
//! * **Seeded workload generators** ([`gen`]): Zipf name popularity,
//!   Zipf per-user activity skew, Poisson arrivals under a diurnal
//!   envelope — all driven by a serializable [`SplitMix64`] stream, so a
//!   world is a pure function of `(WorldSpec, Topology, seed)`.
//! * **A declarative [`WorldSpec`]** ([`spec`]) plus the
//!   [`PopulationScenario`] bridge that runs any of the nine §3 scenario
//!   wirings over a generated population (via `dcp-runtime`'s
//!   re-export).
//! * **The population [`Engine`]** ([`engine`]): an abstract
//!   decoupled-path model (ingress batching → relay hops → striped
//!   resolvers) over the shared [`dcp_simnet::TimerWheel`], folding the
//!   paper's §4–5 measures — anonymity-set size vs. batch window,
//!   size-linkage vs. padding, per-resolver knowledge vs. striping — as
//!   it goes. All per-event state is O(1); 10⁶ users / 10⁸ events fit
//!   comfortably in memory.
//! * **Checkpoint/resume** ([`checkpoint`]): a complete byte snapshot at
//!   any event boundary; a resumed run's report is byte-identical to a
//!   straight-through run's.
//!
//! ```
//! use dcp_worlds::{Engine, Topology, WorldSpec};
//!
//! let spec = WorldSpec::smoke();
//! let mut world = Engine::new(&spec, &Topology::odoh(), 42).unwrap();
//! world.run_until_events(10_000);
//! let snapshot = world.checkpoint(); // pause…
//! let mut world = Engine::restore(&snapshot).unwrap(); // …resume
//! world.run_to_end();
//! let report = world.report();
//! assert!(report.mean_anonymity_set >= 1.0);
//! ```

pub mod checkpoint;
pub mod engine;
pub mod gen;
pub mod rng;
pub mod spec;

pub use engine::{Engine, PopReport, Topology};
pub use gen::{Diurnal, Poisson, Workload, Zipf};
pub use rng::SplitMix64;
pub use spec::{PopulationScenario, WorkloadBuilder, WorldSpec};
