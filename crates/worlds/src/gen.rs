//! Seeded workload generators: Zipf query populations, Poisson
//! arrivals, diurnal load curves.
//!
//! Real query workloads are nothing like `2 clients × 5 queries`: name
//! popularity is Zipf-distributed, per-user activity is heavy-tailed,
//! arrivals are Poisson within a diurnal envelope. These generators
//! produce that shape deterministically from a seed, so a 10⁶-user world
//! replays bit-for-bit.

use crate::rng::SplitMix64;

/// A Zipf(s) distribution over ranks `0..n` (rank 0 most popular):
/// `P(k) ∝ 1/(k+1)^s`. `s = 0` degenerates to uniform; large `s`
/// concentrates all mass on the head (weights underflow to zero
/// harmlessly — the CDF stays monotone).
///
/// Sampling is by inversion against a precomputed CDF: `O(log n)` per
/// draw, one `f64` per rank of memory — bounded and fast at 10⁶ ranks.
#[derive(Clone, Debug)]
pub struct Zipf {
    cdf: Vec<f64>,
}

impl Zipf {
    /// Build the distribution; `None` for an empty population (`n = 0`)
    /// or a non-finite/negative exponent.
    pub fn new(n: usize, s: f64) -> Option<Zipf> {
        if n == 0 || !s.is_finite() || s < 0.0 {
            return None;
        }
        let mut cdf = Vec::with_capacity(n);
        let mut acc = 0.0f64;
        for k in 0..n {
            acc += ((k + 1) as f64).powf(-s);
            cdf.push(acc);
        }
        let total = acc;
        if total > 0.0 {
            for c in &mut cdf {
                *c /= total;
            }
        } else {
            // s so large every weight underflowed: all mass on rank 0
            // (a constant CDF of 1.0 makes inversion return rank 0).
            cdf.fill(1.0);
        }
        Some(Zipf { cdf })
    }

    /// Population size.
    pub fn n(&self) -> usize {
        self.cdf.len()
    }

    /// The probability weight of rank `k` (difference of adjacent CDF
    /// entries).
    pub fn weight(&self, k: usize) -> f64 {
        let hi = self.cdf[k];
        let lo = if k == 0 { 0.0 } else { self.cdf[k - 1] };
        hi - lo
    }

    /// Draw a rank.
    pub fn sample(&self, rng: &mut SplitMix64) -> usize {
        let u = rng.next_f64();
        let ix = self.cdf.partition_point(|&c| c <= u);
        ix.min(self.cdf.len() - 1)
    }
}

/// Homogeneous Poisson arrivals at `rate_hz` events per simulated
/// second: exponential inter-arrival times via inversion. A rate of `0`
/// (or any non-positive/non-finite rate) produces no arrivals, ever.
#[derive(Clone, Copy, Debug)]
pub struct Poisson {
    rate_hz: f64,
}

impl Poisson {
    /// A process at `rate_hz` arrivals per simulated second.
    pub fn new(rate_hz: f64) -> Poisson {
        Poisson { rate_hz }
    }

    /// The configured rate.
    pub fn rate_hz(&self) -> f64 {
        self.rate_hz
    }

    /// Next inter-arrival gap in µs, or `None` if the process never
    /// fires (rate ≤ 0). Gaps are at least 1 µs so arrival times
    /// strictly advance.
    pub fn next_interarrival_us(&self, rng: &mut SplitMix64) -> Option<u64> {
        if self.rate_hz <= 0.0 || !self.rate_hz.is_finite() {
            return None;
        }
        let u = rng.next_f64(); // [0, 1) → 1-u ∈ (0, 1], ln is finite
        let gap_s = -(1.0 - u).ln() / self.rate_hz;
        Some(((gap_s * 1e6).ceil() as u64).max(1))
    }
}

/// A sinusoidal diurnal load envelope: instantaneous rate factor
/// `1 + amplitude · sin(2πt/period)`, so load swings between
/// `1 - amplitude` and `1 + amplitude` around the mean. `amplitude = 0`
/// or `period_us = 0` is flat.
#[derive(Clone, Copy, Debug)]
pub struct Diurnal {
    /// Swing around the mean rate, clamped to `[0, 0.99]` on
    /// construction so the trough never reaches zero.
    pub amplitude: f64,
    /// Cycle length in simulated µs.
    pub period_us: u64,
}

impl Diurnal {
    /// An envelope with the given swing and period (amplitude clamped to
    /// `[0, 0.99]`).
    pub fn new(amplitude: f64, period_us: u64) -> Diurnal {
        let amplitude = if amplitude.is_finite() {
            amplitude.clamp(0.0, 0.99)
        } else {
            0.0
        };
        Diurnal {
            amplitude,
            period_us,
        }
    }

    /// The rate factor at simulated time `t_us`.
    pub fn factor(&self, t_us: u64) -> f64 {
        if self.amplitude == 0.0 || self.period_us == 0 {
            return 1.0;
        }
        let phase = (t_us % self.period_us) as f64 / self.period_us as f64;
        1.0 + self.amplitude * (phase * core::f64::consts::TAU).sin()
    }
}

/// The assembled per-world workload: name popularity (Zipf), per-user
/// activity skew (Zipf weights as rate multipliers), Poisson arrivals
/// under the diurnal envelope. Built by
/// [`WorkloadBuilder`](crate::spec::WorkloadBuilder) from a
/// [`WorldSpec`](crate::spec::WorldSpec).
#[derive(Clone, Debug)]
pub struct Workload {
    names: Zipf,
    /// Per-user rate multiplier (mean 1.0 across the population).
    user_multiplier: Vec<f64>,
    /// Per-user mean arrival rate × multiplier, sampled at the diurnal
    /// *peak* and thinned down to the envelope.
    base: Poisson,
    diurnal: Diurnal,
}

impl Workload {
    pub(crate) fn assemble(
        users: usize,
        names: usize,
        name_exponent: f64,
        user_exponent: f64,
        rate_hz: f64,
        diurnal: Diurnal,
    ) -> Result<Workload, String> {
        let names = Zipf::new(names, name_exponent)
            .ok_or_else(|| format!("empty or invalid name population (n={names})"))?;
        let activity = Zipf::new(users, user_exponent)
            .ok_or_else(|| format!("empty or invalid user population (n={users})"))?;
        // Zipf weights sum to 1; scaling by n gives multipliers with
        // population mean exactly 1, so `rate_hz` stays the mean rate.
        let user_multiplier = (0..users)
            .map(|u| activity.weight(u) * users as f64)
            .collect();
        Ok(Workload {
            names,
            user_multiplier,
            base: Poisson::new(rate_hz),
            diurnal,
        })
    }

    /// How many users this workload drives.
    pub fn users(&self) -> usize {
        self.user_multiplier.len()
    }

    /// Draw a query name (rank; 0 = most popular).
    pub fn sample_name(&self, rng: &mut SplitMix64) -> u32 {
        self.names.sample(rng) as u32
    }

    /// `user`'s next arrival strictly after `after_us`, or `None` if the
    /// user never queries (zero rate). Poisson thinning against the
    /// diurnal envelope: sample at the peak rate, accept with
    /// probability `factor(t) / (1 + amplitude)` — an exact
    /// inhomogeneous-Poisson draw, deterministic given the RNG.
    pub fn next_arrival_us(&self, user: u32, after_us: u64, rng: &mut SplitMix64) -> Option<u64> {
        let mult = self.user_multiplier.get(user as usize).copied()?;
        let peak_rate = self.base.rate_hz() * mult * (1.0 + self.diurnal.amplitude);
        let peak = Poisson::new(peak_rate);
        let mut t = after_us;
        loop {
            t = t.saturating_add(peak.next_interarrival_us(rng)?);
            let accept = self.diurnal.factor(t) / (1.0 + self.diurnal.amplitude);
            if rng.next_f64() < accept {
                return Some(t);
            }
            if t == u64::MAX {
                return None; // saturated past the end of time
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zipf_rejects_empty_population() {
        assert!(Zipf::new(0, 1.0).is_none());
        assert!(Zipf::new(0, 0.0).is_none());
        assert!(Zipf::new(5, f64::NAN).is_none());
        assert!(Zipf::new(5, -1.0).is_none());
    }

    #[test]
    fn zipf_zero_exponent_is_uniform() {
        let z = Zipf::new(4, 0.0).unwrap();
        for k in 0..4 {
            assert!((z.weight(k) - 0.25).abs() < 1e-12);
        }
        let mut rng = SplitMix64::new(3);
        let mut counts = [0u32; 4];
        for _ in 0..40_000 {
            counts[z.sample(&mut rng)] += 1;
        }
        for &c in &counts {
            assert!((8_000..12_000).contains(&c), "roughly uniform: {counts:?}");
        }
    }

    #[test]
    fn zipf_large_exponent_concentrates_on_head() {
        let z = Zipf::new(1000, 60.0).unwrap();
        let mut rng = SplitMix64::new(5);
        for _ in 0..1000 {
            assert_eq!(z.sample(&mut rng), 0, "s=60: all mass at rank 0");
        }
        // Even more extreme: every weight underflows; still rank 0.
        let z = Zipf::new(1000, 5000.0).unwrap();
        assert_eq!(z.sample(&mut SplitMix64::new(1)), 0);
    }

    #[test]
    fn zipf_is_head_heavy() {
        let z = Zipf::new(100, 1.1).unwrap();
        assert!(z.weight(0) > z.weight(1));
        assert!(z.weight(1) > z.weight(50));
        let total: f64 = (0..100).map(|k| z.weight(k)).sum();
        assert!((total - 1.0).abs() < 1e-9);
    }

    #[test]
    fn poisson_rate_zero_never_fires() {
        let mut rng = SplitMix64::new(1);
        assert_eq!(Poisson::new(0.0).next_interarrival_us(&mut rng), None);
        assert_eq!(Poisson::new(-3.0).next_interarrival_us(&mut rng), None);
        assert_eq!(Poisson::new(f64::NAN).next_interarrival_us(&mut rng), None);
        assert_eq!(
            Poisson::new(f64::INFINITY).next_interarrival_us(&mut rng),
            None
        );
    }

    #[test]
    fn poisson_mean_tracks_rate() {
        let p = Poisson::new(100.0); // 100 Hz → mean gap 10_000 µs
        let mut rng = SplitMix64::new(11);
        let n = 20_000;
        let total: u64 = (0..n)
            .map(|_| p.next_interarrival_us(&mut rng).unwrap())
            .sum();
        let mean = total as f64 / n as f64;
        assert!(
            (8_000.0..12_000.0).contains(&mean),
            "mean gap ≈ 10ms, got {mean}"
        );
    }

    #[test]
    fn diurnal_envelope_bounds_and_clamp() {
        let d = Diurnal::new(0.5, 1000);
        for t in 0..2000 {
            let f = d.factor(t);
            assert!((0.5..=1.5).contains(&f));
        }
        assert_eq!(Diurnal::new(7.0, 10).amplitude, 0.99, "clamped");
        assert_eq!(Diurnal::new(f64::NAN, 10).amplitude, 0.0);
        assert_eq!(Diurnal::new(0.9, 0).factor(123), 1.0, "no period → flat");
    }

    #[test]
    fn workload_arrivals_advance_and_respect_zero_rate() {
        let w = Workload::assemble(10, 10, 1.0, 0.5, 50.0, Diurnal::new(0.8, 1_000_000)).unwrap();
        let mut rng = SplitMix64::new(2);
        let mut t = 0;
        for _ in 0..200 {
            let next = w.next_arrival_us(3, t, &mut rng).unwrap();
            assert!(next > t, "arrivals strictly advance");
            t = next;
        }
        let silent = Workload::assemble(4, 4, 1.0, 0.0, 0.0, Diurnal::new(0.0, 0)).unwrap();
        assert_eq!(silent.next_arrival_us(0, 0, &mut rng), None);
        assert_eq!(w.next_arrival_us(999, 0, &mut rng), None, "unknown user");
    }

    #[test]
    fn workload_rejects_empty_populations() {
        assert!(Workload::assemble(0, 5, 1.0, 1.0, 1.0, Diurnal::new(0.0, 0)).is_err());
        assert!(Workload::assemble(5, 0, 1.0, 1.0, 1.0, Diurnal::new(0.0, 0)).is_err());
    }
}
