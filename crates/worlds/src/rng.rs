//! A serializable deterministic RNG for population engines.
//!
//! The vendored `rand::StdRng` does not expose its internal state, so a
//! checkpointed run could not resume its random stream. The population
//! engine instead draws from this SplitMix64 generator: one `u64` of
//! state, trivially serialized, bit-for-bit portable. (Same finalizer as
//! `dcp_core::sweep::derive_seed`, so the whole workspace shares one
//! mixing function.)

/// SplitMix64: 64 bits of state, full-period, excellent diffusion —
/// ideal for simulation streams (not for cryptography, which this
/// workspace gets from `dcp-crypto`).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Seeded generator.
    pub fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// The raw state, for checkpointing.
    pub fn state(&self) -> u64 {
        self.state
    }

    /// Rebuild from a checkpointed state.
    pub fn from_state(state: u64) -> Self {
        SplitMix64 { state }
    }

    /// Next 64 uniform bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform `f64` in `[0, 1)` (53 mantissa bits).
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// An independent substream derived from this one (advances this
    /// generator by one draw).
    pub fn fork(&mut self) -> SplitMix64 {
        SplitMix64::new(self.next_u64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_and_restorable() {
        let mut a = SplitMix64::new(7);
        let x = a.next_u64();
        let saved = a.state();
        let y = a.next_u64();
        let mut b = SplitMix64::from_state(saved);
        assert_eq!(b.next_u64(), y, "resume mid-stream");
        assert_ne!(x, y);
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut r = SplitMix64::new(99);
        for _ in 0..10_000 {
            let v = r.next_f64();
            assert!((0.0..1.0).contains(&v));
        }
    }

    #[test]
    fn forked_streams_differ() {
        let mut a = SplitMix64::new(1);
        let mut b = a.fork();
        assert_ne!(a.next_u64(), b.next_u64());
    }
}
