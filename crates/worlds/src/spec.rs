//! [`WorldSpec`]: one declarative description of a population, and the
//! [`PopulationScenario`] bridge that runs any §3 scenario wiring at
//! population scale.

use dcp_core::{RunOptions, Scenario};
use serde::Serialize;

use crate::gen::{Diurnal, Workload};

/// A population-scale world, declaratively: how many users and names,
/// how skewed, how fast, how diurnal, how long. Everything the workload
/// generators need; the seed arrives separately at run time so one spec
/// sweeps over many seeds.
#[derive(Clone, Debug, PartialEq, Serialize)]
pub struct WorldSpec {
    /// Simulated user population.
    pub users: u64,
    /// Distinct query names (DNS names, destinations, …).
    pub names: u64,
    /// Zipf exponent of name popularity (`0` = uniform).
    pub name_exponent: f64,
    /// Zipf exponent of per-user activity skew (`0` = homogeneous).
    pub user_exponent: f64,
    /// Mean per-user query rate, Hz of simulated time.
    pub rate_hz: f64,
    /// Diurnal swing around the mean rate, clamped to `[0, 0.99]`.
    pub diurnal_amplitude: f64,
    /// Diurnal cycle length, simulated µs (`0` = flat).
    pub diurnal_period_us: u64,
    /// How long users keep issuing queries, simulated µs.
    pub duration_us: u64,
}

impl Default for WorldSpec {
    fn default() -> Self {
        WorldSpec {
            users: 1_000,
            names: 1_000,
            name_exponent: 1.1,
            user_exponent: 0.6,
            rate_hz: 0.5,
            diurnal_amplitude: 0.5,
            diurnal_period_us: 60_000_000, // one "day" per simulated minute
            duration_us: 60_000_000,
        }
    }
}

impl WorldSpec {
    /// The default mid-size spec.
    pub fn new() -> Self {
        WorldSpec::default()
    }

    /// A small spec for CI smokes and tests (hundreds of users, a few
    /// simulated seconds).
    pub fn smoke() -> Self {
        WorldSpec {
            users: 200,
            names: 100,
            duration_us: 5_000_000,
            rate_hz: 2.0,
            ..WorldSpec::default()
        }
    }

    /// Set the user population (chainable).
    pub fn users(mut self, users: u64) -> Self {
        self.users = users;
        self
    }

    /// Set the name population (chainable).
    pub fn names(mut self, names: u64) -> Self {
        self.names = names;
        self
    }

    /// Set the Zipf exponents for name popularity and user activity
    /// (chainable).
    pub fn exponents(mut self, name_s: f64, user_s: f64) -> Self {
        self.name_exponent = name_s;
        self.user_exponent = user_s;
        self
    }

    /// Set the mean per-user rate in Hz (chainable).
    pub fn rate_hz(mut self, rate_hz: f64) -> Self {
        self.rate_hz = rate_hz;
        self
    }

    /// Set the diurnal envelope (chainable).
    pub fn diurnal(mut self, amplitude: f64, period_us: u64) -> Self {
        self.diurnal_amplitude = amplitude;
        self.diurnal_period_us = period_us;
        self
    }

    /// Set the workload duration in simulated µs (chainable).
    pub fn duration_us(mut self, duration_us: u64) -> Self {
        self.duration_us = duration_us;
        self
    }

    /// Expected queries across the whole population
    /// (`users × rate × duration`).
    pub fn expected_queries(&self) -> u64 {
        (self.users as f64 * self.rate_hz * (self.duration_us as f64 / 1e6)).round() as u64
    }

    /// Expected queries per user, at least 1 — what scenario configs'
    /// `queries_each`-style knobs are derived from.
    pub fn queries_per_user(&self) -> u64 {
        ((self.rate_hz * (self.duration_us as f64 / 1e6)).round() as u64).max(1)
    }
}

/// Builds the seeded generator assembly ([`Workload`]) for a spec.
/// Fails on empty populations or non-finite exponents rather than
/// producing a silently degenerate world.
#[derive(Clone, Debug)]
pub struct WorkloadBuilder {
    spec: WorldSpec,
}

impl WorkloadBuilder {
    /// A builder over `spec`.
    pub fn new(spec: &WorldSpec) -> Self {
        WorkloadBuilder { spec: spec.clone() }
    }

    /// The spec being built.
    pub fn spec(&self) -> &WorldSpec {
        &self.spec
    }

    /// Assemble the generators.
    pub fn build(&self) -> Result<Workload, String> {
        let s = &self.spec;
        Workload::assemble(
            s.users as usize,
            s.names as usize,
            s.name_exponent,
            s.user_exponent,
            s.rate_hz,
            Diurnal::new(s.diurnal_amplitude, s.diurnal_period_us),
        )
    }
}

/// Runs a §3 scenario wiring at population scale: the scenario maps a
/// [`WorldSpec`] onto its own config, and the provided entrypoint runs
/// it under the population profile (no per-packet trace, streaming
/// metrics) so memory stays bounded.
///
/// Implemented by all nine wirings via `dcp-runtime`'s re-export; the
/// abstract [`Topology`](crate::engine::Topology) preset (for
/// engine-scale 10⁸-event runs) rides along so every scenario names its
/// population shape once.
pub trait PopulationScenario: Scenario {
    /// Map a population spec onto this scenario's config. Large specs
    /// map to large configs — the implementation must not silently cap.
    fn population_config(spec: &WorldSpec) -> Self::Config;

    /// The abstract decoupled-path topology this wiring corresponds to,
    /// for engine-scale (10⁶ users / 10⁸ events) population runs.
    fn topology() -> crate::engine::Topology;

    /// Run the real protocol wiring over the population described by
    /// `spec`: trace recording off, metrics streaming — the bounded-
    /// memory profile.
    fn run_population(spec: &WorldSpec, seed: u64) -> Self::Report {
        let cfg = Self::population_config(spec);
        Self::run_with(&cfg, seed, &RunOptions::population())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spec_builders_chain() {
        let s = WorldSpec::new()
            .users(10)
            .names(5)
            .exponents(1.0, 0.0)
            .rate_hz(2.0)
            .diurnal(0.25, 1000)
            .duration_us(3_000_000);
        assert_eq!(s.users, 10);
        assert_eq!(s.names, 5);
        assert_eq!(s.queries_per_user(), 6);
        assert_eq!(s.expected_queries(), 60);
        assert!(WorkloadBuilder::new(&s).build().is_ok());
    }

    #[test]
    fn builder_rejects_empty_populations() {
        assert!(WorkloadBuilder::new(&WorldSpec::new().users(0))
            .build()
            .is_err());
        assert!(WorkloadBuilder::new(&WorldSpec::new().names(0))
            .build()
            .is_err());
    }

    #[test]
    fn queries_per_user_floors_at_one() {
        let s = WorldSpec::new().rate_hz(0.0001).duration_us(1000);
        assert_eq!(s.queries_per_user(), 1);
    }
}
