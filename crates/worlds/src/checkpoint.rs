//! Checkpoint/resume for the population engine.
//!
//! A checkpoint is a complete, self-describing byte snapshot of an
//! [`Engine`](crate::Engine): spec, topology, seed, RNG state, clock,
//! sequence counter, streaming stats, in-progress ingress batches, and
//! every pending timer-wheel entry. Restoring and running to the end
//! must produce a report byte-identical to a straight-through run — CI
//! diffs exactly that.
//!
//! The format is hand-rolled little-endian ("DCPW" magic + version):
//! the vendored `serde`/`serde_json` stand-ins are serialize-only, so
//! there is no parser to lean on, and an explicit codec keeps the
//! snapshot stable across compiler and library versions anyway.

use std::collections::BTreeMap;

use crate::engine::{Engine, PopEvent, Stats, Topology};
use crate::rng::SplitMix64;
use crate::spec::WorldSpec;

const MAGIC: u32 = u32::from_le_bytes(*b"DCPW");
const VERSION: u32 = 1;

struct Writer {
    buf: Vec<u8>,
}

impl Writer {
    fn new() -> Writer {
        Writer { buf: Vec::new() }
    }
    fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }
    fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }
    fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }
    fn f64(&mut self, v: f64) {
        self.u64(v.to_bits());
    }
    fn bool(&mut self, v: bool) {
        self.u8(v as u8);
    }
    fn str(&mut self, s: &str) {
        self.u64(s.len() as u64);
        self.buf.extend_from_slice(s.as_bytes());
    }
    fn vec_u64(&mut self, v: &[u64]) {
        self.u64(v.len() as u64);
        for &x in v {
            self.u64(x);
        }
    }
    fn vec_u32(&mut self, v: &[u32]) {
        self.u64(v.len() as u64);
        for &x in v {
            self.u32(x);
        }
    }
}

struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn new(buf: &'a [u8]) -> Reader<'a> {
        Reader { buf, pos: 0 }
    }
    fn take(&mut self, n: usize) -> Result<&'a [u8], String> {
        let end = self
            .pos
            .checked_add(n)
            .filter(|&e| e <= self.buf.len())
            .ok_or_else(|| format!("checkpoint truncated at byte {}", self.pos))?;
        let s = &self.buf[self.pos..end];
        self.pos = end;
        Ok(s)
    }
    fn u8(&mut self) -> Result<u8, String> {
        Ok(self.take(1)?[0])
    }
    fn u32(&mut self) -> Result<u32, String> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }
    fn u64(&mut self) -> Result<u64, String> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }
    fn f64(&mut self) -> Result<f64, String> {
        Ok(f64::from_bits(self.u64()?))
    }
    fn bool(&mut self) -> Result<bool, String> {
        Ok(self.u8()? != 0)
    }
    fn len(&mut self) -> Result<usize, String> {
        let n = self.u64()?;
        // A length can never exceed the bytes that remain — reject early
        // so corrupt lengths fail cleanly instead of attempting huge
        // allocations.
        if n > (self.buf.len() - self.pos) as u64 {
            return Err(format!(
                "checkpoint length field {n} exceeds remaining bytes"
            ));
        }
        Ok(n as usize)
    }
    fn str(&mut self) -> Result<String, String> {
        let n = self.len()?;
        String::from_utf8(self.take(n)?.to_vec()).map_err(|e| e.to_string())
    }
    fn vec_u64(&mut self) -> Result<Vec<u64>, String> {
        let n = self.len()?;
        (0..n).map(|_| self.u64()).collect()
    }
    fn vec_u32(&mut self) -> Result<Vec<u32>, String> {
        let n = self.len()?;
        (0..n).map(|_| self.u32()).collect()
    }
    fn done(&self) -> Result<(), String> {
        if self.pos == self.buf.len() {
            Ok(())
        } else {
            Err(format!(
                "checkpoint has {} trailing bytes",
                self.buf.len() - self.pos
            ))
        }
    }
}

fn write_event(w: &mut Writer, ev: &PopEvent) {
    match ev {
        PopEvent::Arrival { user } => {
            w.u8(0);
            w.u32(*user);
        }
        PopEvent::Up {
            user,
            name,
            size,
            hop,
            sent_us,
        } => {
            w.u8(1);
            w.u32(*user);
            w.u32(*name);
            w.u32(*size);
            w.u8(*hop);
            w.u64(*sent_us);
        }
        PopEvent::Down {
            user,
            size,
            hop,
            sent_us,
        } => {
            w.u8(2);
            w.u32(*user);
            w.u32(*size);
            w.u8(*hop);
            w.u64(*sent_us);
        }
        PopEvent::Flush { ingress } => {
            w.u8(3);
            w.u32(*ingress);
        }
    }
}

fn read_event(r: &mut Reader) -> Result<PopEvent, String> {
    Ok(match r.u8()? {
        0 => PopEvent::Arrival { user: r.u32()? },
        1 => PopEvent::Up {
            user: r.u32()?,
            name: r.u32()?,
            size: r.u32()?,
            hop: r.u8()?,
            sent_us: r.u64()?,
        },
        2 => PopEvent::Down {
            user: r.u32()?,
            size: r.u32()?,
            hop: r.u8()?,
            sent_us: r.u64()?,
        },
        3 => PopEvent::Flush { ingress: r.u32()? },
        t => return Err(format!("unknown event tag {t}")),
    })
}

impl Engine {
    /// Serialize the complete engine state. Safe at any event boundary
    /// (between [`run_until_events`](Engine::run_until_events) calls).
    pub fn checkpoint(&self) -> Vec<u8> {
        let mut w = Writer::new();
        w.u32(MAGIC);
        w.u32(VERSION);

        // Spec — the workload tables are rebuilt from this on restore.
        let s = &self.spec;
        w.u64(s.users);
        w.u64(s.names);
        w.f64(s.name_exponent);
        w.f64(s.user_exponent);
        w.f64(s.rate_hz);
        w.f64(s.diurnal_amplitude);
        w.u64(s.diurnal_period_us);
        w.u64(s.duration_us);

        // Topology.
        let t = &self.topo;
        w.str(&t.scenario);
        w.u32(t.hops);
        w.u32(t.ingresses);
        w.u64(t.batch_window_us);
        w.u64(t.pad_to);
        w.u32(t.resolvers);
        w.bool(t.stripe_by_name);
        w.u64(t.link_us);
        w.u64(t.query_bytes);
        w.u64(t.resp_bytes);

        // Dynamic state.
        w.u64(self.seed);
        w.u64(self.rng.state());
        w.u64(self.now_us);
        w.u64(self.next_seq);
        w.u64(self.events);

        // Streaming stats.
        let st = &self.stats;
        w.u64(st.queries_sent);
        w.u64(st.queries_answered);
        w.u64(st.messages);
        w.u64(st.batches);
        w.u64(st.batch_users_sum);
        w.vec_u64(&st.anon_hist);
        w.u64(st.linkage_attempts);
        w.u64(st.linkage_linked);
        w.vec_u64(&st.latency_hist);
        w.u64(st.latency_sum_us);
        w.vec_u64(&st.resolver_queries);
        w.u64(st.resolver_seen.len() as u64);
        for bits in &st.resolver_seen {
            w.vec_u64(bits);
        }
        w.vec_u32(&st.per_user_resolver);
        w.vec_u32(&st.per_user_queries);
        w.u64(st.inflight_sizes.len() as u64);
        for (&size, &count) in &st.inflight_sizes {
            w.u32(size);
            w.u32(count);
        }

        // In-progress ingress batches.
        w.u64(self.batches.len() as u64);
        for batch in &self.batches {
            w.u64(batch.len() as u64);
            for &(user, name, size, sent_us) in batch {
                w.u32(user);
                w.u32(name);
                w.u32(size);
                w.u64(sent_us);
            }
        }

        // Pending timer-wheel entries, in canonical (time, seq) order.
        let snap = self.wheel.snapshot();
        w.u64(snap.len() as u64);
        for (time, seq, ev) in &snap {
            w.u64(*time);
            w.u64(*seq);
            write_event(&mut w, ev);
        }

        w.buf
    }

    /// Rebuild an engine from [`checkpoint`](Engine::checkpoint) bytes.
    /// The restored engine continues the run bit-for-bit: its final
    /// report is byte-identical to a never-paused run's.
    pub fn restore(bytes: &[u8]) -> Result<Engine, String> {
        let mut r = Reader::new(bytes);
        if r.u32()? != MAGIC {
            return Err("not a dcp-worlds checkpoint (bad magic)".into());
        }
        let version = r.u32()?;
        if version != VERSION {
            return Err(format!("unsupported checkpoint version {version}"));
        }

        let spec = WorldSpec {
            users: r.u64()?,
            names: r.u64()?,
            name_exponent: r.f64()?,
            user_exponent: r.f64()?,
            rate_hz: r.f64()?,
            diurnal_amplitude: r.f64()?,
            diurnal_period_us: r.u64()?,
            duration_us: r.u64()?,
        };
        let topo = Topology {
            scenario: r.str()?,
            hops: r.u32()?,
            ingresses: r.u32()?,
            batch_window_us: r.u64()?,
            pad_to: r.u64()?,
            resolvers: r.u32()?,
            stripe_by_name: r.bool()?,
            link_us: r.u64()?,
            query_bytes: r.u64()?,
            resp_bytes: r.u64()?,
        };

        let seed = r.u64()?;
        // Workload tables are a pure function of the spec; rebuild them
        // instead of storing megabytes of CDF.
        let mut e = Engine::empty(&spec, &topo, seed)?;
        e.rng = SplitMix64::from_state(r.u64()?);
        e.now_us = r.u64()?;
        e.next_seq = r.u64()?;
        e.events = r.u64()?;

        let mut st = Stats {
            queries_sent: r.u64()?,
            queries_answered: r.u64()?,
            messages: r.u64()?,
            batches: r.u64()?,
            batch_users_sum: r.u64()?,
            anon_hist: r.vec_u64()?,
            linkage_attempts: r.u64()?,
            linkage_linked: r.u64()?,
            latency_hist: r.vec_u64()?,
            latency_sum_us: r.u64()?,
            resolver_queries: r.vec_u64()?,
            ..Stats::default()
        };
        let n_res = r.len()?;
        st.resolver_seen = (0..n_res).map(|_| r.vec_u64()).collect::<Result<_, _>>()?;
        st.per_user_resolver = r.vec_u32()?;
        st.per_user_queries = r.vec_u32()?;
        let n_sizes = r.len()?;
        let mut inflight = BTreeMap::new();
        for _ in 0..n_sizes {
            let size = r.u32()?;
            let count = r.u32()?;
            inflight.insert(size, count);
        }
        st.inflight_sizes = inflight;
        if st.per_user_queries.len() as u64 != spec.users
            || st.resolver_queries.len() != topo.resolvers as usize
        {
            return Err("checkpoint stats do not match spec dimensions".into());
        }
        e.stats = st;

        let n_batches = r.len()?;
        if n_batches != e.batches.len() {
            return Err("checkpoint batch count does not match topology".into());
        }
        for b in 0..n_batches {
            let n = r.len()?;
            let mut batch = Vec::with_capacity(n);
            for _ in 0..n {
                batch.push((r.u32()?, r.u32()?, r.u32()?, r.u64()?));
            }
            e.batches[b] = batch;
        }

        let n_events = r.len()?;
        for _ in 0..n_events {
            let time = r.u64()?;
            let seq = r.u64()?;
            let ev = read_event(&mut r)?;
            // Re-inserting into a fresh wheel (cursor 0) preserves the
            // (time, seq) total order: the engine never schedules behind
            // its clock, so every pending entry sits at or after now.
            e.wheel.push(time, seq, ev);
        }
        r.done()?;
        Ok(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::WorldSpec;

    fn spec() -> WorldSpec {
        WorldSpec::smoke()
            .users(80)
            .names(40)
            .duration_us(3_000_000)
    }

    fn straight_report(topo: &Topology, seed: u64) -> crate::PopReport {
        let mut e = Engine::new(&spec(), topo, seed).unwrap();
        e.run_to_end();
        e.report()
    }

    #[test]
    fn resume_matches_straight_run_exactly() {
        for name in ["odoh", "mixnet", "direct"] {
            let topo = Topology::by_name(name).unwrap();
            let straight = straight_report(&topo, 17);

            let mut e = Engine::new(&spec(), &topo, 17).unwrap();
            e.run_until_events(e.spec.users / 2); // pause mid-world
            let bytes = e.checkpoint();
            drop(e);

            let mut resumed = Engine::restore(&bytes).unwrap();
            resumed.run_to_end();
            assert_eq!(resumed.report(), straight, "{name} resume must be exact");
        }
    }

    #[test]
    fn chained_checkpoints_stay_exact() {
        let topo = Topology::odoh();
        let straight = straight_report(&topo, 5);

        let mut e = Engine::new(&spec(), &topo, 5).unwrap();
        let mut budget = 300u64;
        loop {
            let done = e.run_until_events(budget);
            // Round-trip through bytes at every pause.
            e = Engine::restore(&e.checkpoint()).unwrap();
            if done {
                break;
            }
            budget += 300;
        }
        assert_eq!(e.report(), straight);
    }

    #[test]
    fn checkpoint_bytes_are_deterministic() {
        let topo = Topology::mpr();
        let snap = |seed| {
            let mut e = Engine::new(&spec(), &topo, seed).unwrap();
            e.run_until_events(1000);
            e.checkpoint()
        };
        assert_eq!(snap(9), snap(9));
        assert_ne!(snap(9), snap(10));
    }

    #[test]
    fn restore_rejects_garbage() {
        assert!(Engine::restore(b"").is_err());
        assert!(Engine::restore(b"nope").is_err());
        assert!(Engine::restore(&[0u8; 64]).is_err());
        let mut e = Engine::new(&spec(), &Topology::odoh(), 1).unwrap();
        e.run_until_events(50);
        let mut bytes = e.checkpoint();
        bytes.truncate(bytes.len() - 3);
        assert!(Engine::restore(&bytes).is_err(), "truncation detected");
        let mut bytes = e.checkpoint();
        bytes.extend_from_slice(&[0, 0, 0]);
        assert!(Engine::restore(&bytes).is_err(), "trailing bytes detected");
        let mut bytes = e.checkpoint();
        bytes[5] ^= 0xFF; // version field
        assert!(Engine::restore(&bytes).is_err(), "bad version detected");
    }
}
