//! Micro-benchmarks of the cryptographic substrate every system rides on.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use dcp_crypto::{aead, hpke, oprf, rsa, sha256, x25519};
use rand::SeedableRng;

fn bench_hash_aead(c: &mut Criterion) {
    let mut g = c.benchmark_group("hash-aead");
    let data = vec![0xabu8; 1024];
    g.throughput(Throughput::Bytes(1024));
    g.bench_function("sha256/1KiB", |b| b.iter(|| sha256::sha256(&data)));
    let key = [7u8; 32];
    let nonce = [9u8; 12];
    g.bench_function("chacha20poly1305-seal/1KiB", |b| {
        b.iter(|| aead::seal(&key, &nonce, b"", &data))
    });
    let ct = aead::seal(&key, &nonce, b"", &data);
    g.bench_function("chacha20poly1305-open/1KiB", |b| {
        b.iter(|| aead::open(&key, &nonce, b"", &ct).unwrap())
    });
    g.finish();
}

fn bench_public_key(c: &mut Criterion) {
    let mut g = c.benchmark_group("public-key");
    let mut rng = rand::rngs::StdRng::seed_from_u64(1);
    let (sk, _pk) = x25519::keypair(&mut rng);
    let (_, peer) = x25519::keypair(&mut rng);
    g.bench_function("x25519-dh", |b| {
        b.iter(|| x25519::shared_secret(&sk, &peer).unwrap())
    });

    let kp = hpke::Keypair::generate(&mut rng);
    g.bench_function("hpke-seal/256B", |b| {
        b.iter(|| hpke::seal(&mut rng, &kp.public, b"", b"", &[0u8; 256]).unwrap())
    });
    let msg = hpke::seal(&mut rng, &kp.public, b"", b"", &[0u8; 256]).unwrap();
    g.bench_function("hpke-open/256B", |b| {
        b.iter(|| hpke::open(&kp, b"", b"", &msg).unwrap())
    });
    g.finish();
}

fn bench_blind_rsa(c: &mut Criterion) {
    let mut g = c.benchmark_group("blind-rsa");
    g.sample_size(10);
    let mut rng = rand::rngs::StdRng::seed_from_u64(2);
    for bits in [512usize, 1024] {
        let sk = rsa::RsaPrivateKey::generate(&mut rng, bits).unwrap();
        let pk = sk.public_key().clone();
        g.bench_function(format!("blind+finalize/{bits}"), |b| {
            b.iter(|| {
                let blinding = pk.blind(&mut rng, b"serial").unwrap();
                let sig = sk.blind_sign(&blinding.blinded_msg).unwrap();
                pk.finalize(b"serial", &sig, &blinding.unblinder).unwrap()
            })
        });
        g.bench_function(format!("verify/{bits}"), |b| {
            let sig = sk.sign(b"serial").unwrap();
            b.iter(|| pk.verify(b"serial", &sig).unwrap())
        });
    }
    g.finish();
}

fn bench_voprf(c: &mut Criterion) {
    let mut g = c.benchmark_group("voprf");
    g.sample_size(10);
    let mut rng = rand::rngs::StdRng::seed_from_u64(3);
    let server = oprf::ServerKey::generate(&mut rng);
    let pk = server.public_key();
    g.bench_function("blind", |b| b.iter(|| oprf::blind(&mut rng, b"input")));
    let blinding = oprf::blind(&mut rng, b"input");
    g.bench_function("evaluate+prove", |b| {
        b.iter(|| {
            server
                .evaluate(&mut rng, &blinding.blinded_element())
                .unwrap()
        })
    });
    let (eval, proof) = server
        .evaluate(&mut rng, &blinding.blinded_element())
        .unwrap();
    g.bench_function("verify+finalize", |b| {
        b.iter(|| blinding.finalize(&pk, &eval, &proof).unwrap())
    });
    g.finish();
}

fn bench_modpow_ablation(c: &mut Criterion) {
    // DESIGN.md ablation, now expressed over the backend byte surface
    // (raw `bigint` imports are lint-forbidden outside `crates/crypto`):
    // reference division-based square-and-multiply vs. the u64 CIOS
    // Montgomery fast backend, at RSA-operand sizes.
    use dcp_crypto::backend::{fast, reference};
    use rand::RngCore;
    let mut g = c.benchmark_group("modpow-ablation");
    g.sample_size(10);
    let mut rng = rand::rngs::StdRng::seed_from_u64(4);
    for bits in [512usize, 1024] {
        let sk = rsa::RsaPrivateKey::generate(&mut rng, bits).unwrap();
        let n = sk.public_key().modulus_be();
        let mut base = vec![0u8; n.len()];
        let mut exp = vec![0u8; n.len()];
        rng.fill_bytes(&mut base);
        rng.fill_bytes(&mut exp);
        base[0] = 0; // keep base < n
        g.bench_function(format!("reference/{bits}"), |b| {
            b.iter(|| reference().modpow_bytes(&base, &exp, &n).unwrap())
        });
        g.bench_function(format!("fast-montgomery/{bits}"), |b| {
            b.iter(|| fast().modpow_bytes(&base, &exp, &n).unwrap())
        });
    }
    g.finish();
}

criterion_group!(
    benches,
    bench_hash_aead,
    bench_public_key,
    bench_blind_rsa,
    bench_voprf,
    bench_modpow_ablation
);
criterion_main!(benches);
