//! Dispatch-loop overhead of the observability hooks.
//!
//! The design claim (see docs/OBSERVABILITY.md): with no sink installed,
//! every emission site reduces to one `Option` branch — `World::obs` is
//! `None`, the event enum is never even constructed. So the same scenario
//! run plain and run through `run_with` + `observe: false` must land
//! within noise of each other. The instrumented run is benchmarked
//! alongside to price the enabled path (event construction + sink fold).

use criterion::{criterion_group, criterion_main, Criterion};
use decoupling::Scenario as _;
use decoupling::{Odoh, OdohConfig, RunOptions};

fn bench_obs_overhead(c: &mut Criterion) {
    let mut g = c.benchmark_group("obs-overhead");
    g.sample_size(20);
    let cfg = OdohConfig::new(2, 5);

    // Baseline: the plain entry point (RunOptions::default — no sink).
    let mut seed = 0u64;
    g.bench_function("odoh-plain", |b| {
        b.iter(|| {
            seed += 1;
            Odoh::run(&cfg, seed)
        })
    });

    // Explicit observe=false through the full RunOptions path: the sink
    // is still never installed. Must match odoh-plain within noise.
    let mut seed = 0u64;
    g.bench_function("odoh-sink-disabled", |b| {
        b.iter(|| {
            seed += 1;
            Odoh::run_with(&cfg, seed, &RunOptions::default())
        })
    });

    // Enabled path: every message, crypto op, span, and knowledge event
    // is constructed and folded into the MetricsReport.
    let mut seed = 0u64;
    g.bench_function("odoh-instrumented", |b| {
        b.iter(|| {
            seed += 1;
            Odoh::run_instrumented(&cfg, seed)
        })
    });
    g.finish();
}

criterion_group!(benches, bench_obs_overhead);
criterion_main!(benches);
