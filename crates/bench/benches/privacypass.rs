//! F-2 / T-3.2.1 — Privacy Pass issuance batch scaling and redemption.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use decoupling::privacypass::{Client, Issuer};
use rand::SeedableRng;

fn bench_issuance(c: &mut Criterion) {
    let mut g = c.benchmark_group("privacypass-issuance");
    g.sample_size(10);
    let mut rng = rand::rngs::StdRng::seed_from_u64(20);
    let mut issuer = Issuer::new(&mut rng);
    let client = Client::new(issuer.public_key());
    for batch in [1usize, 5, 20] {
        g.throughput(Throughput::Elements(batch as u64));
        g.bench_with_input(BenchmarkId::new("issue-batch", batch), &batch, |b, &n| {
            b.iter(|| {
                let req = client.request_tokens(&mut rng, n);
                issuer.issue(&mut rng, &req.blinded).unwrap()
            })
        });
    }
    g.finish();
}

fn bench_redeem(c: &mut Criterion) {
    let mut g = c.benchmark_group("privacypass-redeem");
    g.sample_size(10);
    let mut rng = rand::rngs::StdRng::seed_from_u64(21);
    let mut issuer = Issuer::new(&mut rng);
    let mut client = Client::new(issuer.public_key());
    let req = client.request_tokens(&mut rng, 64);
    let evals = issuer.issue(&mut rng, &req.blinded).unwrap();
    client.accept_issuance(req, &evals).unwrap();
    let mut tokens = Vec::new();
    while let Some(t) = client.spend() {
        tokens.push(t);
    }
    let mut i = 0;
    g.bench_function("redeem", |b| {
        b.iter(|| {
            let t = &tokens[i % tokens.len()];
            i += 1;
            let _ = issuer.redeem(t); // double-spends after first pass are fine for timing
        })
    });
    g.finish();
}

criterion_group!(benches, bench_issuance, bench_redeem);
criterion_main!(benches);
