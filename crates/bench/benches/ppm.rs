//! T-3.2.5 — PPM: submission/verification cost and population scaling.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use decoupling::ppm::prio::{process_locally, submit, Aggregator};
use decoupling::Scenario as _;
use rand::SeedableRng;

fn bench_prio_ops(c: &mut Criterion) {
    let mut g = c.benchmark_group("ppm-ops");
    let mut rng = rand::rngs::StdRng::seed_from_u64(50);
    for bits in [8usize, 16, 32] {
        g.bench_with_input(BenchmarkId::new("client-submit", bits), &bits, |b, &k| {
            b.iter(|| submit(&mut rng, 1, k))
        });
        g.bench_with_input(
            BenchmarkId::new("verify+aggregate", bits),
            &bits,
            |b, &k| {
                let shares = submit(&mut rng, 3, k);
                b.iter(|| {
                    let mut leader = Aggregator::new(0);
                    let mut helper = Aggregator::new(1);
                    process_locally(&mut leader, &mut helper, &shares)
                })
            },
        );
    }
    g.finish();
}

fn bench_population(c: &mut Criterion) {
    let mut g = c.benchmark_group("ppm-sim");
    g.sample_size(10);
    for clients in [10usize, 50] {
        g.throughput(Throughput::Elements(clients as u64));
        let mut seed = 0u64;
        g.bench_with_input(BenchmarkId::new("aggregate", clients), &clients, |b, &n| {
            b.iter(|| {
                seed += 1;
                let config = decoupling::PpmConfig {
                    clients: n,
                    bits: 8,
                    malicious: 0,
                    seed,
                };
                decoupling::Ppm::run(&config, seed)
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench_prio_ops, bench_population);
criterion_main!(benches);
