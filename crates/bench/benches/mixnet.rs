//! F-1 / T-3.1.2 + E-4.3 — mix-net onion costs and the batching sweep.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dcp_core::{KeyId, Label};
use dcp_crypto::hpke;
use decoupling::transport::onion::{self, Hop};
use decoupling::Scenario as _;
use rand::SeedableRng;

fn bench_onion(c: &mut Criterion) {
    let mut g = c.benchmark_group("onion");
    let mut rng = rand::rngs::StdRng::seed_from_u64(40);
    for depth in [1usize, 2, 3, 5] {
        let kps: Vec<hpke::Keypair> = (0..depth)
            .map(|_| hpke::Keypair::generate(&mut rng))
            .collect();
        let hops: Vec<Hop> = kps
            .iter()
            .enumerate()
            .map(|(i, kp)| Hop {
                addr: i as u16,
                pk: kp.public,
                key_id: KeyId(i as u64),
            })
            .collect();
        g.bench_with_input(BenchmarkId::new("wrap", depth), &depth, |b, _| {
            b.iter(|| onion::wrap(&mut rng, &hops, &[0u8; 256], Label::Public).unwrap())
        });
        let (bytes, _) = onion::wrap(&mut rng, &hops, &[0u8; 256], Label::Public).unwrap();
        g.bench_with_input(BenchmarkId::new("peel-one", depth), &depth, |b, _| {
            b.iter(|| onion::unwrap_layer(&kps[0], &bytes).unwrap())
        });
    }
    g.finish();
}

fn bench_mixnet_sweep(c: &mut Criterion) {
    let mut g = c.benchmark_group("mixnet-sim");
    g.sample_size(10);
    for batch in [1usize, 4, 8] {
        let mut seed = 0u64;
        g.bench_with_input(
            BenchmarkId::new("run-8-senders", batch),
            &batch,
            |b, &bs| {
                b.iter(|| {
                    seed += 1;
                    let config = decoupling::MixnetConfig {
                        senders: 8,
                        mixes: 2,
                        batch_size: bs,
                        window_us: 200_000,
                        shuffle: true,
                        chaff_per_sender: 0,
                        mix_max_wait_us: None,
                        seed,
                    };
                    decoupling::Mixnet::run(&config, seed)
                })
            },
        );
    }
    g.finish();
}

criterion_group!(benches, bench_onion, bench_mixnet_sweep);
criterion_main!(benches);
