//! Dispatch-loop overhead of the fault-injection hooks.
//!
//! The design claim (see docs/DST_GUIDE.md): with faults disabled the
//! injector is never constructed, so every `buggify!` site costs one
//! `Option` branch — the same scenario with and without `enable_faults`
//! wired in must land within noise of each other. The enabled presets
//! are benchmarked alongside for scale.

use criterion::{criterion_group, criterion_main, Criterion};
use decoupling::Scenario as _;
use decoupling::{FaultConfig, Mixnet, MixnetConfig};

fn run(config: MixnetConfig) -> decoupling::mixnet::MixnetReport {
    Mixnet::run(&config, config.seed)
}

fn run_with_faults(config: MixnetConfig, faults: &FaultConfig) -> decoupling::mixnet::MixnetReport {
    Mixnet::run_with_faults(&config, config.seed, faults)
}

fn config(seed: u64) -> MixnetConfig {
    MixnetConfig {
        senders: 8,
        mixes: 2,
        batch_size: 4,
        window_us: 100_000,
        shuffle: true,
        chaff_per_sender: 0,
        mix_max_wait_us: None,
        seed,
    }
}

fn bench_dispatch_overhead(c: &mut Criterion) {
    let mut g = c.benchmark_group("faults-overhead");
    g.sample_size(20);

    // Baseline: the plain entry point (delegates to calm — injector off).
    let mut seed = 0u64;
    g.bench_function("mixnet-plain", |b| {
        b.iter(|| {
            seed += 1;
            run(config(seed))
        })
    });

    // Explicit calm: same path through run_with_faults, injector still
    // never constructed. Must match mixnet-plain within noise.
    let mut seed = 0u64;
    g.bench_function("mixnet-faults-disabled", |b| {
        b.iter(|| {
            seed += 1;
            run_with_faults(config(seed), &FaultConfig::calm())
        })
    });

    for (name, faults) in [
        ("mixnet-moderate", FaultConfig::moderate()),
        ("mixnet-chaos", FaultConfig::chaos()),
    ] {
        let mut seed = 0u64;
        g.bench_function(name, |b| {
            b.iter(|| {
                seed += 1;
                run_with_faults(config(seed), &faults)
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench_dispatch_overhead);
criterion_main!(benches);
