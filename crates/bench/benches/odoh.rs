//! T-3.2.2 — ODoH vs. direct DNS: per-query crypto cost and simulated
//! end-to-end latency overhead.

use criterion::{criterion_group, criterion_main, Criterion};
use dcp_crypto::hpke;
use decoupling::dns::{DnsName, Message, RrType};
use decoupling::odns::odoh;
use decoupling::Scenario as _;
use rand::SeedableRng;

fn bench_encapsulation(c: &mut Criterion) {
    let mut g = c.benchmark_group("odoh-crypto");
    let mut rng = rand::rngs::StdRng::seed_from_u64(30);
    let target = hpke::Keypair::generate(&mut rng);
    let query = Message::query(1, DnsName::parse("www.example.com").unwrap(), RrType::A);
    g.bench_function("seal-query", |b| {
        b.iter(|| odoh::seal_query(&mut rng, &target.public, &query).unwrap())
    });
    let (sealed, _) = odoh::seal_query(&mut rng, &target.public, &query).unwrap();
    g.bench_function("open-query", |b| {
        b.iter(|| odoh::open_query(&target, &sealed).unwrap())
    });
    g.bench_function("plain-encode-decode", |b| {
        b.iter(|| Message::decode(&query.encode()).unwrap())
    });
    g.finish();
}

fn bench_simulated_resolution(c: &mut Criterion) {
    let mut g = c.benchmark_group("odoh-sim");
    g.sample_size(10);
    let mut seed = 0u64;
    g.bench_function("odoh-5-queries", |b| {
        b.iter(|| {
            seed += 1;
            decoupling::Odoh::run(&decoupling::OdohConfig::new(1, 5), seed)
        })
    });
    g.bench_function("direct-5-queries", |b| {
        b.iter(|| {
            seed += 1;
            decoupling::DirectDns::run(&decoupling::DirectDnsConfig::new(1, 5, 1), seed)
        })
    });
    g.finish();
}

criterion_group!(benches, bench_encapsulation, bench_simulated_resolution);
criterion_main!(benches);
