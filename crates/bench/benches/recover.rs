//! Cost of the recovery layer, disabled and enabled.
//!
//! Two design claims (see docs/RECOVERY.md):
//!
//! * **Disabled = free.** With `RecoverConfig::disabled()` (the
//!   `RunOptions::default()` path) every `ReliableCall` is inert:
//!   `begin()` returns `None`, messages go out unframed, no timers are
//!   armed. A run through the full `RunOptions` plumbing must land
//!   within noise of the plain entry point.
//! * **Bounded amplification.** With recovery on, cost grows with the
//!   drop rate only through genuine retransmissions (fresh HPKE per
//!   attempt); the 0%-drop recovered run prices the framing + ARQ
//!   bookkeeping alone.

use criterion::{criterion_group, criterion_main, Criterion};
use decoupling::Scenario as _;
use decoupling::{FaultConfig, Odoh, OdohConfig, RunOptions};

/// A fault schedule that *only* drops deliveries, at rate `p`.
fn drop_only(p: f64) -> FaultConfig {
    let mut cfg = FaultConfig::calm();
    cfg.enabled = true;
    cfg.p_drop = p;
    cfg.max_faults = 10_000;
    cfg
}

fn bench_recover_overhead(c: &mut Criterion) {
    let mut g = c.benchmark_group("recover-overhead");
    g.sample_size(20);
    let cfg = OdohConfig::new(2, 5);

    // Baseline: the plain entry point.
    let mut seed = 0u64;
    g.bench_function("odoh-plain", |b| {
        b.iter(|| {
            seed += 1;
            Odoh::run(&cfg, seed)
        })
    });

    // Recovery plumbed through but disabled (the default RunOptions):
    // must match odoh-plain within noise.
    let mut seed = 0u64;
    g.bench_function("odoh-recover-disabled", |b| {
        b.iter(|| {
            seed += 1;
            Odoh::run_with(&cfg, seed, &RunOptions::default())
        })
    });

    // Recovery enabled, zero faults: framing, sequence bookkeeping, and
    // deadline timers with no retransmission ever firing.
    let mut seed = 0u64;
    g.bench_function("odoh-recovered-0-drop", |b| {
        b.iter(|| {
            seed += 1;
            Odoh::run_with(&cfg, seed, &RunOptions::recovered(&FaultConfig::calm()))
        })
    });

    // Retry-amplification curve: recovered runs under increasing
    // drop-only fault rates. Every retransmission re-runs HPKE, so the
    // curve prices re-randomization, not just extra sends.
    for pct in [10u32, 20, 30] {
        let faults = drop_only(pct as f64 / 100.0);
        let mut seed = 0u64;
        g.bench_function(format!("odoh-recovered-{pct}-drop"), |b| {
            b.iter(|| {
                seed += 1;
                Odoh::run_with(&cfg, seed, &RunOptions::recovered(&faults))
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench_recover_overhead);
criterion_main!(benches);
