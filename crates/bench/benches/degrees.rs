//! E-4.2 — degrees of decoupling: simulated fetch cost vs. relay count
//! (the quantitative version of §4.2's cost/benefit discussion).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use decoupling::Scenario as _;
use decoupling::{ChainConfig, Mpr};

fn bench_chain_depth(c: &mut Criterion) {
    let mut g = c.benchmark_group("degrees");
    g.sample_size(10);
    for relays in [0usize, 1, 2, 3, 4] {
        let mut seed = 0u64;
        g.bench_with_input(BenchmarkId::new("fetch-via", relays), &relays, |b, &k| {
            b.iter(|| {
                seed += 1;
                let config = ChainConfig {
                    relays: k,
                    users: 1,
                    fetches_each: 2,
                    geohint: false,
                    seed,
                };
                Mpr::run(&config, seed)
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench_chain_depth);
criterion_main!(benches);
