//! T-3.1.1 — digital-cash cycle cost (withdraw → spend → deposit) and the
//! protocol's cryptographic hot paths.

use criterion::{criterion_group, criterion_main, Criterion};
use dcp_core::UserId;
use decoupling::blindcash::bank::{Bank, Withdrawal};
use decoupling::Scenario as _;
use rand::SeedableRng;

fn bench_cash_ops(c: &mut Criterion) {
    let mut g = c.benchmark_group("blindcash");
    g.sample_size(10);
    let mut rng = rand::rngs::StdRng::seed_from_u64(10);
    let mut bank = Bank::new(&mut rng, 1024);
    bank.open_account(UserId(1), i64::MAX);

    g.bench_function("withdraw-cycle/1024", |b| {
        b.iter(|| {
            let w = Withdrawal::begin(&mut rng, bank.public_key()).unwrap();
            let bs = bank.withdraw(UserId(1), w.blinded_msg()).unwrap();
            w.finish(bank.public_key(), &bs).unwrap()
        })
    });

    let w = Withdrawal::begin(&mut rng, bank.public_key()).unwrap();
    let bs = bank.withdraw(UserId(1), w.blinded_msg()).unwrap();
    let coin = w.finish(bank.public_key(), &bs).unwrap();
    g.bench_function("verify-coin/1024", |b| {
        b.iter(|| coin.verify(bank.public_key()).unwrap())
    });
    g.finish();
}

fn bench_full_scenario(c: &mut Criterion) {
    let mut g = c.benchmark_group("blindcash-sim");
    g.sample_size(10);
    g.bench_function("simulated-cycle/1buyer", |b| {
        let mut seed = 0u64;
        b.iter(|| {
            seed += 1;
            decoupling::Blindcash::run(&decoupling::BlindcashConfig::new(1, 1, 512), seed)
        })
    });
    g.finish();
}

criterion_group!(benches, bench_cash_ops, bench_full_scenario);
criterion_main!(benches);
