//! Throughput of the parallel sweep engine vs the sequential reference.
//!
//! The engine's correctness claim (byte-identical results at any thread
//! count) is covered by tests/sweep_determinism.rs and the CI dst_sweep
//! diff; this bench prices the other half — wall-clock. A 16-world ODoH
//! sweep is run through [`SequentialExecutor`] and through
//! [`ParallelExecutor`] at 1, 2, and 4 threads. On a multi-core host the
//! 2-thread run should land near half the sequential time (the worlds
//! are embarrassingly parallel and coarse enough that the engine's
//! per-item synchronization is noise); on a single-core host all rows
//! collapse to the sequential figure, which is itself the result: the
//! engine adds no measurable overhead when parallelism isn't available.

use criterion::{criterion_group, criterion_main, Criterion};
use decoupling::Scenario as _;
use decoupling::{
    Odoh, OdohConfig, ParallelExecutor, RunOptions, SequentialExecutor, SweepBuilder,
};

fn bench_sweep(c: &mut Criterion) {
    let mut g = c.benchmark_group("sweep");
    g.sample_size(10);
    let cfg = OdohConfig::new(2, 5);
    let opts = RunOptions::new();
    let builder = SweepBuilder::new(20221114).worlds(16);

    g.bench_function("odoh-16-sequential", |b| {
        b.iter(|| Odoh::sweep(&cfg, &builder, &SequentialExecutor, &opts))
    });

    for threads in [1usize, 2, 4] {
        let exec = ParallelExecutor::with_threads(threads);
        g.bench_function(format!("odoh-16-parallel-{threads}t"), |b| {
            b.iter(|| Odoh::sweep(&cfg, &builder, &exec, &opts))
        });
    }
    g.finish();
}

criterion_group!(benches, bench_sweep);
criterion_main!(benches);
