//! Experiment runners shared by the `experiments` harness binary and the
//! Criterion benches. Each public function regenerates one paper artifact
//! (see DESIGN.md §5 for the experiment index).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use dcp_core::degrees::{DegreePoint, DegreeSweep};
use dcp_core::table::DecouplingTable;
use dcp_core::{analyze, collusion::entity_collusion};
use decoupling::Scenario as _;
use serde::Serialize;

/// One reproduced table: experiment id, measured and paper versions.
#[derive(Clone, Debug, Serialize)]
pub struct TableResult {
    /// Experiment id (e.g. "T-3.1.1").
    pub id: String,
    /// Human name.
    pub name: String,
    /// Table derived from the simulation.
    pub measured: DecouplingTable,
    /// The paper's table.
    pub paper: DecouplingTable,
    /// Do they match?
    pub matches: bool,
    /// §2.4 verdict of the run.
    pub decoupled: bool,
    /// Minimal re-coupling coalition size (None = uncouplable).
    pub min_collusion: Option<usize>,
    /// A headline performance figure for the run (µs).
    pub latency_us: f64,
}

fn table_result(
    id: &str,
    name: &str,
    measured: DecouplingTable,
    paper: DecouplingTable,
    decoupled: bool,
    min_collusion: Option<usize>,
    latency_us: f64,
) -> TableResult {
    let matches = measured == paper;
    TableResult {
        id: id.into(),
        name: name.into(),
        measured,
        paper,
        matches,
        decoupled,
        min_collusion,
        latency_us,
    }
}

/// T-3.1.1 — blind-signature digital cash.
pub fn exp_blindcash(seed: u64) -> TableResult {
    let r = decoupling::Blindcash::run(&decoupling::BlindcashConfig::new(1, 2, 512), seed);
    let coll = entity_collusion(&r.world, r.buyers[0], 3);
    table_result(
        "T-3.1.1",
        "Blind-signature digital cash",
        r.table(0),
        decoupling::blindcash::scenario::ScenarioReport::paper_table(),
        analyze(&r.world).decoupled,
        coll.min_coalition_size,
        r.mean_cycle_us,
    )
}

/// F-1 / T-3.1.2 — mix-net.
pub fn exp_mixnet(seed: u64) -> TableResult {
    let config = decoupling::MixnetConfig {
        senders: 8,
        mixes: 2,
        batch_size: 4,
        window_us: 200_000,
        shuffle: true,
        chaff_per_sender: 0,
        mix_max_wait_us: None,
        seed,
    };
    let r = decoupling::Mixnet::run(&config, seed);
    let coll = entity_collusion(&r.world, r.users[0], 3);
    table_result(
        "F-1/T-3.1.2",
        "Chaum mix-net (2 mixes)",
        r.table(0),
        decoupling::mixnet::scenario::MixnetReport::paper_table_two_mixes(),
        analyze(&r.world).decoupled,
        coll.min_coalition_size,
        r.mean_latency_us,
    )
}

/// F-2 / T-3.2.1 — Privacy Pass.
pub fn exp_privacypass(seed: u64) -> TableResult {
    let r = decoupling::Privacypass::run(&decoupling::PrivacypassConfig::new(1, 2), seed);
    let coll = entity_collusion(&r.world, r.users[0], 3);
    table_result(
        "F-2/T-3.2.1",
        "Privacy Pass",
        r.table(0),
        decoupling::privacypass::scenario::ScenarioReport::paper_table(),
        analyze(&r.world).decoupled,
        coll.min_coalition_size,
        r.mean_fetch_us,
    )
}

/// T-3.2.2 — Oblivious DNS.
pub fn exp_odns(seed: u64) -> TableResult {
    let r = decoupling::Odoh::run(&decoupling::OdohConfig::new(1, 5), seed);
    let coll = entity_collusion(&r.world, r.users[0], 3);
    table_result(
        "T-3.2.2",
        "Oblivious DNS (ODoH)",
        r.table(0),
        decoupling::odns::scenario::ScenarioReport::paper_table(),
        analyze(&r.world).decoupled,
        coll.min_coalition_size,
        r.mean_query_us,
    )
}

/// T-3.2.3 — PGPP.
pub fn exp_pgpp(seed: u64) -> TableResult {
    let config = decoupling::PgppConfig {
        mode: decoupling::pgpp::Mode::Pgpp,
        users: 6,
        cells: 3,
        epochs: 3,
        moves_per_epoch: 2,
        seed,
    };
    let r = decoupling::Pgpp::run(&config, seed);
    let coll = entity_collusion(&r.world, r.users[0], 3);
    table_result(
        "T-3.2.3",
        "Pretty Good Phone Privacy",
        r.table(0),
        decoupling::pgpp::scenario::PgppReport::paper_table(),
        analyze(&r.world).decoupled,
        coll.min_coalition_size,
        0.0,
    )
}

/// T-3.2.4 — Multi-Party Relay.
pub fn exp_mpr(seed: u64) -> TableResult {
    let config = decoupling::ChainConfig {
        relays: 2,
        users: 1,
        fetches_each: 3,
        geohint: false,
        seed,
    };
    let r = decoupling::Mpr::run(&config, seed);
    let coll = entity_collusion(&r.world, r.users[0], 4);
    table_result(
        "T-3.2.4",
        "Multi-Party Relay (2 hops)",
        r.table(0),
        decoupling::mpr::ScenarioReport::paper_table(),
        analyze(&r.world).decoupled,
        coll.min_coalition_size,
        r.mean_fetch_us,
    )
}

/// T-3.2.5 — Private aggregate statistics.
pub fn exp_ppm(seed: u64) -> TableResult {
    let config = decoupling::PpmConfig {
        clients: 10,
        bits: 8,
        malicious: 0,
        seed,
    };
    let r = decoupling::Ppm::run(&config, seed);
    let coll = entity_collusion(&r.world, r.users[0], 3);
    table_result(
        "T-3.2.5",
        "Private aggregate statistics (PPM)",
        r.table(0),
        decoupling::ppm::scenario::PpmReport::paper_table(),
        analyze(&r.world).decoupled,
        coll.min_coalition_size,
        0.0,
    )
}

/// T-3.3 — VPN cautionary tale.
pub fn exp_vpn(seed: u64) -> TableResult {
    let r = decoupling::Vpn::run(&decoupling::VpnConfig::new(1, 2), seed);
    let coll = entity_collusion(&r.world, r.users[0], 3);
    table_result(
        "T-3.3",
        "Centralized VPN (cautionary)",
        r.table(0),
        decoupling::vpn::VpnReport::paper_table(),
        analyze(&r.world).decoupled,
        coll.min_coalition_size,
        r.mean_fetch_us,
    )
}

/// All eight table reproductions.
pub fn all_tables(seed: u64) -> Vec<TableResult> {
    vec![
        exp_blindcash(seed),
        exp_mixnet(seed + 1),
        exp_privacypass(seed + 2),
        exp_odns(seed + 3),
        exp_pgpp(seed + 4),
        exp_mpr(seed + 5),
        exp_ppm(seed + 6),
        exp_vpn(seed + 7),
    ]
}

/// E-4.2 — degrees of decoupling: the cost/benefit sweep over relay
/// chains 0..=max_relays.
pub fn exp_degrees(max_relays: usize, seed: u64) -> DegreeSweep {
    let mut sweep = DegreeSweep::default();
    for k in 0..=max_relays {
        let config = match k {
            0 => "direct".to_string(),
            1 => "vpn".to_string(),
            2 => "mpr-2".to_string(),
            n => format!("chain-{n}"),
        };
        let chain = decoupling::ChainConfig {
            relays: k,
            users: 2,
            fetches_each: 3,
            geohint: false,
            seed,
        };
        let r = decoupling::Mpr::run(&chain, seed);
        let verdict = analyze(&r.world);
        let coll = entity_collusion(&r.world, r.users[0], k.max(1) + 1);
        sweep.push(DegreePoint {
            config,
            parties: k,
            decoupled: verdict.decoupled,
            min_collusion: coll.min_coalition_size,
            latency_us: r.mean_fetch_us,
            bytes_factor: r.bytes_factor,
            throughput_rps: if r.mean_fetch_us > 0.0 {
                1_000_000.0 / r.mean_fetch_us
            } else {
                0.0
            },
        });
    }
    sweep
}

/// One row of the E-4.3 traffic-analysis sweep.
#[derive(Clone, Debug, Serialize)]
pub struct TrafficRow {
    /// Mix batch threshold.
    pub batch_size: usize,
    /// Timing-correlation attack accuracy (mean over seeds).
    pub attack_accuracy: f64,
    /// Random-guess baseline.
    pub random_baseline: f64,
    /// Mean final-hop anonymity-set size.
    pub anonymity_set: f64,
    /// Mean message latency (µs).
    pub latency_us: f64,
}

/// E-4.3 — the batching/anonymity/latency tradeoff.
pub fn exp_traffic(batch_sizes: &[usize], seeds: u64, base_seed: u64) -> Vec<TrafficRow> {
    batch_sizes
        .iter()
        .map(|&batch_size| {
            let mut acc = 0.0;
            let mut base = 0.0;
            let mut anon = 0.0;
            let mut lat = 0.0;
            for s in 0..seeds {
                let config = decoupling::MixnetConfig {
                    senders: 10,
                    mixes: 2,
                    batch_size,
                    window_us: 400_000,
                    shuffle: true,
                    chaff_per_sender: 0,
                    mix_max_wait_us: None,
                    seed: base_seed + s,
                };
                let r = decoupling::Mixnet::run(&config, base_seed + s);
                acc += r.attack.accuracy;
                base += r.attack.random_baseline;
                anon += r.mean_anonymity_set;
                lat += r.mean_latency_us;
            }
            let n = seeds as f64;
            TrafficRow {
                batch_size,
                attack_accuracy: acc / n,
                random_baseline: base / n,
                anonymity_set: anon / n,
                latency_us: lat / n,
            }
        })
        .collect()
}

/// One row of the E-4.3 chaff sweep.
#[derive(Clone, Debug, Serialize)]
pub struct ChaffRow {
    /// Decoys per sender.
    pub chaff_per_sender: usize,
    /// Timing-correlation accuracy (mean over seeds).
    pub attack_accuracy: f64,
    /// Total wire bytes relative to the chaff-free run.
    pub bandwidth_factor: f64,
}

/// E-4.3 (chaff axis) — cover traffic vs. the correlation attacker.
pub fn exp_chaff(levels: &[usize], seeds: u64, base_seed: u64) -> Vec<ChaffRow> {
    // Timed-mix configuration: high threshold + short deadline, so each
    // flush round carries whatever arrived in the last 40 ms — chaff's
    // natural pairing.
    let run_cfg = |chaff: usize, seed: u64| {
        let config = decoupling::MixnetConfig {
            senders: 8,
            mixes: 2,
            batch_size: 1000,
            window_us: 400_000,
            shuffle: true,
            chaff_per_sender: chaff,
            mix_max_wait_us: Some(40_000),
            seed,
        };
        decoupling::Mixnet::run(&config, seed)
    };
    let base_bytes: usize = (0..seeds)
        .map(|s| run_cfg(0, base_seed + s).trace.total_bytes())
        .sum();
    levels
        .iter()
        .map(|&chaff| {
            let mut acc = 0.0;
            let mut bytes = 0usize;
            for s in 0..seeds {
                let r = run_cfg(chaff, base_seed + s);
                acc += r.attack.accuracy;
                bytes += r.trace.total_bytes();
            }
            ChaffRow {
                chaff_per_sender: chaff,
                attack_accuracy: acc / seeds as f64,
                bandwidth_factor: bytes as f64 / base_bytes as f64,
            }
        })
        .collect()
}

/// Circuit amortization data point (the Tor-shaped §4.2 operating mode).
#[derive(Clone, Debug, Serialize)]
pub struct CircuitRow {
    /// Hops in the circuit.
    pub hops: usize,
    /// First exchange including circuit build (µs).
    pub first_exchange_us: f64,
    /// Steady-state exchange (µs).
    pub steady_exchange_us: f64,
}

/// Session circuits: build-once, use-many amortization by hop count.
pub fn exp_circuits(max_hops: usize, seed: u64) -> Vec<CircuitRow> {
    (1..=max_hops)
        .map(|hops| {
            let r = decoupling::mixnet::circuit_scenario::run_circuit(hops, 5, seed);
            CircuitRow {
                hops,
                first_exchange_us: r.first_exchange_us,
                steady_exchange_us: r.steady_exchange_us,
            }
        })
        .collect()
}

/// One row of the E-5.1 striping sweep.
#[derive(Clone, Debug, Serialize)]
pub struct StripingRow {
    /// Number of resolvers queries are striped across.
    pub resolvers: usize,
    /// Largest fraction of distinct names any single resolver saw.
    pub max_view_fraction: f64,
    /// Mean fraction across resolvers.
    pub mean_view_fraction: f64,
}

/// E-5.1 — DNS query striping.
pub fn exp_striping(resolver_counts: &[usize], seed: u64) -> Vec<StripingRow> {
    resolver_counts
        .iter()
        .map(|&r| {
            let rep = decoupling::DirectDns::run(&decoupling::DirectDnsConfig::new(4, 50, r), seed);
            let total = rep.distinct_names.max(1) as f64;
            let max = *rep.resolver_views.iter().max().unwrap_or(&0) as f64;
            let mean =
                rep.resolver_views.iter().sum::<usize>() as f64 / rep.resolver_views.len() as f64;
            StripingRow {
                resolvers: r,
                max_view_fraction: max / total,
                mean_view_fraction: mean / total,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_table_matches_the_paper() {
        for t in all_tables(9000) {
            assert!(t.matches, "{}: measured {:?}", t.id, t.measured);
        }
    }

    #[test]
    fn degrees_sweep_has_the_right_shape() {
        let sweep = exp_degrees(4, 9100);
        sweep.check_shape().expect("shape");
    }
}

// ------------------------------------------------------------- E-OBS ----

/// One instrumented (calm) run of every §3 scenario, yielding the
/// per-scenario [`dcp_core::MetricsReport`] artifacts that the
/// `experiments` binary drops under `out/metrics/`.
pub fn exp_metrics(seed: u64) -> Vec<dcp_core::MetricsReport> {
    use decoupling::ScenarioReport as _;
    let mixnet = decoupling::MixnetConfig {
        senders: 8,
        mixes: 2,
        batch_size: 4,
        window_us: 200_000,
        shuffle: true,
        chaff_per_sender: 0,
        mix_max_wait_us: None,
        seed,
    };
    let pgpp = decoupling::PgppConfig {
        mode: decoupling::pgpp::Mode::Pgpp,
        users: 4,
        cells: 2,
        epochs: 2,
        moves_per_epoch: 2,
        seed,
    };
    let mpr = decoupling::ChainConfig {
        relays: 2,
        users: 2,
        fetches_each: 2,
        geohint: false,
        seed,
    };
    let ppm = decoupling::PpmConfig {
        clients: 4,
        bits: 8,
        malicious: 0,
        seed,
    };
    vec![
        decoupling::Blindcash::run_instrumented(&decoupling::BlindcashConfig::new(1, 2, 512), seed)
            .metrics()
            .clone(),
        decoupling::Mixnet::run_instrumented(&mixnet, seed)
            .metrics()
            .clone(),
        decoupling::Privacypass::run_instrumented(&decoupling::PrivacypassConfig::new(1, 2), seed)
            .metrics()
            .clone(),
        decoupling::Odoh::run_instrumented(&decoupling::OdohConfig::new(1, 5), seed)
            .metrics()
            .clone(),
        decoupling::Pgpp::run_instrumented(&pgpp, seed)
            .metrics()
            .clone(),
        decoupling::Mpr::run_instrumented(&mpr, seed)
            .metrics()
            .clone(),
        decoupling::Ppm::run_instrumented(&ppm, seed)
            .metrics()
            .clone(),
        decoupling::Vpn::run_instrumented(&decoupling::VpnConfig::new(1, 2), seed)
            .metrics()
            .clone(),
    ]
}

/// One point on the relays-vs-latency curve, measured from span records
/// rather than scenario-internal bookkeeping.
#[derive(Clone, Debug, Serialize)]
pub struct RelayLatencyRow {
    /// Which chain is being lengthened ("mpr" or "mixnet").
    pub scenario: String,
    /// Hop count: MPR relays or mix-net mixes.
    pub relays: usize,
    /// Mean end-to-end span duration (µs) at this hop count.
    pub mean_latency_us: f64,
    /// Wire load at this hop count.
    pub messages_sent: u64,
    /// Bytes offered to the wire at this hop count.
    pub bytes_sent: u64,
    /// Total crypto operations (seals, opens, blinds, …).
    pub crypto_ops: u64,
}

/// E-OBS-1 — relays vs latency, from the metrics layer: each added hop
/// buys decoupling (§4.2) and costs propagation plus crypto. Sweeps the
/// MPR chain over `0..=max_relays` and the mix-net over 1–3 mixes.
pub fn exp_relay_latency(max_relays: usize, seed: u64) -> Vec<RelayLatencyRow> {
    use decoupling::ScenarioReport as _;
    let mut rows = Vec::new();
    for relays in 0..=max_relays {
        let chain = decoupling::ChainConfig {
            relays,
            users: 2,
            fetches_each: 2,
            geohint: false,
            seed,
        };
        let m = decoupling::Mpr::run_instrumented(&chain, seed)
            .metrics()
            .clone();
        rows.push(RelayLatencyRow {
            scenario: "mpr".into(),
            relays,
            mean_latency_us: m.mean_span_us("fetch").unwrap_or(0.0),
            messages_sent: m.messages_sent,
            bytes_sent: m.bytes_sent,
            crypto_ops: m.crypto_total(),
        });
    }
    for mixes in 1..=3 {
        let config = decoupling::MixnetConfig {
            senders: 6,
            mixes,
            batch_size: 3,
            window_us: 100_000,
            shuffle: true,
            chaff_per_sender: 0,
            mix_max_wait_us: None,
            seed,
        };
        let m = decoupling::Mixnet::run_instrumented(&config, seed)
            .metrics()
            .clone();
        rows.push(RelayLatencyRow {
            scenario: "mixnet".into(),
            relays: mixes,
            mean_latency_us: m.mean_span_us("e2e").unwrap_or(0.0),
            messages_sent: m.messages_sent,
            bytes_sent: m.bytes_sent,
            crypto_ops: m.crypto_total(),
        });
    }
    rows
}

/// One point on the padding-cost curve: chaff level vs measured wire
/// bytes, from the simulator's own accounting.
#[derive(Clone, Debug, Serialize)]
pub struct PaddingCostRow {
    /// Decoy messages injected per real sender.
    pub chaff_per_sender: usize,
    /// Bytes offered to the wire (real + chaff).
    pub bytes_sent: u64,
    /// Messages offered to the wire.
    pub messages_sent: u64,
    /// Bytes relative to the zero-chaff baseline.
    pub bytes_factor: f64,
    /// Mean end-to-end latency for *real* traffic (µs).
    pub mean_e2e_us: f64,
}

/// E-OBS-2 — the §4.3 padding cost, measured at the wire: cover traffic
/// multiplies bytes sent while real-traffic latency stays flat.
pub fn exp_padding_cost(levels: &[usize], seed: u64) -> Vec<PaddingCostRow> {
    use decoupling::ScenarioReport as _;
    let mut rows: Vec<PaddingCostRow> = Vec::new();
    for &chaff in levels {
        let config = decoupling::MixnetConfig {
            senders: 6,
            mixes: 2,
            batch_size: 3,
            window_us: 100_000,
            shuffle: true,
            chaff_per_sender: chaff,
            mix_max_wait_us: None,
            seed,
        };
        let m = decoupling::Mixnet::run_instrumented(&config, seed)
            .metrics()
            .clone();
        let base = rows.first().map_or(m.bytes_sent, |r| r.bytes_sent);
        rows.push(PaddingCostRow {
            chaff_per_sender: chaff,
            bytes_sent: m.bytes_sent,
            messages_sent: m.messages_sent,
            bytes_factor: m.bytes_sent as f64 / base.max(1) as f64,
            mean_e2e_us: m.mean_span_us("e2e").unwrap_or(0.0),
        });
    }
    rows
}
