//! Experiment runners shared by the `experiments` harness binary and the
//! Criterion benches. Each public function regenerates one paper artifact
//! (see DESIGN.md §5 for the experiment index).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use dcp_core::degrees::{DegreePoint, DegreeSweep};
use dcp_core::table::DecouplingTable;
use dcp_core::{analyze, collusion::entity_collusion};
use serde::Serialize;

/// One reproduced table: experiment id, measured and paper versions.
#[derive(Clone, Debug, Serialize)]
pub struct TableResult {
    /// Experiment id (e.g. "T-3.1.1").
    pub id: String,
    /// Human name.
    pub name: String,
    /// Table derived from the simulation.
    pub measured: DecouplingTable,
    /// The paper's table.
    pub paper: DecouplingTable,
    /// Do they match?
    pub matches: bool,
    /// §2.4 verdict of the run.
    pub decoupled: bool,
    /// Minimal re-coupling coalition size (None = uncouplable).
    pub min_collusion: Option<usize>,
    /// A headline performance figure for the run (µs).
    pub latency_us: f64,
}

fn table_result(
    id: &str,
    name: &str,
    measured: DecouplingTable,
    paper: DecouplingTable,
    decoupled: bool,
    min_collusion: Option<usize>,
    latency_us: f64,
) -> TableResult {
    let matches = measured == paper;
    TableResult {
        id: id.into(),
        name: name.into(),
        measured,
        paper,
        matches,
        decoupled,
        min_collusion,
        latency_us,
    }
}

/// T-3.1.1 — blind-signature digital cash.
pub fn exp_blindcash(seed: u64) -> TableResult {
    let r = decoupling::blindcash::scenario::run(1, 2, 512, seed);
    let coll = entity_collusion(&r.world, r.buyers[0], 3);
    table_result(
        "T-3.1.1",
        "Blind-signature digital cash",
        r.table(0),
        decoupling::blindcash::scenario::ScenarioReport::paper_table(),
        analyze(&r.world).decoupled,
        coll.min_coalition_size,
        r.mean_cycle_us,
    )
}

/// F-1 / T-3.1.2 — mix-net.
pub fn exp_mixnet(seed: u64) -> TableResult {
    let r = decoupling::mixnet::scenario::run(decoupling::mixnet::scenario::MixnetConfig {
        senders: 8,
        mixes: 2,
        batch_size: 4,
        window_us: 200_000,
        shuffle: true,
        chaff_per_sender: 0,
        mix_max_wait_us: None,
        seed,
    });
    let coll = entity_collusion(&r.world, r.users[0], 3);
    table_result(
        "F-1/T-3.1.2",
        "Chaum mix-net (2 mixes)",
        r.table(0),
        decoupling::mixnet::scenario::MixnetReport::paper_table_two_mixes(),
        analyze(&r.world).decoupled,
        coll.min_coalition_size,
        r.mean_latency_us,
    )
}

/// F-2 / T-3.2.1 — Privacy Pass.
pub fn exp_privacypass(seed: u64) -> TableResult {
    let r = decoupling::privacypass::scenario::run(1, 2, seed);
    let coll = entity_collusion(&r.world, r.users[0], 3);
    table_result(
        "F-2/T-3.2.1",
        "Privacy Pass",
        r.table(0),
        decoupling::privacypass::scenario::ScenarioReport::paper_table(),
        analyze(&r.world).decoupled,
        coll.min_coalition_size,
        r.mean_fetch_us,
    )
}

/// T-3.2.2 — Oblivious DNS.
pub fn exp_odns(seed: u64) -> TableResult {
    let r = decoupling::odns::scenario::run_odoh(1, 5, seed);
    let coll = entity_collusion(&r.world, r.users[0], 3);
    table_result(
        "T-3.2.2",
        "Oblivious DNS (ODoH)",
        r.table(0),
        decoupling::odns::scenario::ScenarioReport::paper_table(),
        analyze(&r.world).decoupled,
        coll.min_coalition_size,
        r.mean_query_us,
    )
}

/// T-3.2.3 — PGPP.
pub fn exp_pgpp(seed: u64) -> TableResult {
    let r = decoupling::pgpp::scenario::run(decoupling::pgpp::scenario::PgppConfig {
        mode: decoupling::pgpp::scenario::Mode::Pgpp,
        users: 6,
        cells: 3,
        epochs: 3,
        moves_per_epoch: 2,
        seed,
    });
    let coll = entity_collusion(&r.world, r.users[0], 3);
    table_result(
        "T-3.2.3",
        "Pretty Good Phone Privacy",
        r.table(0),
        decoupling::pgpp::scenario::PgppReport::paper_table(),
        analyze(&r.world).decoupled,
        coll.min_coalition_size,
        0.0,
    )
}

/// T-3.2.4 — Multi-Party Relay.
pub fn exp_mpr(seed: u64) -> TableResult {
    let r = decoupling::mpr::run_chain(decoupling::mpr::ChainConfig {
        relays: 2,
        users: 1,
        fetches_each: 3,
        geohint: false,
        seed,
    });
    let coll = entity_collusion(&r.world, r.users[0], 4);
    table_result(
        "T-3.2.4",
        "Multi-Party Relay (2 hops)",
        r.table(0),
        decoupling::mpr::ScenarioReport::paper_table(),
        analyze(&r.world).decoupled,
        coll.min_coalition_size,
        r.mean_fetch_us,
    )
}

/// T-3.2.5 — Private aggregate statistics.
pub fn exp_ppm(seed: u64) -> TableResult {
    let r = decoupling::ppm::scenario::run(decoupling::ppm::scenario::PpmConfig {
        clients: 10,
        bits: 8,
        malicious: 0,
        seed,
    });
    let coll = entity_collusion(&r.world, r.users[0], 3);
    table_result(
        "T-3.2.5",
        "Private aggregate statistics (PPM)",
        r.table(0),
        decoupling::ppm::scenario::PpmReport::paper_table(),
        analyze(&r.world).decoupled,
        coll.min_coalition_size,
        0.0,
    )
}

/// T-3.3 — VPN cautionary tale.
pub fn exp_vpn(seed: u64) -> TableResult {
    let r = decoupling::vpn::run_vpn(1, 2, seed);
    let coll = entity_collusion(&r.world, r.users[0], 3);
    table_result(
        "T-3.3",
        "Centralized VPN (cautionary)",
        r.table(0),
        decoupling::vpn::VpnReport::paper_table(),
        analyze(&r.world).decoupled,
        coll.min_coalition_size,
        r.mean_fetch_us,
    )
}

/// All eight table reproductions.
pub fn all_tables(seed: u64) -> Vec<TableResult> {
    vec![
        exp_blindcash(seed),
        exp_mixnet(seed + 1),
        exp_privacypass(seed + 2),
        exp_odns(seed + 3),
        exp_pgpp(seed + 4),
        exp_mpr(seed + 5),
        exp_ppm(seed + 6),
        exp_vpn(seed + 7),
    ]
}

/// E-4.2 — degrees of decoupling: the cost/benefit sweep over relay
/// chains 0..=max_relays.
pub fn exp_degrees(max_relays: usize, seed: u64) -> DegreeSweep {
    let mut sweep = DegreeSweep::default();
    for k in 0..=max_relays {
        let config = match k {
            0 => "direct".to_string(),
            1 => "vpn".to_string(),
            2 => "mpr-2".to_string(),
            n => format!("chain-{n}"),
        };
        let r = decoupling::mpr::run_chain(decoupling::mpr::ChainConfig {
            relays: k,
            users: 2,
            fetches_each: 3,
            geohint: false,
            seed,
        });
        let verdict = analyze(&r.world);
        let coll = entity_collusion(&r.world, r.users[0], k.max(1) + 1);
        sweep.push(DegreePoint {
            config,
            parties: k,
            decoupled: verdict.decoupled,
            min_collusion: coll.min_coalition_size,
            latency_us: r.mean_fetch_us,
            bytes_factor: r.bytes_factor,
            throughput_rps: if r.mean_fetch_us > 0.0 {
                1_000_000.0 / r.mean_fetch_us
            } else {
                0.0
            },
        });
    }
    sweep
}

/// One row of the E-4.3 traffic-analysis sweep.
#[derive(Clone, Debug, Serialize)]
pub struct TrafficRow {
    /// Mix batch threshold.
    pub batch_size: usize,
    /// Timing-correlation attack accuracy (mean over seeds).
    pub attack_accuracy: f64,
    /// Random-guess baseline.
    pub random_baseline: f64,
    /// Mean final-hop anonymity-set size.
    pub anonymity_set: f64,
    /// Mean message latency (µs).
    pub latency_us: f64,
}

/// E-4.3 — the batching/anonymity/latency tradeoff.
pub fn exp_traffic(batch_sizes: &[usize], seeds: u64, base_seed: u64) -> Vec<TrafficRow> {
    batch_sizes
        .iter()
        .map(|&batch_size| {
            let mut acc = 0.0;
            let mut base = 0.0;
            let mut anon = 0.0;
            let mut lat = 0.0;
            for s in 0..seeds {
                let r =
                    decoupling::mixnet::scenario::run(decoupling::mixnet::scenario::MixnetConfig {
                        senders: 10,
                        mixes: 2,
                        batch_size,
                        window_us: 400_000,
                        shuffle: true,
                        chaff_per_sender: 0,
                        mix_max_wait_us: None,
                        seed: base_seed + s,
                    });
                acc += r.attack.accuracy;
                base += r.attack.random_baseline;
                anon += r.mean_anonymity_set;
                lat += r.mean_latency_us;
            }
            let n = seeds as f64;
            TrafficRow {
                batch_size,
                attack_accuracy: acc / n,
                random_baseline: base / n,
                anonymity_set: anon / n,
                latency_us: lat / n,
            }
        })
        .collect()
}

/// One row of the E-4.3 chaff sweep.
#[derive(Clone, Debug, Serialize)]
pub struct ChaffRow {
    /// Decoys per sender.
    pub chaff_per_sender: usize,
    /// Timing-correlation accuracy (mean over seeds).
    pub attack_accuracy: f64,
    /// Total wire bytes relative to the chaff-free run.
    pub bandwidth_factor: f64,
}

/// E-4.3 (chaff axis) — cover traffic vs. the correlation attacker.
pub fn exp_chaff(levels: &[usize], seeds: u64, base_seed: u64) -> Vec<ChaffRow> {
    // Timed-mix configuration: high threshold + short deadline, so each
    // flush round carries whatever arrived in the last 40 ms — chaff's
    // natural pairing.
    let run_cfg = |chaff: usize, seed: u64| {
        decoupling::mixnet::scenario::run(decoupling::mixnet::scenario::MixnetConfig {
            senders: 8,
            mixes: 2,
            batch_size: 1000,
            window_us: 400_000,
            shuffle: true,
            chaff_per_sender: chaff,
            mix_max_wait_us: Some(40_000),
            seed,
        })
    };
    let base_bytes: usize = (0..seeds)
        .map(|s| run_cfg(0, base_seed + s).trace.total_bytes())
        .sum();
    levels
        .iter()
        .map(|&chaff| {
            let mut acc = 0.0;
            let mut bytes = 0usize;
            for s in 0..seeds {
                let r = run_cfg(chaff, base_seed + s);
                acc += r.attack.accuracy;
                bytes += r.trace.total_bytes();
            }
            ChaffRow {
                chaff_per_sender: chaff,
                attack_accuracy: acc / seeds as f64,
                bandwidth_factor: bytes as f64 / base_bytes as f64,
            }
        })
        .collect()
}

/// Circuit amortization data point (the Tor-shaped §4.2 operating mode).
#[derive(Clone, Debug, Serialize)]
pub struct CircuitRow {
    /// Hops in the circuit.
    pub hops: usize,
    /// First exchange including circuit build (µs).
    pub first_exchange_us: f64,
    /// Steady-state exchange (µs).
    pub steady_exchange_us: f64,
}

/// Session circuits: build-once, use-many amortization by hop count.
pub fn exp_circuits(max_hops: usize, seed: u64) -> Vec<CircuitRow> {
    (1..=max_hops)
        .map(|hops| {
            let r = decoupling::mixnet::circuit_scenario::run_circuit(hops, 5, seed);
            CircuitRow {
                hops,
                first_exchange_us: r.first_exchange_us,
                steady_exchange_us: r.steady_exchange_us,
            }
        })
        .collect()
}

/// One row of the E-5.1 striping sweep.
#[derive(Clone, Debug, Serialize)]
pub struct StripingRow {
    /// Number of resolvers queries are striped across.
    pub resolvers: usize,
    /// Largest fraction of distinct names any single resolver saw.
    pub max_view_fraction: f64,
    /// Mean fraction across resolvers.
    pub mean_view_fraction: f64,
}

/// E-5.1 — DNS query striping.
pub fn exp_striping(resolver_counts: &[usize], seed: u64) -> Vec<StripingRow> {
    resolver_counts
        .iter()
        .map(|&r| {
            let rep = decoupling::odns::scenario::run_direct(4, 50, r, seed);
            let total = rep.distinct_names.max(1) as f64;
            let max = *rep.resolver_views.iter().max().unwrap_or(&0) as f64;
            let mean =
                rep.resolver_views.iter().sum::<usize>() as f64 / rep.resolver_views.len() as f64;
            StripingRow {
                resolvers: r,
                max_view_fraction: max / total,
                mean_view_fraction: mean / total,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_table_matches_the_paper() {
        for t in all_tables(9000) {
            assert!(t.matches, "{}: measured {:?}", t.id, t.measured);
        }
    }

    #[test]
    fn degrees_sweep_has_the_right_shape() {
        let sweep = exp_degrees(4, 9100);
        sweep.check_shape().expect("shape");
    }
}
