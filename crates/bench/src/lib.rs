//! Experiment runners shared by the `experiments` harness binary and the
//! Criterion benches. Each public function regenerates one paper artifact
//! (see DESIGN.md §5 for the experiment index).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use dcp_core::degrees::{DegreePoint, DegreeSweep};
use dcp_core::table::DecouplingTable;
use dcp_core::{analyze, collusion::entity_collusion};
use dcp_core::{SweepBuilder, SweepExecutor};
use decoupling::{ParallelExecutor, Scenario as _};
use serde::Serialize;

/// One reproduced table: experiment id, measured and paper versions.
#[derive(Clone, Debug, Serialize)]
pub struct TableResult {
    /// Experiment id (e.g. "T-3.1.1").
    pub id: String,
    /// Human name.
    pub name: String,
    /// Table derived from the simulation.
    pub measured: DecouplingTable,
    /// The paper's table.
    pub paper: DecouplingTable,
    /// Do they match?
    pub matches: bool,
    /// §2.4 verdict of the run.
    pub decoupled: bool,
    /// Minimal re-coupling coalition size (None = uncouplable).
    pub min_collusion: Option<usize>,
    /// A headline performance figure for the run (µs).
    pub latency_us: f64,
}

fn table_result(
    id: &str,
    name: &str,
    measured: DecouplingTable,
    paper: DecouplingTable,
    decoupled: bool,
    min_collusion: Option<usize>,
    latency_us: f64,
) -> TableResult {
    let matches = measured == paper;
    TableResult {
        id: id.into(),
        name: name.into(),
        measured,
        paper,
        matches,
        decoupled,
        min_collusion,
        latency_us,
    }
}

/// T-3.1.1 — blind-signature digital cash.
pub fn exp_blindcash(seed: u64) -> TableResult {
    let r = decoupling::Blindcash::run(&decoupling::BlindcashConfig::new(1, 2, 512), seed);
    let coll = entity_collusion(&r.world, r.buyers[0], 3);
    table_result(
        "T-3.1.1",
        "Blind-signature digital cash",
        r.table(0),
        decoupling::blindcash::scenario::ScenarioReport::paper_table(),
        analyze(&r.world).decoupled,
        coll.min_coalition_size,
        r.mean_cycle_us,
    )
}

/// F-1 / T-3.1.2 — mix-net.
pub fn exp_mixnet(seed: u64) -> TableResult {
    let config = decoupling::MixnetConfig {
        senders: 8,
        mixes: 2,
        batch_size: 4,
        window_us: 200_000,
        shuffle: true,
        chaff_per_sender: 0,
        mix_max_wait_us: None,
        seed,
    };
    let r = decoupling::Mixnet::run(&config, seed);
    let coll = entity_collusion(&r.world, r.users[0], 3);
    table_result(
        "F-1/T-3.1.2",
        "Chaum mix-net (2 mixes)",
        r.table(0),
        decoupling::mixnet::scenario::MixnetReport::paper_table_two_mixes(),
        analyze(&r.world).decoupled,
        coll.min_coalition_size,
        r.mean_latency_us,
    )
}

/// F-2 / T-3.2.1 — Privacy Pass.
pub fn exp_privacypass(seed: u64) -> TableResult {
    let r = decoupling::Privacypass::run(&decoupling::PrivacypassConfig::new(1, 2), seed);
    let coll = entity_collusion(&r.world, r.users[0], 3);
    table_result(
        "F-2/T-3.2.1",
        "Privacy Pass",
        r.table(0),
        decoupling::privacypass::scenario::ScenarioReport::paper_table(),
        analyze(&r.world).decoupled,
        coll.min_coalition_size,
        r.mean_fetch_us,
    )
}

/// T-3.2.2 — Oblivious DNS.
pub fn exp_odns(seed: u64) -> TableResult {
    let r = decoupling::Odoh::run(&decoupling::OdohConfig::new(1, 5), seed);
    let coll = entity_collusion(&r.world, r.users[0], 3);
    table_result(
        "T-3.2.2",
        "Oblivious DNS (ODoH)",
        r.table(0),
        decoupling::odns::scenario::ScenarioReport::paper_table(),
        analyze(&r.world).decoupled,
        coll.min_coalition_size,
        r.mean_query_us,
    )
}

/// T-3.2.3 — PGPP.
pub fn exp_pgpp(seed: u64) -> TableResult {
    let config = decoupling::PgppConfig {
        mode: decoupling::pgpp::Mode::Pgpp,
        users: 6,
        cells: 3,
        epochs: 3,
        moves_per_epoch: 2,
        seed,
    };
    let r = decoupling::Pgpp::run(&config, seed);
    let coll = entity_collusion(&r.world, r.users[0], 3);
    table_result(
        "T-3.2.3",
        "Pretty Good Phone Privacy",
        r.table(0),
        decoupling::pgpp::scenario::PgppReport::paper_table(),
        analyze(&r.world).decoupled,
        coll.min_coalition_size,
        0.0,
    )
}

/// T-3.2.4 — Multi-Party Relay.
pub fn exp_mpr(seed: u64) -> TableResult {
    let config = decoupling::ChainConfig {
        relays: 2,
        users: 1,
        fetches_each: 3,
        geohint: false,
        seed,
    };
    let r = decoupling::Mpr::run(&config, seed);
    let coll = entity_collusion(&r.world, r.users[0], 4);
    table_result(
        "T-3.2.4",
        "Multi-Party Relay (2 hops)",
        r.table(0),
        decoupling::mpr::ScenarioReport::paper_table(),
        analyze(&r.world).decoupled,
        coll.min_coalition_size,
        r.mean_fetch_us,
    )
}

/// T-3.2.5 — Private aggregate statistics.
pub fn exp_ppm(seed: u64) -> TableResult {
    let config = decoupling::PpmConfig {
        clients: 10,
        bits: 8,
        malicious: 0,
        seed,
    };
    let r = decoupling::Ppm::run(&config, seed);
    let coll = entity_collusion(&r.world, r.users[0], 3);
    table_result(
        "T-3.2.5",
        "Private aggregate statistics (PPM)",
        r.table(0),
        decoupling::ppm::scenario::PpmReport::paper_table(),
        analyze(&r.world).decoupled,
        coll.min_coalition_size,
        0.0,
    )
}

/// T-3.3 — VPN cautionary tale.
pub fn exp_vpn(seed: u64) -> TableResult {
    let r = decoupling::Vpn::run(&decoupling::VpnConfig::new(1, 2), seed);
    let coll = entity_collusion(&r.world, r.users[0], 3);
    table_result(
        "T-3.3",
        "Centralized VPN (cautionary)",
        r.table(0),
        decoupling::vpn::VpnReport::paper_table(),
        analyze(&r.world).decoupled,
        coll.min_coalition_size,
        r.mean_fetch_us,
    )
}

/// All eight table reproductions.
pub fn all_tables(seed: u64) -> Vec<TableResult> {
    vec![
        exp_blindcash(seed),
        exp_mixnet(seed + 1),
        exp_privacypass(seed + 2),
        exp_odns(seed + 3),
        exp_pgpp(seed + 4),
        exp_mpr(seed + 5),
        exp_ppm(seed + 6),
        exp_vpn(seed + 7),
    ]
}

/// E-4.2 — degrees of decoupling: the cost/benefit sweep over relay
/// chains 0..=max_relays.
pub fn exp_degrees(max_relays: usize, seed: u64) -> DegreeSweep {
    let mut sweep = DegreeSweep::default();
    for k in 0..=max_relays {
        let config = match k {
            0 => "direct".to_string(),
            1 => "vpn".to_string(),
            2 => "mpr-2".to_string(),
            n => format!("chain-{n}"),
        };
        let chain = decoupling::ChainConfig {
            relays: k,
            users: 2,
            fetches_each: 3,
            geohint: false,
            seed,
        };
        let r = decoupling::Mpr::run(&chain, seed);
        let verdict = analyze(&r.world);
        let coll = entity_collusion(&r.world, r.users[0], k.max(1) + 1);
        sweep.push(DegreePoint {
            config,
            parties: k,
            decoupled: verdict.decoupled,
            min_collusion: coll.min_coalition_size,
            latency_us: r.mean_fetch_us,
            bytes_factor: r.bytes_factor,
            throughput_rps: if r.mean_fetch_us > 0.0 {
                1_000_000.0 / r.mean_fetch_us
            } else {
                0.0
            },
        });
    }
    sweep
}

/// One row of the E-4.3 traffic-analysis sweep.
#[derive(Clone, Debug, Serialize)]
pub struct TrafficRow {
    /// Mix batch threshold.
    pub batch_size: usize,
    /// Timing-correlation attack accuracy (mean over seeds).
    pub attack_accuracy: f64,
    /// Random-guess baseline.
    pub random_baseline: f64,
    /// Mean final-hop anonymity-set size.
    pub anonymity_set: f64,
    /// Mean message latency (µs).
    pub latency_us: f64,
}

/// E-4.3 — the batching/anonymity/latency tradeoff (parallel; see
/// [`exp_traffic_on`]).
pub fn exp_traffic(batch_sizes: &[usize], seeds: u64, base_seed: u64) -> Vec<TrafficRow> {
    exp_traffic_on(batch_sizes, seeds, base_seed, &ParallelExecutor::new())
}

/// [`exp_traffic`] on an explicit executor: fans the
/// `batch_sizes.len() × seeds` independent mix-net worlds across `exec`
/// (per-world seeds derived from `base_seed`), then folds each batch
/// size's rows in world-index order — the output is identical for any
/// conforming executor.
pub fn exp_traffic_on(
    batch_sizes: &[usize],
    seeds: u64,
    base_seed: u64,
    exec: &impl SweepExecutor,
) -> Vec<TrafficRow> {
    let per = seeds.max(1);
    let builder = SweepBuilder::new(base_seed).worlds(batch_sizes.len() as u64 * per);
    let run = builder.run_on(exec, |job| {
        let batch_size = batch_sizes[(job.index / per) as usize];
        let config = decoupling::MixnetConfig {
            senders: 10,
            mixes: 2,
            batch_size,
            window_us: 400_000,
            shuffle: true,
            chaff_per_sender: 0,
            mix_max_wait_us: None,
            seed: job.seed,
        };
        let r = decoupling::Mixnet::run(&config, job.seed);
        (
            r.attack.accuracy,
            r.attack.random_baseline,
            r.mean_anonymity_set,
            r.mean_latency_us,
        )
    });
    let worlds = run.into_results();
    batch_sizes
        .iter()
        .enumerate()
        .map(|(bi, &batch_size)| {
            let chunk = &worlds[bi * per as usize..(bi + 1) * per as usize];
            let n = per as f64;
            TrafficRow {
                batch_size,
                attack_accuracy: chunk.iter().map(|w| w.0).sum::<f64>() / n,
                random_baseline: chunk.iter().map(|w| w.1).sum::<f64>() / n,
                anonymity_set: chunk.iter().map(|w| w.2).sum::<f64>() / n,
                latency_us: chunk.iter().map(|w| w.3).sum::<f64>() / n,
            }
        })
        .collect()
}

/// One row of the fleet degrees-of-decoupling sweep: the §4.2
/// cost/benefit question asked of the *directory layer* — what does a
/// bigger relay fleet buy (selection entropy, churn absorption) and what
/// does it cost (latency under rotation + churn)?
#[derive(Clone, Debug, Serialize)]
pub struct FleetRow {
    /// Advertised relay pool size the directory selects from.
    pub pool: u16,
    /// Timing-correlation accuracy under churn (mean over seeds).
    pub attack_accuracy: f64,
    /// Mean final-hop anonymity-set size under churn.
    pub anonymity_set: f64,
    /// Mean message latency, calm fleet-enabled run (µs).
    pub calm_latency_us: f64,
    /// Mean message latency under `harsh_fleet` churn (µs).
    pub churn_latency_us: f64,
    /// Mean key rotations performed across the fleet per run.
    pub rotations: f64,
    /// Fraction of expected work units completed under churn (the DST
    /// completion bar demands 1.0; reported, not asserted, here).
    pub completed: f64,
}

/// Fleet sweep — directory-selected mix-nets at several pool sizes, each
/// run calm and under `harsh_fleet` (parallel; see [`exp_fleet_on`]).
pub fn exp_fleet(pools: &[u16], seeds: u64, base_seed: u64) -> Vec<FleetRow> {
    exp_fleet_on(pools, seeds, base_seed, &ParallelExecutor::new())
}

/// [`exp_fleet`] on an explicit executor: `pools.len() × seeds`
/// independent worlds, each a calm + churn pair at the same derived
/// seed, folded in world-index order.
pub fn exp_fleet_on(
    pools: &[u16],
    seeds: u64,
    base_seed: u64,
    exec: &impl SweepExecutor,
) -> Vec<FleetRow> {
    use decoupling::core::ScenarioReport as _;
    let per = seeds.max(1);
    let builder = SweepBuilder::new(base_seed).worlds(pools.len() as u64 * per);
    let run = builder.run_on(exec, |job| {
        let pool = pools[(job.index / per) as usize];
        let config = decoupling::MixnetConfig {
            senders: 8,
            mixes: 2,
            batch_size: 2,
            window_us: 100_000,
            shuffle: true,
            chaff_per_sender: 0,
            mix_max_wait_us: Some(50_000),
            seed: job.seed,
        };
        let fleet = decoupling::FleetConfig::standard().pool(pool);
        let calm = decoupling::Mixnet::run_with(
            &config,
            job.seed,
            &decoupling::RunOptions::recovered(&decoupling::FaultConfig::calm()).with_fleet(&fleet),
        );
        let churn = decoupling::Mixnet::run_with(
            &config,
            job.seed,
            &decoupling::RunOptions::recovered(&decoupling::FaultConfig::harsh_fleet())
                .with_fleet(&fleet),
        );
        let expected = churn.expected_units().unwrap_or(1).max(1) as f64;
        (
            churn.attack.accuracy,
            churn.mean_anonymity_set,
            calm.mean_latency_us,
            churn.mean_latency_us,
            churn.fleet.stats.rotations as f64,
            churn.delivered as f64 / expected,
        )
    });
    let worlds = run.into_results();
    pools
        .iter()
        .enumerate()
        .map(|(pi, &pool)| {
            let chunk = &worlds[pi * per as usize..(pi + 1) * per as usize];
            let n = per as f64;
            FleetRow {
                pool,
                attack_accuracy: chunk.iter().map(|w| w.0).sum::<f64>() / n,
                anonymity_set: chunk.iter().map(|w| w.1).sum::<f64>() / n,
                calm_latency_us: chunk.iter().map(|w| w.2).sum::<f64>() / n,
                churn_latency_us: chunk.iter().map(|w| w.3).sum::<f64>() / n,
                rotations: chunk.iter().map(|w| w.4).sum::<f64>() / n,
                completed: chunk.iter().map(|w| w.5).sum::<f64>() / n,
            }
        })
        .collect()
}

/// One row of the E-4.3 chaff sweep.
#[derive(Clone, Debug, Serialize)]
pub struct ChaffRow {
    /// Decoys per sender.
    pub chaff_per_sender: usize,
    /// Timing-correlation accuracy (mean over seeds).
    pub attack_accuracy: f64,
    /// Total wire bytes relative to the chaff-free run.
    pub bandwidth_factor: f64,
}

/// E-4.3 (chaff axis) — cover traffic vs. the correlation attacker
/// (parallel; see [`exp_chaff_on`]).
pub fn exp_chaff(levels: &[usize], seeds: u64, base_seed: u64) -> Vec<ChaffRow> {
    exp_chaff_on(levels, seeds, base_seed, &ParallelExecutor::new())
}

/// [`exp_chaff`] on an explicit executor. World 0‥seeds is the
/// zero-chaff bandwidth baseline, then `seeds` worlds per level; every
/// world is independent, and the bandwidth factors are computed in a
/// final index-ordered fold.
pub fn exp_chaff_on(
    levels: &[usize],
    seeds: u64,
    base_seed: u64,
    exec: &impl SweepExecutor,
) -> Vec<ChaffRow> {
    // Timed-mix configuration: high threshold + short deadline, so each
    // flush round carries whatever arrived in the last 40 ms — chaff's
    // natural pairing.
    let run_cfg = |chaff: usize, seed: u64| {
        let config = decoupling::MixnetConfig {
            senders: 8,
            mixes: 2,
            batch_size: 1000,
            window_us: 400_000,
            shuffle: true,
            chaff_per_sender: chaff,
            mix_max_wait_us: Some(40_000),
            seed,
        };
        decoupling::Mixnet::run(&config, seed)
    };
    // Chunk 0 is the zero-chaff baseline; chunk i+1 is levels[i].
    let chunks: Vec<usize> = std::iter::once(0).chain(levels.iter().copied()).collect();
    let per = seeds.max(1);
    let builder = SweepBuilder::new(base_seed).worlds(chunks.len() as u64 * per);
    let run = builder.run_on(exec, |job| {
        let chaff = chunks[(job.index / per) as usize];
        let r = run_cfg(chaff, job.seed);
        (r.attack.accuracy, r.trace.total_bytes())
    });
    let worlds = run.into_results();
    let base_bytes: usize = worlds[..per as usize].iter().map(|w| w.1).sum();
    levels
        .iter()
        .enumerate()
        .map(|(li, &chaff)| {
            let chunk = &worlds[(li + 1) * per as usize..(li + 2) * per as usize];
            ChaffRow {
                chaff_per_sender: chaff,
                attack_accuracy: chunk.iter().map(|w| w.0).sum::<f64>() / per as f64,
                bandwidth_factor: chunk.iter().map(|w| w.1).sum::<usize>() as f64
                    / base_bytes as f64,
            }
        })
        .collect()
}

/// Circuit amortization data point (the Tor-shaped §4.2 operating mode).
#[derive(Clone, Debug, Serialize)]
pub struct CircuitRow {
    /// Hops in the circuit.
    pub hops: usize,
    /// First exchange including circuit build (µs).
    pub first_exchange_us: f64,
    /// Steady-state exchange (µs).
    pub steady_exchange_us: f64,
}

/// Session circuits: build-once, use-many amortization by hop count.
pub fn exp_circuits(max_hops: usize, seed: u64) -> Vec<CircuitRow> {
    (1..=max_hops)
        .map(|hops| {
            let r = decoupling::mixnet::circuit_scenario::run_circuit(hops, 5, seed);
            CircuitRow {
                hops,
                first_exchange_us: r.first_exchange_us,
                steady_exchange_us: r.steady_exchange_us,
            }
        })
        .collect()
}

/// One row of the E-5.1 striping sweep.
#[derive(Clone, Debug, Serialize)]
pub struct StripingRow {
    /// Number of resolvers queries are striped across.
    pub resolvers: usize,
    /// Largest fraction of distinct names any single resolver saw.
    pub max_view_fraction: f64,
    /// Mean fraction across resolvers.
    pub mean_view_fraction: f64,
}

/// E-5.1 — DNS query striping.
pub fn exp_striping(resolver_counts: &[usize], seed: u64) -> Vec<StripingRow> {
    resolver_counts
        .iter()
        .map(|&r| {
            let rep = decoupling::DirectDns::run(&decoupling::DirectDnsConfig::new(4, 50, r), seed);
            let total = rep.distinct_names.max(1) as f64;
            let max = *rep.resolver_views.iter().max().unwrap_or(&0) as f64;
            let mean =
                rep.resolver_views.iter().sum::<usize>() as f64 / rep.resolver_views.len() as f64;
            StripingRow {
                resolvers: r,
                max_view_fraction: max / total,
                mean_view_fraction: mean / total,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_table_matches_the_paper() {
        for t in all_tables(9000) {
            assert!(t.matches, "{}: measured {:?}", t.id, t.measured);
        }
    }

    #[test]
    fn degrees_sweep_has_the_right_shape() {
        let sweep = exp_degrees(4, 9100);
        sweep.check_shape().expect("shape");
    }
}

// ------------------------------------------------------------- E-OBS ----

/// One instrumented (calm) run of every §3 scenario, yielding the
/// per-scenario [`dcp_core::MetricsReport`] artifacts that the
/// `experiments` binary drops under `out/metrics/` (parallel; see
/// [`exp_metrics_on`]).
pub fn exp_metrics(seed: u64) -> Vec<dcp_core::MetricsReport> {
    exp_metrics_on(seed, &ParallelExecutor::new())
}

/// [`exp_metrics`] on an explicit executor: the eight instrumented
/// scenario runs are independent worlds, fanned across `exec` and
/// gathered in scenario order. Every run keeps the same fixed `seed` the
/// sequential version used, so the artifacts are unchanged.
pub fn exp_metrics_on(seed: u64, exec: &impl SweepExecutor) -> Vec<dcp_core::MetricsReport> {
    use decoupling::ScenarioReport as _;
    let mixnet = decoupling::MixnetConfig {
        senders: 8,
        mixes: 2,
        batch_size: 4,
        window_us: 200_000,
        shuffle: true,
        chaff_per_sender: 0,
        mix_max_wait_us: None,
        seed,
    };
    let pgpp = decoupling::PgppConfig {
        mode: decoupling::pgpp::Mode::Pgpp,
        users: 4,
        cells: 2,
        epochs: 2,
        moves_per_epoch: 2,
        seed,
    };
    let mpr = decoupling::ChainConfig {
        relays: 2,
        users: 2,
        fetches_each: 2,
        geohint: false,
        seed,
    };
    let ppm = decoupling::PpmConfig {
        clients: 4,
        bits: 8,
        malicious: 0,
        seed,
    };
    let builder = SweepBuilder::new(seed).worlds(8);
    builder
        .run_on(exec, |job| match job.index {
            0 => decoupling::Blindcash::run_instrumented(
                &decoupling::BlindcashConfig::new(1, 2, 512),
                seed,
            )
            .metrics()
            .clone(),
            1 => decoupling::Mixnet::run_instrumented(&mixnet, seed)
                .metrics()
                .clone(),
            2 => decoupling::Privacypass::run_instrumented(
                &decoupling::PrivacypassConfig::new(1, 2),
                seed,
            )
            .metrics()
            .clone(),
            3 => decoupling::Odoh::run_instrumented(&decoupling::OdohConfig::new(1, 5), seed)
                .metrics()
                .clone(),
            4 => decoupling::Pgpp::run_instrumented(&pgpp, seed)
                .metrics()
                .clone(),
            5 => decoupling::Mpr::run_instrumented(&mpr, seed)
                .metrics()
                .clone(),
            6 => decoupling::Ppm::run_instrumented(&ppm, seed)
                .metrics()
                .clone(),
            _ => decoupling::Vpn::run_instrumented(&decoupling::VpnConfig::new(1, 2), seed)
                .metrics()
                .clone(),
        })
        .into_results()
}

/// One point on the relays-vs-latency curve, measured from span records
/// rather than scenario-internal bookkeeping.
#[derive(Clone, Debug, Serialize)]
pub struct RelayLatencyRow {
    /// Which chain is being lengthened ("mpr" or "mixnet").
    pub scenario: String,
    /// Hop count: MPR relays or mix-net mixes.
    pub relays: usize,
    /// Mean end-to-end span duration (µs) at this hop count.
    pub mean_latency_us: f64,
    /// Wire load at this hop count.
    pub messages_sent: u64,
    /// Bytes offered to the wire at this hop count.
    pub bytes_sent: u64,
    /// Total crypto operations (seals, opens, blinds, …).
    pub crypto_ops: u64,
}

/// E-OBS-1 — relays vs latency, from the metrics layer: each added hop
/// buys decoupling (§4.2) and costs propagation plus crypto. Sweeps the
/// MPR chain over `0..=max_relays` and the mix-net over 1–3 mixes
/// (parallel; see [`exp_relay_latency_on`]).
pub fn exp_relay_latency(max_relays: usize, seed: u64) -> Vec<RelayLatencyRow> {
    exp_relay_latency_on(max_relays, seed, &ParallelExecutor::new())
}

/// [`exp_relay_latency`] on an explicit executor: every curve point is an
/// independent instrumented world, fanned across `exec` and gathered in
/// row order at the fixed `seed` the sequential version used.
pub fn exp_relay_latency_on(
    max_relays: usize,
    seed: u64,
    exec: &impl SweepExecutor,
) -> Vec<RelayLatencyRow> {
    use decoupling::ScenarioReport as _;
    let mpr_rows = max_relays as u64 + 1;
    let builder = SweepBuilder::new(seed).worlds(mpr_rows + 3);
    builder
        .run_on(exec, |job| {
            if job.index < mpr_rows {
                let relays = job.index as usize;
                let chain = decoupling::ChainConfig {
                    relays,
                    users: 2,
                    fetches_each: 2,
                    geohint: false,
                    seed,
                };
                let m = decoupling::Mpr::run_instrumented(&chain, seed)
                    .metrics()
                    .clone();
                RelayLatencyRow {
                    scenario: "mpr".into(),
                    relays,
                    mean_latency_us: m.mean_span_us("fetch").unwrap_or(0.0),
                    messages_sent: m.messages_sent,
                    bytes_sent: m.bytes_sent,
                    crypto_ops: m.crypto_total(),
                }
            } else {
                let mixes = (job.index - mpr_rows) as usize + 1;
                let config = decoupling::MixnetConfig {
                    senders: 6,
                    mixes,
                    batch_size: 3,
                    window_us: 100_000,
                    shuffle: true,
                    chaff_per_sender: 0,
                    mix_max_wait_us: None,
                    seed,
                };
                let m = decoupling::Mixnet::run_instrumented(&config, seed)
                    .metrics()
                    .clone();
                RelayLatencyRow {
                    scenario: "mixnet".into(),
                    relays: mixes,
                    mean_latency_us: m.mean_span_us("e2e").unwrap_or(0.0),
                    messages_sent: m.messages_sent,
                    bytes_sent: m.bytes_sent,
                    crypto_ops: m.crypto_total(),
                }
            }
        })
        .into_results()
}

/// One point on the padding-cost curve: chaff level vs measured wire
/// bytes, from the simulator's own accounting.
#[derive(Clone, Debug, Serialize)]
pub struct PaddingCostRow {
    /// Decoy messages injected per real sender.
    pub chaff_per_sender: usize,
    /// Bytes offered to the wire (real + chaff).
    pub bytes_sent: u64,
    /// Messages offered to the wire.
    pub messages_sent: u64,
    /// Bytes relative to the zero-chaff baseline.
    pub bytes_factor: f64,
    /// Mean end-to-end latency for *real* traffic (µs).
    pub mean_e2e_us: f64,
}

/// E-OBS-2 — the §4.3 padding cost, measured at the wire: cover traffic
/// multiplies bytes sent while real-traffic latency stays flat
/// (parallel; see [`exp_padding_cost_on`]).
pub fn exp_padding_cost(levels: &[usize], seed: u64) -> Vec<PaddingCostRow> {
    exp_padding_cost_on(levels, seed, &ParallelExecutor::new())
}

/// [`exp_padding_cost`] on an explicit executor: one independent world
/// per chaff level at the fixed `seed`, with the baseline-relative
/// `bytes_factor` computed afterwards in an index-ordered fold (the
/// baseline is the first level's measured bytes, as before).
pub fn exp_padding_cost_on(
    levels: &[usize],
    seed: u64,
    exec: &impl SweepExecutor,
) -> Vec<PaddingCostRow> {
    use decoupling::ScenarioReport as _;
    let builder = SweepBuilder::new(seed).worlds(levels.len() as u64);
    let run = builder.run_on(exec, |job| {
        let chaff = levels[job.index as usize];
        let config = decoupling::MixnetConfig {
            senders: 6,
            mixes: 2,
            batch_size: 3,
            window_us: 100_000,
            shuffle: true,
            chaff_per_sender: chaff,
            mix_max_wait_us: None,
            seed,
        };
        let m = decoupling::Mixnet::run_instrumented(&config, seed)
            .metrics()
            .clone();
        PaddingCostRow {
            chaff_per_sender: chaff,
            bytes_sent: m.bytes_sent,
            messages_sent: m.messages_sent,
            bytes_factor: 0.0, // baseline-relative, filled in the fold below
            mean_e2e_us: m.mean_span_us("e2e").unwrap_or(0.0),
        }
    });
    let mut rows = run.into_results();
    let base = rows.first().map_or(0, |r: &PaddingCostRow| r.bytes_sent);
    for row in &mut rows {
        row.bytes_factor = row.bytes_sent as f64 / base.max(1) as f64;
    }
    rows
}
