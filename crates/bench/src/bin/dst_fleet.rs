//! Multi-seed fleet-mode churn probe over the directory-enabled
//! wirings (mpr, mixnet) — the CI byte-identity bar for `dcp-fleet`.
//!
//! Each world runs a scenario twice at the same derived seed: a calm
//! recovered fixed-relay baseline, and a fleet-enabled run under
//! [`FaultConfig::harsh_fleet`] (relay churn, directory partitions, key
//! rotation all active). The probe asserts, per world:
//!
//! * the fleet run completes its full workload despite the churn;
//! * every directory converged on the same membership state;
//! * the rotation schedule actually fired (no vacuous pass);
//! * directory entities learned **nothing** (their traffic is public);
//! * the knowledge tables of the baseline's entities are
//!   **byte-identical** between the two runs — the directory layer is
//!   knowledge-invisible.
//!
//! The combined [`FleetSweepReport`]s are written as JSON; CI runs the
//! binary twice — once `--sequential`, once parallel with
//! `RAYON_NUM_THREADS=2` — and requires the two files to be
//! byte-identical.
//!
//! ```text
//! dst_fleet [--worlds N] [--threads N] [--seed S] [--sequential]
//!           [--out PATH]
//! ```

use std::collections::BTreeSet;

use decoupling::core::ScenarioReport as _;
use decoupling::{
    entities_silent, restricted_fingerprint, ChainConfig, FaultConfig, FleetConfig, FleetSummary,
    Mixnet, MixnetConfig, Mpr, ParallelExecutor, RunOptions, Scenario, SequentialExecutor,
    SweepBuilder, SweepExecutor, SweepJob,
};
use serde::Serialize;

struct Args {
    worlds: u64,
    threads: usize,
    seed: u64,
    sequential: bool,
    out: Option<String>,
}

fn parse_args() -> Args {
    let mut args = Args {
        worlds: 4,
        threads: 0,
        seed: 20221114,
        sequential: false,
        out: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |name: &str| {
            it.next()
                .unwrap_or_else(|| panic!("{name} requires a value"))
        };
        match flag.as_str() {
            "--worlds" => args.worlds = value("--worlds").parse().expect("--worlds: integer"),
            "--threads" => args.threads = value("--threads").parse().expect("--threads: integer"),
            "--seed" => args.seed = value("--seed").parse().expect("--seed: integer"),
            "--sequential" => args.sequential = true,
            "--out" => args.out = Some(value("--out")),
            other => panic!("unknown flag {other} (see the module docs for usage)"),
        }
    }
    args
}

/// One world's verdict for one scenario.
#[derive(Clone, Debug, PartialEq, Serialize)]
struct FleetWorldReport {
    seed: u64,
    completed_units: u64,
    expected_units: u64,
    converged: bool,
    rotations: u64,
    stale_rejected: u64,
    directories_silent: bool,
    /// FNV-1a over the baseline-restricted knowledge rows of the fleet
    /// run — byte-compared across executors, and asserted equal to the
    /// baseline's hash before this report is even built.
    knowledge_hash: u64,
}

/// The per-scenario aggregate the CI job byte-diffs.
#[derive(Clone, Debug, PartialEq, Serialize)]
struct FleetSweepReport {
    scenario: String,
    master_seed: u64,
    worlds: u64,
    total_rotations: u64,
    total_stale_rejected: u64,
    entries: Vec<FleetWorldReport>,
}

/// FNV-1a over the rendered knowledge rows, stable across platforms.
fn hash_rows(rows: &[(String, Vec<String>)]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    let mut eat = |bytes: &[u8]| {
        for &b in bytes {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        h ^= 0x1f;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    };
    for (name, tuples) in rows {
        eat(name.as_bytes());
        for t in tuples {
            eat(t.as_bytes());
        }
    }
    h
}

/// Run one scenario's baseline + fleet pair at `seed` and check every
/// bar. Panics (completion-bar style, like `dst_recover`) on any
/// violation so CI fails loudly rather than producing a green artifact.
fn probe<S>(
    cfg: &S::Config,
    seed: u64,
    fleet_of: impl Fn(&S::Report) -> FleetSummary,
) -> FleetWorldReport
where
    S: Scenario,
{
    let baseline = S::run_with(cfg, seed, &RunOptions::recovered(&FaultConfig::calm()));
    let fleet = S::run_with(
        cfg,
        seed,
        &RunOptions::recovered(&FaultConfig::harsh_fleet()).with_fleet(&FleetConfig::standard()),
    );

    let expected = fleet.expected_units().expect("fleet scenarios count units");
    let completed = fleet.completed_units();
    assert_eq!(
        completed,
        expected,
        "{} seed {seed}: fleet run under harsh_fleet left work unfinished",
        S::NAME
    );
    let summary = fleet_of(&fleet);
    assert!(
        summary.enabled,
        "{} seed {seed}: fleet layer inert",
        S::NAME
    );
    assert!(
        summary.converged,
        "{} seed {seed}: directories ended divergent",
        S::NAME
    );
    assert!(
        summary.stats.rotations > 0,
        "{} seed {seed}: rotation schedule never fired (vacuous run)",
        S::NAME
    );
    let silent = entities_silent(fleet.world(), "Directory");
    assert!(
        silent,
        "{} seed {seed}: a directory learned something",
        S::NAME
    );

    let names: BTreeSet<String> = baseline
        .world()
        .entities()
        .iter()
        .map(|e| e.name.clone())
        .collect();
    let fleet_rows = restricted_fingerprint(fleet.world(), &names);
    let base_rows = restricted_fingerprint(baseline.world(), &names);
    assert_eq!(
        fleet_rows,
        base_rows,
        "{} seed {seed}: fleet run changed a baseline entity's knowledge",
        S::NAME
    );

    FleetWorldReport {
        seed,
        completed_units: completed,
        expected_units: expected,
        converged: summary.converged,
        rotations: summary.stats.rotations,
        stale_rejected: summary.stats.stale_rejected,
        directories_silent: silent,
        knowledge_hash: hash_rows(&fleet_rows),
    }
}

fn reduce(scenario: &str, master_seed: u64, entries: Vec<FleetWorldReport>) -> FleetSweepReport {
    FleetSweepReport {
        scenario: scenario.to_string(),
        master_seed,
        worlds: entries.len() as u64,
        total_rotations: entries.iter().map(|e| e.rotations).sum(),
        total_stale_rejected: entries.iter().map(|e| e.stale_rejected).sum(),
        entries,
    }
}

fn sweep_all(
    builder: &SweepBuilder,
    exec: &impl SweepExecutor,
    master_seed: u64,
) -> Vec<FleetSweepReport> {
    // The same small workloads the scenario crates' fleet tests pin.
    let mpr = ChainConfig {
        relays: 2,
        users: 2,
        fetches_each: 2,
        geohint: false,
        seed: 0, // overridden by each derived harness seed
    };
    let mixnet = MixnetConfig {
        senders: 4,
        mixes: 2,
        batch_size: 2,
        window_us: 100_000,
        shuffle: true,
        chaff_per_sender: 0,
        mix_max_wait_us: Some(50_000),
        seed: 0,
    };
    let jobs = builder.jobs();
    let mpr_entries = exec.execute(&jobs, &|job: &SweepJob| {
        probe::<Mpr>(&mpr, job.seed, |r| r.fleet.clone())
    });
    let mixnet_entries = exec.execute(&jobs, &|job: &SweepJob| {
        probe::<Mixnet>(&mixnet, job.seed, |r| r.fleet.clone())
    });
    vec![
        reduce("mpr", master_seed, mpr_entries),
        reduce("mixnet", master_seed, mixnet_entries),
    ]
}

fn main() {
    let args = parse_args();
    let builder = SweepBuilder::new(args.seed)
        .worlds(args.worlds)
        .threads(args.threads);

    let started = std::time::Instant::now();
    let reports = if args.sequential {
        sweep_all(&builder, &SequentialExecutor, args.seed)
    } else {
        sweep_all(
            &builder,
            &ParallelExecutor::for_builder(&builder),
            args.seed,
        )
    };
    let elapsed = started.elapsed();

    for r in &reports {
        eprintln!(
            "{:<8} worlds={} rotations={} stale-rejected={} all-complete=yes",
            r.scenario, r.worlds, r.total_rotations, r.total_stale_rejected
        );
    }
    eprintln!(
        "mode={} elapsed={:.2}s",
        if args.sequential {
            "sequential"
        } else {
            "parallel"
        },
        elapsed.as_secs_f64()
    );

    match &args.out {
        Some(path) => {
            dcp_obs::write_json(&reports, path).expect("write output file");
            eprintln!("wrote {path}");
        }
        None => println!("{}", dcp_obs::to_json(&reports)),
    }
}
