//! Population-scale world runner: drives `dcp-worlds` engines at 10⁶
//! users / 10⁸ events, measures throughput, exercises checkpoint/resume,
//! and runs the real scenario wirings at population smoke scale.
//!
//! Modes (composable flags, hand-rolled parsing — no CLI dep):
//!
//! ```text
//! cargo run --release -p dcp-bench --bin worlds -- \
//!     --preset odoh --users 1000000 --names 100000 --rate 0.5 \
//!     --duration-s 40 --out out/world_odoh.json
//!
//! --bench                 run the throughput battery (≥3 presets) and
//!                         write out/BENCH_throughput.json
//! --verify-resume         straight-through vs checkpoint/resume byte-diff
//! --smoke                 10⁴ users through the real ODoH wiring
//!                         (PopulationScenario, streaming metrics)
//! --checkpoint-at N       pause after N events, write out/world.ckpt,
//!                         restore from bytes, continue
//! ```

use std::time::Instant;

use dcp_worlds::{Engine, PopulationScenario, Topology, WorldSpec};
use serde::Serialize;

#[derive(Clone, Debug)]
struct Args {
    preset: String,
    users: u64,
    names: u64,
    rate_hz: f64,
    duration_us: u64,
    seed: u64,
    max_events: u64,
    checkpoint_at: u64,
    out: Option<String>,
    bench: bool,
    verify_resume: bool,
    smoke: bool,
}

impl Default for Args {
    fn default() -> Args {
        Args {
            preset: "odoh".into(),
            users: 100_000,
            names: 10_000,
            rate_hz: 0.5,
            duration_us: 20_000_000,
            seed: 20221114,
            max_events: u64::MAX,
            checkpoint_at: 0,
            out: None,
            bench: false,
            verify_resume: false,
            smoke: false,
        }
    }
}

fn parse_args() -> Args {
    let mut args = Args::default();
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut val = |name: &str| it.next().unwrap_or_else(|| panic!("{name} needs a value"));
        match flag.as_str() {
            "--preset" => args.preset = val("--preset"),
            "--users" => args.users = val("--users").parse().expect("--users"),
            "--names" => args.names = val("--names").parse().expect("--names"),
            "--rate" => args.rate_hz = val("--rate").parse().expect("--rate"),
            "--duration-s" => {
                let s: f64 = val("--duration-s").parse().expect("--duration-s");
                args.duration_us = (s * 1e6) as u64;
            }
            "--seed" => args.seed = val("--seed").parse().expect("--seed"),
            "--max-events" => args.max_events = val("--max-events").parse().expect("--max-events"),
            "--checkpoint-at" => {
                args.checkpoint_at = val("--checkpoint-at").parse().expect("--checkpoint-at")
            }
            "--out" => args.out = Some(val("--out")),
            "--bench" => args.bench = true,
            "--verify-resume" => args.verify_resume = true,
            "--smoke" => args.smoke = true,
            other => panic!("unknown flag {other}"),
        }
    }
    args
}

fn spec_of(a: &Args) -> WorldSpec {
    WorldSpec::new()
        .users(a.users)
        .names(a.names)
        .rate_hz(a.rate_hz)
        .duration_us(a.duration_us)
}

fn write_out(path: &str, json: &str) {
    if let Some(dir) = std::path::Path::new(path).parent() {
        std::fs::create_dir_all(dir).expect("mkdir out");
    }
    std::fs::write(path, json).expect("write output");
    println!("wrote {path}");
}

#[derive(Serialize)]
struct ThroughputRow {
    scenario: String,
    users: u64,
    events: u64,
    messages: u64,
    queries: u64,
    wall_ms: u64,
    events_per_sec: u64,
    sim_messages_per_sec: u64,
}

#[derive(Serialize)]
struct ThroughputRecord {
    bench: &'static str,
    source: &'static str,
    command: &'static str,
    host: String,
    results: Vec<ThroughputRow>,
    note: &'static str,
}

fn run_one(preset: &str, spec: &WorldSpec, seed: u64) -> (dcp_worlds::PopReport, u64) {
    let topo = Topology::by_name(preset).unwrap_or_else(|| panic!("unknown preset {preset}"));
    let mut engine = Engine::new(spec, &topo, seed).expect("engine");
    let t0 = Instant::now();
    engine.run_to_end();
    (engine.report(), t0.elapsed().as_millis() as u64)
}

fn bench_battery(seed: u64) {
    // Three contrasting wirings at identical population scale: the
    // coupled baseline, the light decoupled path, the heavy mix path.
    let presets = ["direct", "odoh", "mixnet"];
    let spec = WorldSpec::new()
        .users(100_000)
        .names(10_000)
        .rate_hz(1.0)
        .duration_us(20_000_000);
    let mut rows = Vec::new();
    for preset in presets {
        let (report, wall_ms) = run_one(preset, &spec, seed);
        let secs = (wall_ms as f64 / 1000.0).max(1e-9);
        println!(
            "{preset:12} events={:>12} messages={:>12} wall={wall_ms} ms  ({:.1}M events/s)",
            report.events,
            report.messages,
            report.events as f64 / secs / 1e6,
        );
        rows.push(ThroughputRow {
            scenario: preset.to_string(),
            users: spec.users,
            events: report.events,
            messages: report.messages,
            queries: report.queries_sent,
            wall_ms,
            events_per_sec: (report.events as f64 / secs) as u64,
            sim_messages_per_sec: (report.messages as f64 / secs) as u64,
        });
    }
    let record = ThroughputRecord {
        bench: "worlds-throughput",
        source: "crates/bench/src/bin/worlds.rs",
        command: "cargo run --release -p dcp-bench --bin worlds -- --bench",
        host: format!(
            "nproc={}",
            std::thread::available_parallelism().map_or(1, |n| n.get())
        ),
        results: rows,
        note: "single-threaded population engine over the hierarchical timer wheel; \
               sim_messages_per_sec = simulated protocol messages per wall-clock second",
    };
    write_out(
        "out/BENCH_throughput.json",
        &serde_json::to_string_pretty(&record).unwrap(),
    );
}

fn verify_resume(a: &Args) {
    let spec = spec_of(a);
    let topo = Topology::by_name(&a.preset).expect("preset");

    let mut straight = Engine::new(&spec, &topo, a.seed).expect("engine");
    straight.run_to_end();
    let want = serde_json::to_string_pretty(&straight.report()).unwrap();

    let mut paused = Engine::new(&spec, &topo, a.seed).expect("engine");
    let half = straight.events_processed() / 2;
    paused.run_until_events(half);
    let bytes = paused.checkpoint();
    drop(paused);
    let mut resumed = Engine::restore(&bytes).expect("restore");
    resumed.run_to_end();
    let got = serde_json::to_string_pretty(&resumed.report()).unwrap();

    if want == got {
        println!(
            "resume OK: {} bytes of checkpoint at event {half}, report byte-identical",
            bytes.len()
        );
    } else {
        eprintln!("RESUME MISMATCH\n--- straight ---\n{want}\n--- resumed ---\n{got}");
        std::process::exit(1);
    }
}

fn smoke() {
    // The real ODoH wiring (protocol bytes, HPKE, the full simulator) at
    // population smoke scale, under the bounded-memory profile.
    use dcp_core::ScenarioReport as _;
    let spec = WorldSpec::new()
        .users(10_000)
        .names(2_000)
        .rate_hz(0.2)
        .duration_us(5_000_000);
    let t0 = Instant::now();
    let report = decoupling::Odoh::run_population(&spec, 20221114);
    let wall = t0.elapsed();
    assert!(report.completed_units() > 0, "smoke must answer queries");
    assert!(
        report.trace.is_empty(),
        "population profile must not retain the packet trace"
    );
    assert!(
        report.metrics.spans.is_empty(),
        "population profile must stream metrics, not itemise them"
    );
    println!(
        "population smoke OK: {} users, {} queries answered, {} span kinds streamed, {:.1}s wall",
        spec.users,
        report.completed_units(),
        report.metrics.span_stats.len(),
        wall.as_secs_f64()
    );
}

fn main() {
    let a = parse_args();
    if a.bench {
        bench_battery(a.seed);
        return;
    }
    if a.verify_resume {
        verify_resume(&a);
        return;
    }
    if a.smoke {
        smoke();
        return;
    }

    let spec = spec_of(&a);
    let topo = Topology::by_name(&a.preset).expect("preset");
    println!(
        "world: preset={} users={} names={} rate={}Hz duration={}s seed={}",
        a.preset,
        spec.users,
        spec.names,
        spec.rate_hz,
        spec.duration_us / 1_000_000,
        a.seed
    );
    let mut engine = Engine::new(&spec, &topo, a.seed).expect("engine");
    let t0 = Instant::now();

    if a.checkpoint_at > 0 {
        engine.run_until_events(a.checkpoint_at);
        let bytes = engine.checkpoint();
        write_out("out/world.ckpt", "");
        std::fs::write("out/world.ckpt", &bytes).expect("write checkpoint");
        println!(
            "checkpoint at event {}: {} bytes -> out/world.ckpt (restoring and continuing)",
            engine.events_processed(),
            bytes.len()
        );
        engine = Engine::restore(&bytes).expect("restore");
    }
    let done = engine.run_until_events(a.max_events);
    let wall = t0.elapsed().as_secs_f64();
    let report = engine.report();
    println!(
        "{} events ({}), {} messages, {} queries answered, {:.1}s wall, {:.1}M events/s",
        report.events,
        if done { "drained" } else { "event budget hit" },
        report.messages,
        report.queries_answered,
        wall,
        report.events as f64 / wall.max(1e-9) / 1e6
    );
    let json = serde_json::to_string_pretty(&report).unwrap();
    match &a.out {
        Some(path) => write_out(path, &json),
        None => println!("{json}"),
    }
}
