//! Crypto fast-path micro-benchmark: per-op timings for the hot
//! operations, reference vs. fast bignum backend — the artifact behind
//! `BENCH_crypto.json`.
//!
//! Measures, at a fixed RSA modulus size:
//!
//! * `modpow` — full-width exponent over the backend byte surface (the
//!   blind-signing / keygen-witness shape);
//! * `rsa_verify` — PKCS#1 v1.5 verification (`e = 65537`), routed
//!   through the process-global backend selection;
//! * `rsa_verify_batch16` — 16 verifications individually vs. combined
//!   random-weight batch (same modulus);
//! * `hpke_seal` — single-shot (encap + seal every message) vs. session
//!   reuse (one encap, then per-message seal only).
//!
//! The `speedup` map summarises fast-over-reference ratios; CI runs
//! `--smoke` and only checks the binary runs and emits well-formed JSON
//! (micro-timings on shared runners are noise).
//!
//! ```text
//! crypto [--smoke] [--bits N] [--out PATH]
//! ```

use std::collections::BTreeMap;
use std::time::Instant;

use dcp_crypto::backend::{self, BackendKind};
use dcp_crypto::{hpke, rsa};
use rand::{RngCore, SeedableRng};
use serde::Serialize;

#[derive(Serialize)]
struct OpResult {
    /// Operation name.
    op: String,
    /// Which implementation: `reference`, `fast`, `individual`,
    /// `batch`, `single_shot`, `session`.
    variant: String,
    /// Mean wall-clock nanoseconds per operation.
    ns_per_op: f64,
    /// Iterations measured.
    iters: u64,
}

#[derive(Serialize)]
struct CryptoBenchReport {
    /// RSA modulus size benchmarked.
    bits: usize,
    /// Was this the CI smoke configuration?
    smoke: bool,
    /// Raw per-op timings.
    ops: Vec<OpResult>,
    /// Fast-over-reference (or batch-over-individual, session-over-
    /// single-shot) wall-clock ratios, keyed by operation.
    speedup: BTreeMap<String, f64>,
}

struct Args {
    smoke: bool,
    bits: usize,
    out: Option<String>,
}

fn parse_args() -> Args {
    let mut args = Args {
        smoke: false,
        bits: 1024,
        out: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |name: &str| {
            it.next()
                .unwrap_or_else(|| panic!("{name} requires a value"))
        };
        match flag.as_str() {
            "--smoke" => args.smoke = true,
            "--bits" => args.bits = value("--bits").parse().expect("--bits: integer"),
            "--out" => args.out = Some(value("--out")),
            other => panic!("unknown flag {other} (see the module docs for usage)"),
        }
    }
    args
}

/// Mean ns/op of `f` over `iters` runs (after one warmup call).
fn time_ns<F: FnMut()>(iters: u64, mut f: F) -> f64 {
    f();
    let start = Instant::now();
    for _ in 0..iters {
        f();
    }
    start.elapsed().as_nanos() as f64 / iters as f64
}

fn main() {
    let args = parse_args();
    let bits = if args.smoke { 512 } else { args.bits };
    let (reps_slow, reps_fast) = if args.smoke { (2, 8) } else { (20, 200) };
    let mut rng = rand::rngs::StdRng::seed_from_u64(0xbe7c);

    let sk = rsa::RsaPrivateKey::generate(&mut rng, bits).expect("keygen");
    let pk = sk.public_key().clone();
    let n = pk.modulus_be();
    let mut base = vec![0u8; n.len()];
    let mut exp = vec![0u8; n.len()];
    rng.fill_bytes(&mut base);
    rng.fill_bytes(&mut exp);
    base[0] = 0; // keep base < n

    let mut ops = Vec::new();
    let mut speedup = BTreeMap::new();
    let mut record = |op: &str, variant: &str, iters: u64, ns: f64| {
        eprintln!("{op:<24} {variant:<12} {:>12.0} ns/op", ns);
        ops.push(OpResult {
            op: op.into(),
            variant: variant.into(),
            ns_per_op: ns,
            iters,
        });
        ns
    };

    // Full-width modpow over the backend byte surface.
    let slow = record(
        "modpow",
        "reference",
        reps_slow,
        time_ns(reps_slow, || {
            backend::reference().modpow_bytes(&base, &exp, &n).unwrap();
        }),
    );
    let fast = record(
        "modpow",
        "fast",
        reps_fast,
        time_ns(reps_fast, || {
            backend::fast().modpow_bytes(&base, &exp, &n).unwrap();
        }),
    );
    speedup.insert("modpow".to_string(), slow / fast);

    // PKCS#1 v1.5 verify through the global backend switch.
    let sig = sk.sign(b"bench message").unwrap();
    backend::set_backend(BackendKind::Reference);
    let slow = record(
        "rsa_verify",
        "reference",
        reps_fast,
        time_ns(reps_fast, || {
            pk.verify(b"bench message", &sig).unwrap();
        }),
    );
    backend::set_backend(BackendKind::Fast);
    let fast = record(
        "rsa_verify",
        "fast",
        reps_fast,
        time_ns(reps_fast, || {
            pk.verify(b"bench message", &sig).unwrap();
        }),
    );
    speedup.insert("rsa_verify".to_string(), slow / fast);

    // Batch vs. individual verification, 16 signatures, fast backend.
    let msgs: Vec<Vec<u8>> = (0..16u8).map(|i| vec![b'b', i]).collect();
    let sigs: Vec<Vec<u8>> = msgs.iter().map(|m| sk.sign(m).unwrap()).collect();
    let items: Vec<(&[u8], &[u8])> = msgs
        .iter()
        .zip(&sigs)
        .map(|(m, s)| (m.as_slice(), s.as_slice()))
        .collect();
    let indiv = record(
        "rsa_verify_batch16",
        "individual",
        reps_slow,
        time_ns(reps_slow, || {
            for (m, s) in &items {
                pk.verify(m, s).unwrap();
            }
        }),
    );
    let batch = record(
        "rsa_verify_batch16",
        "batch",
        reps_slow,
        time_ns(reps_slow, || {
            assert!(pk.verify_batch(&items).iter().all(|r| r.is_ok()));
        }),
    );
    speedup.insert("rsa_verify_batch16".to_string(), indiv / batch);

    // HPKE: single-shot (encap every message) vs. session reuse.
    let kp = hpke::Keypair::generate(&mut rng);
    let single = record(
        "hpke_seal",
        "single_shot",
        reps_fast,
        time_ns(reps_fast, || {
            hpke::seal(&mut rng, &kp.public, b"bench", b"", &[0u8; 256]).unwrap();
        }),
    );
    let (_enc, mut tx) = hpke::setup_base_s(&mut rng, &kp.public, b"bench").unwrap();
    let session = record(
        "hpke_seal",
        "session",
        reps_fast,
        time_ns(reps_fast, || {
            tx.seal(b"", &[0u8; 256]);
        }),
    );
    speedup.insert("hpke_seal_session".to_string(), single / session);

    let report = CryptoBenchReport {
        bits,
        smoke: args.smoke,
        ops,
        speedup,
    };
    for (op, s) in &report.speedup {
        eprintln!("speedup {op:<24} {s:.2}x");
    }
    let path = args.out.as_deref().unwrap_or("BENCH_crypto.json");
    dcp_obs::write_json(&report, path).expect("write bench artifact");
    eprintln!("wrote {path}");
}
