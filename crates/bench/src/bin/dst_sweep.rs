//! Multi-seed DST smoke sweep over every §3 scenario — the CI
//! determinism probe.
//!
//! Runs the full fault-preset battery
//! ([`decoupling::faults::dst::sweep_scenario_for`]) at `--worlds`
//! derived seeds for each of the eight scenarios and writes the combined
//! [`DstSweepReport`]s as JSON. The point of the binary is the diff: CI
//! runs it twice — once `--sequential`, once parallel with
//! `RAYON_NUM_THREADS=2` — and requires the two output files to be
//! **byte-identical**. Any nondeterminism smuggled into the engine, a
//! scenario, or the aggregation shows up as a diff.
//!
//! ```text
//! dst_sweep [--worlds N] [--threads N] [--seed S] [--sequential]
//!           [--backend fast|reference] [--out PATH]
//! ```
//!
//! `--backend` selects the process-global bignum backend
//! ([`dcp_crypto::backend::set_backend`]); CI diffs the two selections
//! against each other too — the fast path must be *value*-identical,
//! not just fast.

use decoupling::faults::dst::{sweep_scenario_for_with, DstSweepReport};
use decoupling::{ParallelExecutor, SequentialExecutor, SweepBuilder, SweepExecutor};

struct Args {
    worlds: u64,
    threads: usize,
    seed: u64,
    sequential: bool,
    queue: decoupling::QueueKind,
    out: Option<String>,
}

fn parse_args() -> Args {
    let mut args = Args {
        worlds: 3,
        threads: 0,
        seed: 20221114,
        sequential: false,
        queue: decoupling::QueueKind::default(),
        out: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |name: &str| {
            it.next()
                .unwrap_or_else(|| panic!("{name} requires a value"))
        };
        match flag.as_str() {
            "--worlds" => args.worlds = value("--worlds").parse().expect("--worlds: integer"),
            "--threads" => args.threads = value("--threads").parse().expect("--threads: integer"),
            "--seed" => args.seed = value("--seed").parse().expect("--seed: integer"),
            "--sequential" => args.sequential = true,
            "--queue" => {
                args.queue = match value("--queue").as_str() {
                    "wheel" => decoupling::QueueKind::TimerWheel,
                    "heap" => decoupling::QueueKind::BinaryHeap,
                    other => panic!("--queue: expected wheel|heap, got {other}"),
                }
            }
            "--backend" => {
                let raw = value("--backend");
                let kind = dcp_crypto::backend::BackendKind::parse(&raw)
                    .unwrap_or_else(|| panic!("--backend: expected fast|reference, got {raw}"));
                dcp_crypto::backend::set_backend(kind);
            }
            "--out" => args.out = Some(value("--out")),
            other => panic!("unknown flag {other} (see the module docs for usage)"),
        }
    }
    args
}

fn sweep_all(
    builder: &SweepBuilder,
    exec: &impl SweepExecutor,
    opts: &decoupling::RunOptions,
) -> Vec<DstSweepReport> {
    // The same small workloads tests/dst_scenarios.rs smokes.
    let mixnet = decoupling::MixnetConfig {
        senders: 6,
        mixes: 2,
        batch_size: 3,
        window_us: 100_000,
        shuffle: true,
        chaff_per_sender: 0,
        mix_max_wait_us: None,
        seed: 0, // overridden by each derived harness seed
    };
    let pgpp = decoupling::PgppConfig {
        mode: decoupling::pgpp::Mode::Pgpp,
        users: 5,
        cells: 2,
        epochs: 2,
        moves_per_epoch: 2,
        seed: 0,
    };
    let mpr = decoupling::ChainConfig {
        relays: 2,
        users: 3,
        fetches_each: 2,
        geohint: false,
        seed: 0,
    };
    let ppm = decoupling::PpmConfig {
        clients: 5,
        bits: 4,
        malicious: 0,
        seed: 0,
    };
    vec![
        sweep_scenario_for_with::<decoupling::Blindcash, _>(
            &decoupling::BlindcashConfig::new(2, 2, 512),
            builder,
            exec,
            opts,
        ),
        sweep_scenario_for_with::<decoupling::Mixnet, _>(&mixnet, builder, exec, opts),
        sweep_scenario_for_with::<decoupling::Privacypass, _>(
            &decoupling::PrivacypassConfig::new(3, 2),
            builder,
            exec,
            opts,
        ),
        sweep_scenario_for_with::<decoupling::Odoh, _>(
            &decoupling::OdohConfig::new(3, 4),
            builder,
            exec,
            opts,
        ),
        sweep_scenario_for_with::<decoupling::Pgpp, _>(&pgpp, builder, exec, opts),
        sweep_scenario_for_with::<decoupling::Mpr, _>(&mpr, builder, exec, opts),
        sweep_scenario_for_with::<decoupling::Ppm, _>(&ppm, builder, exec, opts),
        sweep_scenario_for_with::<decoupling::Vpn, _>(
            &decoupling::VpnConfig::new(3, 2),
            builder,
            exec,
            opts,
        ),
    ]
}

fn main() {
    let args = parse_args();
    let builder = SweepBuilder::new(args.seed)
        .worlds(args.worlds)
        .threads(args.threads);

    let opts = decoupling::RunOptions::dst().with_queue(args.queue);
    let started = std::time::Instant::now();
    let reports = if args.sequential {
        sweep_all(&builder, &SequentialExecutor, &opts)
    } else {
        sweep_all(&builder, &ParallelExecutor::for_builder(&builder), &opts)
    };
    let elapsed = started.elapsed();

    for r in &reports {
        eprintln!(
            "{:<12} worlds={} faults={} moderate-complete={}/{} new-couplings={}",
            r.scenario, r.worlds, r.total_faults, r.completed_moderate, r.worlds, r.new_couplings
        );
    }
    eprintln!(
        "mode={} threads={} elapsed={:.2}s",
        if args.sequential {
            "sequential"
        } else {
            "parallel"
        },
        if args.sequential {
            1
        } else {
            ParallelExecutor::for_builder(&builder).num_threads()
        },
        elapsed.as_secs_f64()
    );

    match &args.out {
        Some(path) => {
            dcp_obs::write_json(&reports, path).expect("write output file");
            eprintln!("wrote {path}");
        }
        None => println!("{}", dcp_obs::to_json(&reports)),
    }
}
