//! The experiment harness: regenerates every table and figure of the
//! paper and prints them next to the paper's versions, plus the §4–§5
//! quantitative sweeps. A JSON record is written to
//! `out/experiments_out.json` for EXPERIMENTS.md bookkeeping.
//!
//! Run with: `cargo run --release -p dcp-bench --bin experiments`

use dcp_bench::{
    all_tables, exp_chaff, exp_circuits, exp_degrees, exp_fleet, exp_metrics, exp_padding_cost,
    exp_relay_latency, exp_striping, exp_traffic,
};

fn main() {
    let seed = 20221114; // HotNets '22 opening day
    println!("=============================================================");
    println!(" The Decoupling Principle — experiment harness");
    println!("=============================================================\n");

    // ------------------------------------------------------ §3 tables --
    println!("## Part 1: the eight §3 decoupling tables (measured vs paper)\n");
    let tables = all_tables(seed);
    let mut all_match = true;
    for t in &tables {
        println!("--- {}  {} ---", t.id, t.name);
        println!("measured:\n{}", t.measured.to_markdown());
        if t.matches {
            println!("paper:    IDENTICAL ✓");
        } else {
            all_match = false;
            println!("paper:\n{}", t.paper.to_markdown());
            println!("MISMATCH ✗");
        }
        println!(
            "verdict: {} | min re-coupling coalition: {} | latency: {:.1} ms\n",
            if t.decoupled { "decoupled" } else { "COUPLED" },
            t.min_collusion
                .map(|n| n.to_string())
                .unwrap_or_else(|| "∞ (uncouplable)".into()),
            t.latency_us / 1000.0
        );
    }
    println!(
        ">>> {} of {} tables match the paper exactly\n",
        tables.iter().filter(|t| t.matches).count(),
        tables.len()
    );

    // --------------------------------------------------- E-4.2 degrees --
    println!("## Part 2: E-4.2 — degrees of decoupling (cost/benefit)\n");
    let sweep = exp_degrees(5, seed);
    println!("{}", sweep.to_rows());
    match sweep.check_shape() {
        Ok(()) => println!(">>> shape matches §4.2: privacy ↑, latency ↑, diminishing returns ✓\n"),
        Err(e) => println!(">>> SHAPE VIOLATION: {e}\n"),
    }

    // ------------------------------------------------ fleet degrees --
    println!("## Part 2b: degrees of decoupling for the directory layer (dcp-fleet)\n");
    let fleet = exp_fleet(&[2, 3, 4, 6], 4, seed);
    println!("pool  attack-acc  anon-set  calm-lat(ms)  churn-lat(ms)  rotations  completed");
    for row in &fleet {
        println!(
            "{:>4}  {:>10.3}  {:>8.2}  {:>12.1}  {:>13.1}  {:>9.1}  {:>9.2}",
            row.pool,
            row.attack_accuracy,
            row.anonymity_set,
            row.calm_latency_us / 1000.0,
            row.churn_latency_us / 1000.0,
            row.rotations,
            row.completed
        );
    }
    println!(
        ">>> bigger pools absorb churn without losing work; rotation + churn cost \
         shows up as latency, not as failures ✓\n"
    );

    // --------------------------------------------- E-4.3 traffic sweep --
    println!("## Part 3: E-4.3 — traffic analysis vs batching\n");
    let traffic = exp_traffic(&[1, 2, 4, 8, 10], 5, seed);
    println!("batch  attack-acc  random-base  anon-set  latency(ms)");
    for row in &traffic {
        println!(
            "{:>5}  {:>10.3}  {:>11.3}  {:>8.2}  {:>11.1}",
            row.batch_size,
            row.attack_accuracy,
            row.random_baseline,
            row.anonymity_set,
            row.latency_us / 1000.0
        );
    }
    let first = traffic.first().unwrap();
    let last = traffic.last().unwrap();
    println!(
        ">>> batching pushed the attacker from {:.0}% toward the {:.0}% baseline, \
         at {:.1} ms extra latency ✓\n",
        first.attack_accuracy * 100.0,
        last.random_baseline * 100.0,
        (last.latency_us - first.latency_us) / 1000.0
    );

    // ----------------------------------------------- E-4.3b chaff axis --
    println!("## Part 3b: E-4.3 — chaff (cover traffic) vs the same attacker\n");
    let chaff = exp_chaff(&[0, 1, 3, 5], 4, seed);
    println!("chaff/sender  attack-acc  bandwidth-factor");
    for row in &chaff {
        println!(
            "{:>12}  {:>10.3}  {:>16.2}",
            row.chaff_per_sender, row.attack_accuracy, row.bandwidth_factor
        );
    }
    println!(">>> decoys buy confusion with bandwidth, the §4.3 tradeoff ✓\n");

    // --------------------------------------------- circuits (Tor shape) --
    println!("## Part 3c: session circuits — handshake amortization by hop count\n");
    let circuits = exp_circuits(4, seed);
    println!("hops  first-exchange(ms)  steady(ms)");
    for row in &circuits {
        println!(
            "{:>4}  {:>18.1}  {:>10.1}",
            row.hops,
            row.first_exchange_us / 1000.0,
            row.steady_exchange_us / 1000.0
        );
    }
    println!(">>> circuits pay the per-hop cost once, then ride session keys ✓\n");

    // ------------------------------------------------ E-5.1 striping --
    println!("## Part 4: E-5.1 — DNS query striping across resolvers\n");
    let striping = exp_striping(&[1, 2, 4, 8], seed);
    println!("resolvers  max-view  mean-view");
    for row in &striping {
        println!(
            "{:>9}  {:>8.2}  {:>9.2}",
            row.resolvers, row.max_view_fraction, row.mean_view_fraction
        );
    }
    println!(">>> per-resolver visibility falls roughly as 1/r ✓\n");

    // -------------------------------------------- E-OBS metrics layer --
    println!("## Part 5: E-OBS — instrumented runs (metrics layer)\n");
    let metrics = exp_metrics(seed);
    println!("scenario      msgs  delivered      bytes  crypto-ops  sim-end(ms)");
    for m in &metrics {
        println!(
            "{:<12} {:>5}  {:>9}  {:>9}  {:>10}  {:>11.1}",
            m.scenario,
            m.messages_sent,
            m.messages_delivered,
            m.bytes_sent,
            m.crypto_total(),
            m.sim_end_us as f64 / 1000.0
        );
        assert!(
            m.wire_accounting_holds(),
            "{}: sent != delivered + dropped + lost + unserviced",
            m.scenario
        );
        dcp_obs::write_json(m, format!("out/metrics/{}.json", m.scenario))
            .expect("write per-scenario metrics artifact");
    }
    println!(">>> wire accounting holds for all eight; artifacts in out/metrics/ ✓\n");

    println!("## Part 5b: E-OBS-1 — relays vs latency (from span records)\n");
    let relay_latency = exp_relay_latency(4, seed);
    println!("scenario  hops  mean-latency(ms)  msgs  crypto-ops");
    for row in &relay_latency {
        println!(
            "{:<8}  {:>4}  {:>16.1}  {:>4}  {:>10}",
            row.scenario,
            row.relays,
            row.mean_latency_us / 1000.0,
            row.messages_sent,
            row.crypto_ops
        );
    }
    println!(">>> every added hop costs propagation + crypto, as §4.2 prices it ✓\n");

    println!("## Part 5c: E-OBS-2 — padding cost at the wire\n");
    let padding = exp_padding_cost(&[0, 1, 3, 5], seed);
    println!("chaff/sender  bytes-sent  bytes-factor  real-e2e(ms)");
    for row in &padding {
        println!(
            "{:>12}  {:>10}  {:>12.2}  {:>12.1}",
            row.chaff_per_sender,
            row.bytes_sent,
            row.bytes_factor,
            row.mean_e2e_us / 1000.0
        );
    }
    println!(">>> cover traffic multiplies bytes, not latency — the §4.3 bill ✓\n");

    // ----------------------------------------------------- JSON record --
    let record = serde_json::json!({
        "seed": seed,
        "tables": tables,
        "degrees": sweep.points,
        "traffic": traffic,
        "chaff": chaff,
        "circuits": circuits,
        "striping": striping,
        "relay_latency": relay_latency,
        "padding_cost": padding,
    });
    dcp_obs::write_json(&record, "out/experiments_out.json")
        .expect("write out/experiments_out.json");
    println!("(machine-readable results written to out/experiments_out.json)");

    assert!(all_match, "a paper table failed to reproduce");
}
