//! Multi-seed harsh-preset recovery sweep over every §3 scenario plus
//! Ech — the CI completion-bar probe.
//!
//! Runs the harsh recovery probe
//! ([`decoupling::faults::dst::sweep_recovery_probe_for`]) at `--worlds`
//! derived seeds per scenario: each world is a recovered fault-free
//! baseline plus a recovered `FaultConfig::harsh()` run, asserting that
//! every work unit completes, that the knowledge tables are byte-identical
//! to the baseline, and that no two attempts of one request share a
//! ciphertext. The combined [`RecoverySweepReport`]s are written as JSON;
//! CI runs the binary twice — once `--sequential`, once parallel with
//! `RAYON_NUM_THREADS=2` — and requires the two files to be
//! **byte-identical**.
//!
//! ```text
//! dst_recover [--worlds N] [--threads N] [--seed S] [--sequential]
//!             [--backend fast|reference] [--out PATH]
//! ```

use decoupling::faults::dst::{sweep_recovery_probe_for_with, RecoverySweepReport};
use decoupling::{ParallelExecutor, SequentialExecutor, SweepBuilder, SweepExecutor};

struct Args {
    worlds: u64,
    threads: usize,
    seed: u64,
    sequential: bool,
    queue: decoupling::QueueKind,
    out: Option<String>,
}

fn parse_args() -> Args {
    let mut args = Args {
        worlds: 4,
        threads: 0,
        seed: 20230402,
        sequential: false,
        queue: decoupling::QueueKind::default(),
        out: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |name: &str| {
            it.next()
                .unwrap_or_else(|| panic!("{name} requires a value"))
        };
        match flag.as_str() {
            "--worlds" => args.worlds = value("--worlds").parse().expect("--worlds: integer"),
            "--threads" => args.threads = value("--threads").parse().expect("--threads: integer"),
            "--seed" => args.seed = value("--seed").parse().expect("--seed: integer"),
            "--sequential" => args.sequential = true,
            "--queue" => {
                args.queue = match value("--queue").as_str() {
                    "wheel" => decoupling::QueueKind::TimerWheel,
                    "heap" => decoupling::QueueKind::BinaryHeap,
                    other => panic!("--queue: expected wheel|heap, got {other}"),
                }
            }
            "--backend" => {
                let raw = value("--backend");
                let kind = dcp_crypto::backend::BackendKind::parse(&raw)
                    .unwrap_or_else(|| panic!("--backend: expected fast|reference, got {raw}"));
                dcp_crypto::backend::set_backend(kind);
            }
            "--out" => args.out = Some(value("--out")),
            other => panic!("unknown flag {other} (see the module docs for usage)"),
        }
    }
    args
}

fn sweep_all(
    builder: &SweepBuilder,
    exec: &impl SweepExecutor,
    opts: &decoupling::RunOptions,
) -> Vec<RecoverySweepReport> {
    // The same small workloads tests/dst_scenarios.rs smokes, plus Ech.
    let mixnet = decoupling::MixnetConfig {
        senders: 6,
        mixes: 2,
        batch_size: 3,
        window_us: 100_000,
        shuffle: true,
        chaff_per_sender: 0,
        mix_max_wait_us: None,
        seed: 0, // overridden by each derived harness seed
    };
    let pgpp = decoupling::PgppConfig {
        mode: decoupling::pgpp::Mode::Pgpp,
        users: 5,
        cells: 2,
        epochs: 2,
        moves_per_epoch: 2,
        seed: 0,
    };
    let mpr = decoupling::ChainConfig {
        relays: 2,
        users: 3,
        fetches_each: 2,
        geohint: false,
        seed: 0,
    };
    let ppm = decoupling::PpmConfig {
        clients: 5,
        bits: 4,
        malicious: 0,
        seed: 0,
    };
    vec![
        sweep_recovery_probe_for_with::<decoupling::Blindcash, _>(
            &decoupling::BlindcashConfig::new(2, 2, 512),
            builder,
            exec,
            opts,
        ),
        sweep_recovery_probe_for_with::<decoupling::Mixnet, _>(&mixnet, builder, exec, opts),
        sweep_recovery_probe_for_with::<decoupling::Privacypass, _>(
            &decoupling::PrivacypassConfig::new(3, 2),
            builder,
            exec,
            opts,
        ),
        sweep_recovery_probe_for_with::<decoupling::Odoh, _>(
            &decoupling::OdohConfig::new(3, 4),
            builder,
            exec,
            opts,
        ),
        sweep_recovery_probe_for_with::<decoupling::Pgpp, _>(&pgpp, builder, exec, opts),
        sweep_recovery_probe_for_with::<decoupling::Mpr, _>(&mpr, builder, exec, opts),
        sweep_recovery_probe_for_with::<decoupling::Ppm, _>(&ppm, builder, exec, opts),
        sweep_recovery_probe_for_with::<decoupling::Vpn, _>(
            &decoupling::VpnConfig::new(3, 2),
            builder,
            exec,
            opts,
        ),
        sweep_recovery_probe_for_with::<decoupling::Ech, _>(
            &decoupling::EchConfig::default().ech(true),
            builder,
            exec,
            opts,
        ),
    ]
}

fn main() {
    let args = parse_args();
    let builder = SweepBuilder::new(args.seed)
        .worlds(args.worlds)
        .threads(args.threads);

    let opts = decoupling::RunOptions::dst().with_queue(args.queue);
    let started = std::time::Instant::now();
    let reports = if args.sequential {
        sweep_all(&builder, &SequentialExecutor, &opts)
    } else {
        sweep_all(&builder, &ParallelExecutor::for_builder(&builder), &opts)
    };
    let elapsed = started.elapsed();

    for r in &reports {
        eprintln!(
            "{:<12} worlds={} harsh-complete={}/{} units={} faults={}",
            r.scenario, r.worlds, r.completed_harsh, r.worlds, r.completed_units, r.total_faults
        );
    }
    eprintln!(
        "mode={} threads={} elapsed={:.2}s",
        if args.sequential {
            "sequential"
        } else {
            "parallel"
        },
        if args.sequential {
            1
        } else {
            ParallelExecutor::for_builder(&builder).num_threads()
        },
        elapsed.as_secs_f64()
    );

    match &args.out {
        Some(path) => {
            dcp_obs::write_json(&reports, path).expect("write output file");
            eprintln!("wrote {path}");
        }
        None => println!("{}", dcp_obs::to_json(&reports)),
    }
}
