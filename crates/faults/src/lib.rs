//! # dcp-faults — deterministic fault injection for the simulator
//!
//! Deterministic Simulation Testing (DST) in the FoundationDB/TigerBeetle
//! mold: every fault the network can suffer — drops, duplicates, delays,
//! reorderings, partitions, crashes, relay churn, and modeled key
//! compromise — is drawn from a *seeded* generator behind a single
//! [`buggify!`]-style decision point, and every injected fault is recorded
//! in a [`FaultLog`]. The same `(seed, FaultConfig)` pair therefore
//! replays the exact same failure schedule bit-for-bit, so a failing run
//! is a reproducible artifact, not an anecdote.
//!
//! The decoupling paper's claims are *information-flow* claims, so the
//! invariant DST checks here is unusual: not "the database stays
//! consistent" but "no fault short of key compromise hands any non-user
//! entity a coupled `(▲, ●)` knowledge tuple" (§2.4). Packet chaos may
//! degrade liveness; it must never degrade decoupling — decoupled systems
//! have to *fail closed*.
//!
//! The crate deliberately depends only on `dcp-core` (for the key-
//! compromise fault and the safety verdict) and `rand`: the simulator
//! (`dcp-simnet`) depends on *us* and wires [`Injector`] into its
//! dispatch loop, scenarios pass a [`FaultConfig`] through their
//! builders, and the [`dst`] module gives integration tests a harness to
//! run a scenario under each preset and compare runs.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod dst;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::BTreeMap;

// The fault *data* types (config, catalog, log) moved to `dcp-core` so
// the unified `Scenario` trait can speak them; they are re-exported here
// at their original paths. This crate keeps the seeded generator.
pub use dcp_core::faults::{FaultConfig, FaultEvent, FaultKind, FaultLog};

/// The seeded fault generator the simulator consults at each injection
/// point.
///
/// The injector owns its *own* `StdRng`, separate from the simulator's
/// traffic RNG: enabling faults must not perturb link jitter or protocol
/// randomness, so a calm-preset run and a faults-disabled run see
/// identical traffic.
#[derive(Clone, Debug)]
pub struct Injector {
    /// The active configuration (public so [`buggify!`] can read
    /// probabilities without a borrow dance).
    pub config: FaultConfig,
    rng: StdRng,
    log: FaultLog,
    injected: u64,
    /// Open partition windows: canonical (min, max) node pair → absolute
    /// closing time in µs.
    partitions: BTreeMap<(usize, usize), u64>,
}

impl Injector {
    /// A fresh injector for one run. `seed` should be derived from the
    /// scenario seed so the whole run stays a pure function of
    /// `(seed, config)`.
    pub fn new(config: FaultConfig, seed: u64) -> Self {
        Injector {
            config,
            rng: StdRng::seed_from_u64(seed ^ 0xb166_01f5_u64),
            log: FaultLog::default(),
            injected: 0,
            partitions: BTreeMap::new(),
        }
    }

    /// The log so far.
    pub fn log(&self) -> &FaultLog {
        &self.log
    }

    /// Consume the injector, returning the final log.
    pub fn into_log(self) -> FaultLog {
        self.log
    }

    /// The single probabilistic decision point ([`buggify!`] expands to
    /// this): `true` with probability `p`, but never once the
    /// `max_faults` budget is spent. Every `true` consumes budget.
    pub fn roll(&mut self, p: f64) -> bool {
        if p <= 0.0 || self.injected >= self.config.max_faults {
            return false;
        }
        let hit = self.rng.gen_bool(p);
        if hit {
            self.injected += 1;
        }
        hit
    }

    /// A uniform draw in `1..=max` (0 if `max` is 0) for fault
    /// parameters like delays.
    pub fn amount(&mut self, max: u64) -> u64 {
        if max == 0 {
            0
        } else {
            self.rng.gen_range(1..=max)
        }
    }

    /// Record an injected fault.
    pub fn record(&mut self, at_us: u64, kind: FaultKind) {
        self.log.push(at_us, kind);
    }

    /// Is the pair `(a, b)` inside an open partition window at `now_us`?
    /// Expired windows are purged as a side effect.
    pub fn partitioned(&mut self, now_us: u64, a: usize, b: usize) -> bool {
        self.partitions.retain(|_, &mut until| until > now_us);
        let key = (a.min(b), a.max(b));
        self.partitions.contains_key(&key)
    }

    /// Open a partition between `a` and `b` lasting
    /// `config.partition_window_us`, and log it.
    pub fn open_partition(&mut self, now_us: u64, a: usize, b: usize) {
        let key = (a.min(b), a.max(b));
        let until_us = now_us + self.config.partition_window_us;
        self.partitions.insert(key, until_us);
        self.record(
            now_us,
            FaultKind::Partition {
                a: key.0,
                b: key.1,
                until_us,
            },
        );
    }

    /// Open a partition between two *directory* nodes. Same window
    /// mechanics as [`Injector::open_partition`], but logged as
    /// [`FaultKind::DirPartition`] so the replay artifact shows the
    /// anti-entropy path was attacked rather than the data path.
    pub fn open_dir_partition(&mut self, now_us: u64, a: usize, b: usize) {
        let key = (a.min(b), a.max(b));
        let until_us = now_us + self.config.partition_window_us;
        self.partitions.insert(key, until_us);
        self.record(
            now_us,
            FaultKind::DirPartition {
                a: key.0,
                b: key.1,
                until_us,
            },
        );
    }
}

/// FoundationDB-style fault decision point.
///
/// `buggify!(faults, p_drop)` reads the named probability field off an
/// `Option<Injector>` and rolls it: `false` (one branch, no RNG draw)
/// when faults are disabled, a logged-budget draw when enabled. Keeping
/// every probabilistic decision behind this macro is what makes runs
/// replayable — there is exactly one fault RNG and one place it is
/// consulted.
///
/// ```
/// use dcp_faults::{buggify, FaultConfig, Injector};
/// let mut faults: Option<Injector> = Some(Injector::new(FaultConfig::chaos(), 7));
/// if buggify!(faults, p_drop) {
///     // drop the packet
/// }
/// let mut off: Option<Injector> = None;
/// assert!(!buggify!(off, p_drop));
/// ```
#[macro_export]
macro_rules! buggify {
    ($faults:expr, $field:ident) => {
        match $faults.as_mut() {
            Some(inj) => {
                let p = inj.config.$field;
                inj.roll(p)
            }
            None => false,
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_escalate() {
        let calm = FaultConfig::calm();
        let moderate = FaultConfig::moderate();
        let harsh = FaultConfig::harsh();
        let chaos = FaultConfig::chaos();
        assert!(!calm.enabled);
        assert!(moderate.enabled && harsh.enabled && chaos.enabled);
        assert!(calm.p_drop == 0.0);
        assert!(moderate.p_drop < harsh.p_drop);
        assert!(moderate.max_faults < harsh.max_faults);
        assert!(harsh.max_faults < chaos.max_faults);
        assert_eq!(
            harsh.p_crash, 0.0,
            "harsh carries a completion bar: clients must stay alive"
        );
        assert!(chaos.p_crash > 0.0);
        assert_eq!(FaultConfig::presets().len(), 4);
        let names: Vec<_> = FaultConfig::presets().map(|(n, _)| n).to_vec();
        assert_eq!(names, ["calm", "moderate", "harsh", "chaos"]);
    }

    #[test]
    fn harsh_fleet_extends_harsh_without_touching_presets() {
        let hf = FaultConfig::harsh_fleet();
        assert!(hf.enabled);
        assert!(hf.p_relay_join > 0.0 && hf.p_relay_leave > 0.0 && hf.p_dir_partition > 0.0);
        // Everything else is exactly harsh: the fleet preset is an
        // extension, not a new tier.
        let mut stripped = hf.clone();
        stripped.p_relay_join = 0.0;
        stripped.p_relay_leave = 0.0;
        stripped.p_dir_partition = 0.0;
        assert_eq!(stripped, FaultConfig::harsh());
        // And it is NOT in the sweep battery: the DST baseline artifacts
        // iterate presets() and are byte-pinned in CI.
        assert_eq!(FaultConfig::presets().len(), 4);
        for (name, preset) in FaultConfig::presets() {
            assert_ne!(name, "harsh_fleet");
            assert_eq!(preset.p_relay_join, 0.0, "{name} must stay fleet-free");
            assert_eq!(preset.p_relay_leave, 0.0, "{name} must stay fleet-free");
            assert_eq!(preset.p_dir_partition, 0.0, "{name} must stay fleet-free");
        }
    }

    #[test]
    fn relay_churn_name_survives_as_deprecated_constructor() {
        #[allow(deprecated)]
        let k = FaultKind::relay_churn(2, 9);
        assert_eq!(
            k,
            FaultKind::RelayCrash {
                node: 2,
                until_us: 9
            }
        );
    }

    #[test]
    fn dir_partitions_are_logged_distinctly_but_block_identically() {
        let mut cfg = FaultConfig::harsh_fleet();
        cfg.partition_window_us = 100;
        let mut inj = Injector::new(cfg, 3);
        inj.open_dir_partition(10, 1, 0);
        assert!(inj.partitioned(50, 0, 1), "window blocks traffic");
        assert!(!inj.partitioned(111, 0, 1), "and expires");
        assert!(matches!(
            inj.log().events()[0].kind,
            FaultKind::DirPartition {
                a: 0,
                b: 1,
                until_us: 110
            }
        ));
    }

    #[test]
    fn same_seed_same_decisions() {
        let run = |seed: u64| {
            let mut inj = Injector::new(FaultConfig::chaos(), seed);
            (0..200).map(|_| inj.roll(0.3)).collect::<Vec<_>>()
        };
        assert_eq!(run(5), run(5));
        assert_ne!(run(5), run(6), "different seeds should diverge");
    }

    #[test]
    fn max_faults_budget_is_a_hard_cap() {
        let mut cfg = FaultConfig::chaos();
        cfg.max_faults = 3;
        let mut inj = Injector::new(cfg, 1);
        let hits = (0..10_000).filter(|_| inj.roll(0.9)).count();
        assert_eq!(hits, 3);
    }

    #[test]
    fn partitions_open_and_expire() {
        let mut cfg = FaultConfig::moderate();
        cfg.partition_window_us = 100;
        let mut inj = Injector::new(cfg, 2);
        assert!(!inj.partitioned(0, 1, 2));
        inj.open_partition(10, 2, 1);
        assert!(inj.partitioned(50, 1, 2), "symmetric and open");
        assert!(inj.partitioned(50, 2, 1));
        assert!(!inj.partitioned(111, 1, 2), "expired");
        assert_eq!(inj.log().len(), 1);
        assert!(matches!(
            inj.log().events()[0].kind,
            FaultKind::Partition {
                a: 1,
                b: 2,
                until_us: 110
            }
        ));
    }

    #[test]
    fn buggify_disabled_is_inert() {
        let mut off: Option<Injector> = None;
        for _ in 0..100 {
            assert!(!buggify!(off, p_drop));
        }
    }

    #[test]
    fn log_link_accounting() {
        let mut log = FaultLog::default();
        log.push(1, FaultKind::Drop { src: 0, dst: 1 });
        log.push(
            2,
            FaultKind::Duplicate {
                src: 0,
                dst: 1,
                copies: 3,
            },
        );
        log.push(3, FaultKind::Drop { src: 1, dst: 0 });
        assert_eq!(log.drops_on_link(0, 1), 1);
        assert_eq!(log.drops_on_link(1, 0), 1);
        assert_eq!(log.duplicates_on_link(0, 1), 2);
        assert_eq!(log.duplicates_on_link(1, 0), 0);
        assert_eq!(log.count(|k| matches!(k, FaultKind::Drop { .. })), 2);
    }

    #[test]
    fn fault_log_serializes() {
        let mut log = FaultLog::default();
        log.push(
            7,
            FaultKind::KeyCompromise {
                victim: 1,
                beneficiary: 2,
                key: 9,
            },
        );
        let json = serde_json::to_string(&serde_json::to_value(&log)).unwrap();
        assert!(json.contains("KeyCompromise"), "{json}");
        assert!(json.contains("beneficiary"), "{json}");
    }
}
