//! The DST harness: run a scenario under each fault preset, twice, and
//! check the two properties the decoupling analysis demands.
//!
//! * **Determinism** — the same `(seed, FaultConfig)` must reproduce the
//!   identical [`FaultLog`] *and* the identical knowledge fingerprint.
//!   Without this, a safety violation found under chaos cannot be
//!   replayed and debugged.
//! * **Safety** — faults must not *create* couplings. The paper's tables
//!   include one deliberately coupled system (the §3.3 VPN cautionary
//!   tale), so the invariant is baseline-relative: every `(entity, user)`
//!   coupling present under faults must already be present in the
//!   fault-free run of the same scenario. Key compromise is the one
//!   catalog entry exempted — it *models* §4.2 collusion, and the tests
//!   assert it is detected rather than prevented.
//!
//! Liveness is deliberately weaker: under [`FaultConfig::moderate`] a
//! scenario must report `completed` (possibly with degraded throughput)
//! — i.e. fail closed, never fall back to plaintext. Under
//! [`FaultConfig::chaos`] only safety is promised.
//!
//! The harness is generic over a closure `Fn(&FaultConfig, u64) ->`
//! [`DstOutcome`] because this crate sits below the scenario crates in
//! the dependency graph: the integration test (`tests/dst_scenarios.rs`)
//! supplies one closure per §3 system.

use crate::{FaultConfig, FaultLog};
use dcp_core::sweep::{SweepBuilder, SweepExecutor};
use dcp_core::{analyze, Scenario, ScenarioReport, World};
use serde::Serialize;

/// A stable, comparable rendering of every entity's knowledge about
/// every user: the "knowledge table" the determinism check compares
/// across runs.
#[derive(Clone, Debug, PartialEq, Eq, Serialize)]
pub struct KnowledgeFingerprint {
    /// `(entity name, per-user tuples in the paper's notation)` in
    /// entity registration order.
    pub rows: Vec<(String, Vec<String>)>,
}

impl KnowledgeFingerprint {
    /// Snapshot a [`World`]'s ledgers.
    pub fn of(world: &World) -> Self {
        let rows = world
            .entities()
            .iter()
            .map(|e| {
                let tuples = world
                    .users()
                    .iter()
                    .map(|&u| world.tuple(e.id, u).render())
                    .collect();
                (e.name.clone(), tuples)
            })
            .collect();
        KnowledgeFingerprint { rows }
    }
}

/// What one scenario run hands back to the harness.
pub struct DstOutcome {
    /// The final knowledge base.
    pub world: World,
    /// The fault schedule that was injected.
    pub fault_log: FaultLog,
    /// Did the workload make end-to-end progress (scenario-defined:
    /// coins deposited, queries answered, aggregate released, …)?
    pub completed: bool,
}

/// The harness's verdict for one `(scenario, preset)` cell.
#[derive(Clone, Debug, PartialEq, Serialize)]
pub struct DstReport {
    /// Scenario name (e.g. `"odns"`).
    pub scenario: String,
    /// Preset name (`"calm"`, `"moderate"`, `"chaos"`).
    pub preset: String,
    /// Scenario seed.
    pub seed: u64,
    /// Faults injected (identical across the two replay runs).
    pub faults_injected: usize,
    /// Whether the workload completed (see [`DstOutcome::completed`]).
    pub completed: bool,
    /// Couplings present under faults but absent from the calm baseline
    /// — any entry here is a safety violation.
    pub new_couplings: Vec<String>,
}

/// Couplings in `faulted` that the fault-free `baseline` does not have,
/// rendered as `"Entity (user N): (▲, ●)"`. The empty vec is the §2.4
/// safety pass.
pub fn new_couplings(baseline: &World, faulted: &World) -> Vec<String> {
    let base = analyze(baseline);
    let in_baseline = |name: &str, subject: u64| {
        base.violations
            .iter()
            .any(|v| v.entity_name == name && v.subject.0 == subject)
    };
    analyze(faulted)
        .violations
        .iter()
        .filter(|v| !in_baseline(&v.entity_name, v.subject.0))
        .map(|v| format!("{} (user {}): {}", v.entity_name, v.subject.0, v.tuple))
        .collect()
}

/// Run `scenario` under every preset, each twice, asserting determinism
/// and baseline-relative safety. Panics (with a replay recipe) on any
/// violation; returns one [`DstReport`] per preset on success.
///
/// The closure must be a pure function of `(&FaultConfig, seed)` — it
/// builds the world, runs the workload, and returns the outcome.
pub fn run_scenario<F>(scenario: &str, seed: u64, run: F) -> Vec<DstReport>
where
    F: Fn(&FaultConfig, u64) -> DstOutcome,
{
    let baseline = run(&FaultConfig::calm(), seed);
    assert!(
        baseline.fault_log.is_empty(),
        "{scenario}: calm preset must inject nothing, got {:?}",
        baseline.fault_log.events()
    );

    let mut reports = Vec::new();
    for (preset, config) in FaultConfig::presets() {
        let a = run(&config, seed);
        let b = run(&config, seed);

        // Determinism: identical fault schedule and knowledge tables.
        assert_eq!(
            a.fault_log, b.fault_log,
            "{scenario}/{preset}: FaultLog diverged between two runs of \
             seed {seed} — the run is not a pure function of (seed, config)"
        );
        let fp_a = KnowledgeFingerprint::of(&a.world);
        let fp_b = KnowledgeFingerprint::of(&b.world);
        assert_eq!(
            fp_a, fp_b,
            "{scenario}/{preset}: knowledge tables diverged between two \
             runs of seed {seed}"
        );

        // Safety: no coupling the calm run doesn't already have.
        let fresh = new_couplings(&baseline.world, &a.world);
        assert!(
            fresh.is_empty(),
            "{scenario}/{preset}: faults created new couplings {fresh:?} \
             — replay with seed {seed} and config {config:?}"
        );

        reports.push(DstReport {
            scenario: scenario.to_string(),
            preset: preset.to_string(),
            seed,
            faults_injected: a.fault_log.len(),
            completed: a.completed,
            new_couplings: fresh,
        });
    }
    reports
}

/// [`run_scenario`] specialized to the unified [`Scenario`] trait: runs
/// `S` on `cfg` under every preset (twice each) and checks determinism
/// and baseline-relative safety. The canonical way to DST a §3 system.
pub fn run_scenario_for<S: Scenario>(seed: u64, cfg: &S::Config) -> Vec<DstReport> {
    run_scenario(S::NAME, seed, |config, seed| {
        let report = S::run_with_faults(cfg, seed, config);
        DstOutcome {
            world: report.world().clone(),
            fault_log: report.fault_log().clone(),
            completed: report.completed(),
        }
    })
}

/// One world of a multi-seed DST sweep: the full preset battery run at
/// one derived seed.
#[derive(Clone, Debug, PartialEq, Serialize)]
pub struct DstSweepEntry {
    /// Zero-based world index.
    pub index: u64,
    /// The world's derived seed ([`dcp_core::sweep::derive_seed`]).
    pub seed: u64,
    /// One [`DstReport`] per fault preset, in preset order.
    pub reports: Vec<DstReport>,
}

/// The aggregate of a multi-seed DST sweep for one scenario. Built by an
/// ordered fold over world index, so the same bytes come out of the
/// parallel and sequential executors — the artifact the CI determinism
/// diff compares.
#[derive(Clone, Debug, PartialEq, Serialize)]
pub struct DstSweepReport {
    /// Scenario name.
    pub scenario: String,
    /// The sweep's master seed (per-world seeds are derived from it).
    pub master_seed: u64,
    /// Number of independent worlds.
    pub worlds: u64,
    /// Total faults injected across all worlds and presets.
    pub total_faults: u64,
    /// Worlds whose workload completed under the `moderate` preset (the
    /// liveness bar; `chaos` only promises safety).
    pub completed_moderate: u64,
    /// Total fault-created couplings across the sweep — always zero when
    /// the harness returns (any violation panics with a replay recipe).
    pub new_couplings: u64,
    /// Per-world results, in index order.
    pub entries: Vec<DstSweepEntry>,
}

/// Run the full DST battery ([`run_scenario_for`]) at every seed of
/// `builder`'s sweep, on `exec`. Each world independently asserts
/// determinism and baseline-relative safety; the returned aggregate is
/// identical for every conforming executor.
pub fn sweep_scenario_for<S, X>(cfg: &S::Config, builder: &SweepBuilder, exec: &X) -> DstSweepReport
where
    S: Scenario,
    S::Config: Sync,
    X: SweepExecutor + ?Sized,
{
    let run = builder.run_on(exec, |job| run_scenario_for::<S>(job.seed, cfg));
    let mut report = DstSweepReport {
        scenario: S::NAME.to_string(),
        master_seed: builder.master_seed(),
        worlds: builder.world_count(),
        total_faults: 0,
        completed_moderate: 0,
        new_couplings: 0,
        entries: Vec::with_capacity(run.entries.len()),
    };
    for entry in &run.entries {
        for r in &entry.result {
            report.total_faults += r.faults_injected as u64;
            report.new_couplings += r.new_couplings.len() as u64;
            if r.preset == "moderate" && r.completed {
                report.completed_moderate += 1;
            }
        }
        report.entries.push(DstSweepEntry {
            index: entry.index,
            seed: entry.seed,
            reports: entry.result.clone(),
        });
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::FaultKind;
    use dcp_core::{DataKind, IdentityKind, InfoItem};

    fn toy_world(couple_relay: bool) -> World {
        let mut w = World::new();
        let uo = w.add_org("user");
        let ro = w.add_org("relay-co");
        let alice = w.add_user();
        let client = w.add_entity("Client", uo, Some(alice));
        let relay = w.add_entity("Relay", ro, None);
        w.record(
            client,
            InfoItem::sensitive_identity(alice, IdentityKind::Any),
        );
        w.record(client, InfoItem::sensitive_data(alice, DataKind::Payload));
        w.record(
            relay,
            InfoItem::sensitive_identity(alice, IdentityKind::Any),
        );
        if couple_relay {
            w.record(relay, InfoItem::sensitive_data(alice, DataKind::Payload));
        }
        w
    }

    #[test]
    fn fingerprint_is_stable_and_sensitive() {
        let a = KnowledgeFingerprint::of(&toy_world(false));
        let b = KnowledgeFingerprint::of(&toy_world(false));
        assert_eq!(a, b);
        let c = KnowledgeFingerprint::of(&toy_world(true));
        assert_ne!(a, c);
        assert_eq!(a.rows[1].0, "Relay");
        assert_eq!(a.rows[1].1, vec!["(▲, −)".to_string()]);
    }

    #[test]
    fn new_couplings_is_baseline_relative() {
        // Relay coupled in both → not "new". User's own device never counts.
        assert!(new_couplings(&toy_world(true), &toy_world(true)).is_empty());
        assert!(new_couplings(&toy_world(false), &toy_world(false)).is_empty());
        let fresh = new_couplings(&toy_world(false), &toy_world(true));
        assert_eq!(fresh.len(), 1);
        assert!(fresh[0].starts_with("Relay"), "{fresh:?}");
    }

    #[test]
    fn harness_passes_a_safe_deterministic_scenario() {
        let reports = run_scenario("toy", 11, |config, seed| {
            let mut log = FaultLog::default();
            if config.enabled {
                // A deterministic pretend-fault so logs are nonempty.
                log.push(seed, FaultKind::Drop { src: 0, dst: 1 });
            }
            DstOutcome {
                world: toy_world(false),
                fault_log: log,
                completed: true,
            }
        });
        assert_eq!(reports.len(), 3);
        assert!(reports.iter().all(|r| r.new_couplings.is_empty()));
        assert_eq!(reports[0].faults_injected, 0, "calm");
        assert_eq!(reports[2].faults_injected, 1, "chaos");
    }

    #[test]
    #[should_panic(expected = "created new couplings")]
    fn harness_catches_fault_induced_coupling() {
        run_scenario("leaky", 12, |config, _seed| DstOutcome {
            world: toy_world(config.enabled),
            fault_log: FaultLog::default(),
            completed: true,
        });
    }
}
