//! The DST harness: run a scenario under each fault preset, twice, and
//! check the two properties the decoupling analysis demands.
//!
//! * **Determinism** — the same `(seed, FaultConfig)` must reproduce the
//!   identical [`FaultLog`] *and* the identical knowledge fingerprint.
//!   Without this, a safety violation found under chaos cannot be
//!   replayed and debugged.
//! * **Safety** — faults must not *create* couplings. The paper's tables
//!   include one deliberately coupled system (the §3.3 VPN cautionary
//!   tale), so the invariant is baseline-relative: every `(entity, user)`
//!   coupling present under faults must already be present in the
//!   fault-free run of the same scenario. Key compromise is the one
//!   catalog entry exempted — it *models* §4.2 collusion, and the tests
//!   assert it is detected rather than prevented.
//!
//! Liveness is tiered. Under [`FaultConfig::moderate`] a scenario must
//! report `completed` (possibly with degraded throughput) — i.e. fail
//! closed, never fall back to plaintext. Under [`FaultConfig::harsh`]
//! the bar rises to **completion**: with the `dcp-recover` layer enabled
//! every request must be answered (`completed_units == expected_units`
//! where the scenario states a target), the knowledge tables must be
//! *byte-identical* to the fault-free baseline (recovery adds no
//! knowledge anywhere), and no two attempts of one request may share a
//! ciphertext ([`dcp_core::analysis::RetryLinkage`]). Under
//! [`FaultConfig::chaos`] only safety is promised.
//!
//! The harness is generic over a closure `Fn(&FaultConfig, u64) ->`
//! [`DstOutcome`] because this crate sits below the scenario crates in
//! the dependency graph: the integration test (`tests/dst_scenarios.rs`)
//! supplies one closure per §3 system.

use crate::{FaultConfig, FaultLog};
use dcp_core::sweep::{SweepBuilder, SweepExecutor};
use dcp_core::{analyze, Scenario, ScenarioReport, World};
use serde::Serialize;

/// A stable, comparable rendering of every entity's knowledge about
/// every user: the "knowledge table" the determinism check compares
/// across runs.
#[derive(Clone, Debug, PartialEq, Eq, Serialize)]
pub struct KnowledgeFingerprint {
    /// `(entity name, per-user tuples in the paper's notation)` in
    /// entity registration order.
    pub rows: Vec<(String, Vec<String>)>,
}

impl KnowledgeFingerprint {
    /// Snapshot a [`World`]'s ledgers.
    pub fn of(world: &World) -> Self {
        let rows = world
            .entities()
            .iter()
            .map(|e| {
                let tuples = world
                    .users()
                    .iter()
                    .map(|&u| world.tuple(e.id, u).render())
                    .collect();
                (e.name.clone(), tuples)
            })
            .collect();
        KnowledgeFingerprint { rows }
    }
}

/// What one scenario run hands back to the harness.
pub struct DstOutcome {
    /// The final knowledge base.
    pub world: World,
    /// The fault schedule that was injected.
    pub fault_log: FaultLog,
    /// Did the workload make end-to-end progress (scenario-defined:
    /// coins deposited, queries answered, aggregate released, …)?
    pub completed: bool,
    /// Work units that finished end-to-end.
    pub completed_units: u64,
    /// Work units the configuration asked for, where the scenario can
    /// state a target (`None` = best-effort; the harsh completion bar
    /// then only asserts `completed`).
    pub expected_units: Option<u64>,
    /// Retry-linkage violations (attempts correlated by ciphertext
    /// equality) — must be empty under every preset.
    pub retry_linkage: Vec<String>,
}

impl DstOutcome {
    /// Build from any [`ScenarioReport`].
    pub fn from_report<R: ScenarioReport>(report: &R) -> Self {
        DstOutcome {
            world: report.world().clone(),
            fault_log: report.fault_log().clone(),
            completed: report.completed(),
            completed_units: report.completed_units(),
            expected_units: report.expected_units(),
            retry_linkage: report.retry_linkage().to_vec(),
        }
    }
}

/// The harness's verdict for one `(scenario, preset)` cell.
#[derive(Clone, Debug, PartialEq, Serialize)]
pub struct DstReport {
    /// Scenario name (e.g. `"odns"`).
    pub scenario: String,
    /// Preset name (`"calm"`, `"moderate"`, `"harsh"`, `"chaos"`).
    pub preset: String,
    /// Scenario seed.
    pub seed: u64,
    /// Faults injected (identical across the two replay runs).
    pub faults_injected: usize,
    /// Whether the workload completed (see [`DstOutcome::completed`]).
    pub completed: bool,
    /// Work units that finished end-to-end.
    pub completed_units: u64,
    /// The configuration's work-unit target, where stated.
    pub expected_units: Option<u64>,
    /// Did the faulted run's knowledge tables match the calm baseline
    /// byte-for-byte? (Asserted under `harsh`; reported for the rest.)
    pub tables_match_baseline: bool,
    /// Couplings present under faults but absent from the calm baseline
    /// — any entry here is a safety violation.
    pub new_couplings: Vec<String>,
}

/// Couplings in `faulted` that the fault-free `baseline` does not have,
/// rendered as `"Entity (user N): (▲, ●)"`. The empty vec is the §2.4
/// safety pass.
pub fn new_couplings(baseline: &World, faulted: &World) -> Vec<String> {
    let base = analyze(baseline);
    let in_baseline = |name: &str, subject: u64| {
        base.violations
            .iter()
            .any(|v| v.entity_name == name && v.subject.0 == subject)
    };
    analyze(faulted)
        .violations
        .iter()
        .filter(|v| !in_baseline(&v.entity_name, v.subject.0))
        .map(|v| format!("{} (user {}): {}", v.entity_name, v.subject.0, v.tuple))
        .collect()
}

/// Run `scenario` under every preset, each twice, asserting determinism
/// and baseline-relative safety. Panics (with a replay recipe) on any
/// violation; returns one [`DstReport`] per preset on success.
///
/// The closure must be a pure function of `(&FaultConfig, seed)` — it
/// builds the world, runs the workload, and returns the outcome.
pub fn run_scenario<F>(scenario: &str, seed: u64, run: F) -> Vec<DstReport>
where
    F: Fn(&FaultConfig, u64) -> DstOutcome,
{
    let baseline = run(&FaultConfig::calm(), seed);
    assert!(
        baseline.fault_log.is_empty(),
        "{scenario}: calm preset must inject nothing, got {:?}",
        baseline.fault_log.events()
    );
    let baseline_fp = KnowledgeFingerprint::of(&baseline.world);

    let mut reports = Vec::new();
    for (preset, config) in FaultConfig::presets() {
        let a = run(&config, seed);
        let b = run(&config, seed);

        // Determinism: identical fault schedule and knowledge tables.
        assert_eq!(
            a.fault_log, b.fault_log,
            "{scenario}/{preset}: FaultLog diverged between two runs of \
             seed {seed} — the run is not a pure function of (seed, config)"
        );
        let fp_a = KnowledgeFingerprint::of(&a.world);
        let fp_b = KnowledgeFingerprint::of(&b.world);
        assert_eq!(
            fp_a, fp_b,
            "{scenario}/{preset}: knowledge tables diverged between two \
             runs of seed {seed}"
        );

        // Safety: no coupling the calm run doesn't already have.
        let fresh = new_couplings(&baseline.world, &a.world);
        assert!(
            fresh.is_empty(),
            "{scenario}/{preset}: faults created new couplings {fresh:?} \
             — replay with seed {seed} and config {config:?}"
        );

        // Privacy of recovery: re-randomized retransmission means no two
        // attempts of one request ever share a ciphertext, under any tier.
        assert!(
            a.retry_linkage.is_empty(),
            "{scenario}/{preset}: attempts linkable by ciphertext equality \
             {:?} — replay with seed {seed}",
            a.retry_linkage
        );

        let tables_match_baseline = fp_a == baseline_fp;

        // The harsh completion bar: every request answered, and the
        // recovered run's knowledge tables byte-identical to the
        // fault-free run (retries and failovers taught no entity
        // anything new).
        if preset == "harsh" {
            assert!(
                a.completed,
                "{scenario}/harsh: no end-to-end progress despite the \
                 recovery layer — replay with seed {seed}"
            );
            if let Some(expected) = a.expected_units {
                assert_eq!(
                    a.completed_units, expected,
                    "{scenario}/harsh: completed {}/{} work units — the \
                     recovery layer failed to finish the workload; replay \
                     with seed {seed}",
                    a.completed_units, expected
                );
            }
            assert_eq!(
                fp_a, baseline_fp,
                "{scenario}/harsh: recovered run's knowledge tables differ \
                 from the fault-free baseline — recovery leaked knowledge; \
                 replay with seed {seed}"
            );
        }

        reports.push(DstReport {
            scenario: scenario.to_string(),
            preset: preset.to_string(),
            seed,
            faults_injected: a.fault_log.len(),
            completed: a.completed,
            completed_units: a.completed_units,
            expected_units: a.expected_units,
            tables_match_baseline,
            new_couplings: fresh,
        });
    }
    reports
}

/// [`run_scenario`] specialized to the unified [`Scenario`] trait: runs
/// `S` on `cfg` under every preset (twice each) **with the standard
/// recovery layer enabled** and checks determinism, baseline-relative
/// safety, retry unlinkability, and the harsh completion bar. The
/// canonical way to DST a §3 system.
///
/// Recovery is enabled for the calm baseline too: the baseline must
/// share the faulted runs' topology and provisioning (backup routes,
/// retry-headroom token batches) for the table-equality comparison to
/// mean anything. Calm runs fire zero retries, so this changes no
/// knowledge.
pub fn run_scenario_for<S: Scenario>(seed: u64, cfg: &S::Config) -> Vec<DstReport> {
    run_scenario_for_with::<S>(seed, cfg, &dcp_core::RunOptions::default())
}

/// [`run_scenario_for`] with explicit run plumbing: the fault preset and
/// recovery layer still come from the battery, but `base`'s simulator
/// knobs (event queue, trace recording, metrics streaming) are applied
/// to every run. The queue-swap equivalence gate drives this with
/// [`QueueKind::BinaryHeap`](dcp_core::QueueKind) vs the timer-wheel
/// default and byte-diffs the probe JSON.
pub fn run_scenario_for_with<S: Scenario>(
    seed: u64,
    cfg: &S::Config,
    base: &dcp_core::RunOptions,
) -> Vec<DstReport> {
    run_scenario(S::NAME, seed, |config, seed| {
        let mut opts = dcp_core::RunOptions::recovered(config);
        opts.queue = base.queue;
        opts.record_trace = base.record_trace;
        opts.streaming_metrics = base.streaming_metrics;
        let report = S::run_with(cfg, seed, &opts);
        DstOutcome::from_report(&report)
    })
}

/// The harsh-preset recovery probe for one world: a recovered fault-free
/// baseline plus a recovered [`FaultConfig::harsh`] run (twice, for
/// determinism), asserting the full completion bar — every work unit
/// finished, knowledge tables byte-identical to the baseline, no attempt
/// linkage, no new couplings. Returns the harsh-cell [`DstReport`].
///
/// This is [`run_scenario_for`] narrowed to the one preset that carries
/// the completion bar, so CI can sweep it over more worlds than the full
/// battery affords.
pub fn run_recovery_probe_for<S: Scenario>(seed: u64, cfg: &S::Config) -> DstReport {
    run_recovery_probe_for_with::<S>(seed, cfg, &dcp_core::RunOptions::default())
}

/// [`run_recovery_probe_for`] with explicit simulator knobs — see
/// [`run_scenario_for_with`].
pub fn run_recovery_probe_for_with<S: Scenario>(
    seed: u64,
    cfg: &S::Config,
    base: &dcp_core::RunOptions,
) -> DstReport {
    let run = |config: &FaultConfig, seed: u64| {
        let mut opts = dcp_core::RunOptions::recovered(config);
        opts.queue = base.queue;
        opts.record_trace = base.record_trace;
        opts.streaming_metrics = base.streaming_metrics;
        let report = S::run_with(cfg, seed, &opts);
        DstOutcome::from_report(&report)
    };
    let scenario = S::NAME;
    let baseline = run(&FaultConfig::calm(), seed);
    assert!(
        baseline.fault_log.is_empty(),
        "{scenario}: calm preset must inject nothing"
    );
    let baseline_fp = KnowledgeFingerprint::of(&baseline.world);

    let harsh = FaultConfig::harsh();
    let a = run(&harsh, seed);
    let b = run(&harsh, seed);
    assert_eq!(
        a.fault_log, b.fault_log,
        "{scenario}/harsh: FaultLog diverged between two runs of seed {seed}"
    );
    let fp_a = KnowledgeFingerprint::of(&a.world);
    assert_eq!(
        fp_a,
        KnowledgeFingerprint::of(&b.world),
        "{scenario}/harsh: knowledge tables diverged between two runs of seed {seed}"
    );
    let fresh = new_couplings(&baseline.world, &a.world);
    assert!(
        fresh.is_empty(),
        "{scenario}/harsh: faults created new couplings {fresh:?} — replay with seed {seed}"
    );
    assert!(
        a.retry_linkage.is_empty(),
        "{scenario}/harsh: attempts linkable by ciphertext equality {:?} — replay with seed {seed}",
        a.retry_linkage
    );
    assert!(
        a.completed,
        "{scenario}/harsh: no end-to-end progress despite the recovery layer — seed {seed}"
    );
    if let Some(expected) = a.expected_units {
        assert_eq!(
            a.completed_units, expected,
            "{scenario}/harsh: completed {}/{} work units — replay with seed {seed}",
            a.completed_units, expected
        );
    }
    assert_eq!(
        fp_a, baseline_fp,
        "{scenario}/harsh: recovered run's knowledge tables differ from the \
         fault-free baseline — recovery leaked knowledge; replay with seed {seed}"
    );

    DstReport {
        scenario: scenario.to_string(),
        preset: "harsh".to_string(),
        seed,
        faults_injected: a.fault_log.len(),
        completed: a.completed,
        completed_units: a.completed_units,
        expected_units: a.expected_units,
        tables_match_baseline: true,
        new_couplings: fresh,
    }
}

/// The aggregate of a multi-seed harsh recovery sweep for one scenario —
/// the artifact the CI `dst_recover` job byte-diffs between the
/// sequential and parallel executors.
#[derive(Clone, Debug, PartialEq, Serialize)]
pub struct RecoverySweepReport {
    /// Scenario name.
    pub scenario: String,
    /// The sweep's master seed (per-world seeds are derived from it).
    pub master_seed: u64,
    /// Number of independent worlds.
    pub worlds: u64,
    /// Total faults injected across all harsh worlds.
    pub total_faults: u64,
    /// Worlds that completed the full workload under harsh — always equal
    /// to `worlds` when the probe returns (the completion bar panics
    /// otherwise).
    pub completed_harsh: u64,
    /// Total work units finished across the sweep.
    pub completed_units: u64,
    /// Per-world harsh reports, in index order.
    pub entries: Vec<DstReport>,
}

/// Run the harsh recovery probe ([`run_recovery_probe_for`]) at every
/// seed of `builder`'s sweep, on `exec`. The aggregate is identical for
/// every conforming executor.
pub fn sweep_recovery_probe_for<S, X>(
    cfg: &S::Config,
    builder: &SweepBuilder,
    exec: &X,
) -> RecoverySweepReport
where
    S: Scenario,
    S::Config: Sync,
    X: SweepExecutor + ?Sized,
{
    sweep_recovery_probe_for_with::<S, X>(cfg, builder, exec, &dcp_core::RunOptions::default())
}

/// [`sweep_recovery_probe_for`] with explicit simulator knobs — see
/// [`run_scenario_for_with`].
pub fn sweep_recovery_probe_for_with<S, X>(
    cfg: &S::Config,
    builder: &SweepBuilder,
    exec: &X,
    base: &dcp_core::RunOptions,
) -> RecoverySweepReport
where
    S: Scenario,
    S::Config: Sync,
    X: SweepExecutor + ?Sized,
{
    let run = builder.run_on(exec, |job| {
        run_recovery_probe_for_with::<S>(job.seed, cfg, base)
    });
    let mut report = RecoverySweepReport {
        scenario: S::NAME.to_string(),
        master_seed: builder.master_seed(),
        worlds: builder.world_count(),
        total_faults: 0,
        completed_harsh: 0,
        completed_units: 0,
        entries: Vec::with_capacity(run.entries.len()),
    };
    for entry in &run.entries {
        let r = &entry.result;
        report.total_faults += r.faults_injected as u64;
        report.completed_units += r.completed_units;
        if r.completed {
            report.completed_harsh += 1;
        }
        report.entries.push(r.clone());
    }
    report
}

/// One world of a multi-seed DST sweep: the full preset battery run at
/// one derived seed.
#[derive(Clone, Debug, PartialEq, Serialize)]
pub struct DstSweepEntry {
    /// Zero-based world index.
    pub index: u64,
    /// The world's derived seed ([`dcp_core::sweep::derive_seed`]).
    pub seed: u64,
    /// One [`DstReport`] per fault preset, in preset order.
    pub reports: Vec<DstReport>,
}

/// The aggregate of a multi-seed DST sweep for one scenario. Built by an
/// ordered fold over world index, so the same bytes come out of the
/// parallel and sequential executors — the artifact the CI determinism
/// diff compares.
#[derive(Clone, Debug, PartialEq, Serialize)]
pub struct DstSweepReport {
    /// Scenario name.
    pub scenario: String,
    /// The sweep's master seed (per-world seeds are derived from it).
    pub master_seed: u64,
    /// Number of independent worlds.
    pub worlds: u64,
    /// Total faults injected across all worlds and presets.
    pub total_faults: u64,
    /// Worlds whose workload completed under the `moderate` preset (the
    /// liveness bar; `chaos` only promises safety).
    pub completed_moderate: u64,
    /// Worlds whose workload fully completed under the `harsh` preset —
    /// always equal to `worlds` when the harness returns (the harsh
    /// completion bar panics otherwise).
    pub completed_harsh: u64,
    /// Total fault-created couplings across the sweep — always zero when
    /// the harness returns (any violation panics with a replay recipe).
    pub new_couplings: u64,
    /// Per-world results, in index order.
    pub entries: Vec<DstSweepEntry>,
}

/// Run the full DST battery ([`run_scenario_for`]) at every seed of
/// `builder`'s sweep, on `exec`. Each world independently asserts
/// determinism and baseline-relative safety; the returned aggregate is
/// identical for every conforming executor.
pub fn sweep_scenario_for<S, X>(cfg: &S::Config, builder: &SweepBuilder, exec: &X) -> DstSweepReport
where
    S: Scenario,
    S::Config: Sync,
    X: SweepExecutor + ?Sized,
{
    sweep_scenario_for_with::<S, X>(cfg, builder, exec, &dcp_core::RunOptions::default())
}

/// [`sweep_scenario_for`] with explicit simulator knobs — see
/// [`run_scenario_for_with`]. The queue-swap equivalence gate runs the
/// same sweep under both [`QueueKind`](dcp_core::QueueKind)s and
/// byte-diffs the serialized aggregates.
pub fn sweep_scenario_for_with<S, X>(
    cfg: &S::Config,
    builder: &SweepBuilder,
    exec: &X,
    base: &dcp_core::RunOptions,
) -> DstSweepReport
where
    S: Scenario,
    S::Config: Sync,
    X: SweepExecutor + ?Sized,
{
    let run = builder.run_on(exec, |job| run_scenario_for_with::<S>(job.seed, cfg, base));
    let mut report = DstSweepReport {
        scenario: S::NAME.to_string(),
        master_seed: builder.master_seed(),
        worlds: builder.world_count(),
        total_faults: 0,
        completed_moderate: 0,
        completed_harsh: 0,
        new_couplings: 0,
        entries: Vec::with_capacity(run.entries.len()),
    };
    for entry in &run.entries {
        for r in &entry.result {
            report.total_faults += r.faults_injected as u64;
            report.new_couplings += r.new_couplings.len() as u64;
            if r.preset == "moderate" && r.completed {
                report.completed_moderate += 1;
            }
            if r.preset == "harsh" && r.completed {
                report.completed_harsh += 1;
            }
        }
        report.entries.push(DstSweepEntry {
            index: entry.index,
            seed: entry.seed,
            reports: entry.result.clone(),
        });
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::FaultKind;
    use dcp_core::{DataKind, IdentityKind, InfoItem};

    fn toy_world(couple_relay: bool) -> World {
        let mut w = World::new();
        let uo = w.add_org("user");
        let ro = w.add_org("relay-co");
        let alice = w.add_user();
        let client = w.add_entity("Client", uo, Some(alice));
        let relay = w.add_entity("Relay", ro, None);
        w.record(
            client,
            InfoItem::sensitive_identity(alice, IdentityKind::Any),
        );
        w.record(client, InfoItem::sensitive_data(alice, DataKind::Payload));
        w.record(
            relay,
            InfoItem::sensitive_identity(alice, IdentityKind::Any),
        );
        if couple_relay {
            w.record(relay, InfoItem::sensitive_data(alice, DataKind::Payload));
        }
        w
    }

    #[test]
    fn fingerprint_is_stable_and_sensitive() {
        let a = KnowledgeFingerprint::of(&toy_world(false));
        let b = KnowledgeFingerprint::of(&toy_world(false));
        assert_eq!(a, b);
        let c = KnowledgeFingerprint::of(&toy_world(true));
        assert_ne!(a, c);
        assert_eq!(a.rows[1].0, "Relay");
        assert_eq!(a.rows[1].1, vec!["(▲, −)".to_string()]);
    }

    #[test]
    fn new_couplings_is_baseline_relative() {
        // Relay coupled in both → not "new". User's own device never counts.
        assert!(new_couplings(&toy_world(true), &toy_world(true)).is_empty());
        assert!(new_couplings(&toy_world(false), &toy_world(false)).is_empty());
        let fresh = new_couplings(&toy_world(false), &toy_world(true));
        assert_eq!(fresh.len(), 1);
        assert!(fresh[0].starts_with("Relay"), "{fresh:?}");
    }

    fn toy_outcome(world: World, log: FaultLog, completed: bool) -> DstOutcome {
        DstOutcome {
            world,
            fault_log: log,
            completed,
            completed_units: completed as u64,
            expected_units: None,
            retry_linkage: Vec::new(),
        }
    }

    #[test]
    fn harness_passes_a_safe_deterministic_scenario() {
        let reports = run_scenario("toy", 11, |config, seed| {
            let mut log = FaultLog::default();
            if config.enabled {
                // A deterministic pretend-fault so logs are nonempty.
                log.push(seed, FaultKind::Drop { src: 0, dst: 1 });
            }
            toy_outcome(toy_world(false), log, true)
        });
        assert_eq!(reports.len(), 4);
        assert!(reports.iter().all(|r| r.new_couplings.is_empty()));
        assert!(reports.iter().all(|r| r.tables_match_baseline));
        assert_eq!(reports[0].faults_injected, 0, "calm");
        assert_eq!(reports[2].preset, "harsh");
        assert_eq!(reports[3].faults_injected, 1, "chaos");
    }

    #[test]
    #[should_panic(expected = "created new couplings")]
    fn harness_catches_fault_induced_coupling() {
        run_scenario("leaky", 12, |config, _seed| {
            toy_outcome(toy_world(config.enabled), FaultLog::default(), true)
        });
    }

    #[test]
    #[should_panic(expected = "recovery layer failed to finish")]
    fn harness_enforces_the_harsh_completion_bar() {
        run_scenario("lossy", 13, |config, _seed| {
            // Completes 1 of 2 units whenever faults are on: passes the
            // moderate progress bar but not the harsh completion bar.
            let done = if config.enabled { 1 } else { 2 };
            DstOutcome {
                world: toy_world(false),
                fault_log: FaultLog::default(),
                completed: true,
                completed_units: done,
                expected_units: Some(2),
                retry_linkage: Vec::new(),
            }
        });
    }

    #[test]
    #[should_panic(expected = "linkable by ciphertext equality")]
    fn harness_rejects_linkable_retries() {
        run_scenario("replayer", 14, |config, _seed| {
            let linkage = if config.enabled {
                vec!["flow 0 seq 0: attempts 0 and 1 share ciphertext".into()]
            } else {
                Vec::new()
            };
            DstOutcome {
                world: toy_world(false),
                fault_log: FaultLog::default(),
                completed: true,
                completed_units: 1,
                expected_units: None,
                retry_linkage: linkage,
            }
        });
    }

    #[test]
    #[should_panic(expected = "differ from the fault-free baseline")]
    fn harness_enforces_table_equality_under_harsh() {
        run_scenario("leaky-knowledge", 15, |config, _seed| {
            // Faulted runs accrue extra (uncoupled) relay knowledge: safe
            // by the coupling test, but a table mismatch under harsh.
            let mut w = toy_world(false);
            if config.enabled {
                let relay = w.entity_by_name("Relay").id;
                let alice = w.users()[0];
                w.record(relay, InfoItem::plain_data(alice, DataKind::Payload));
            }
            toy_outcome(w, FaultLog::default(), true)
        });
    }
}
