//! Fail-closed stream codec for the production transport.
//!
//! Reuses the workspace wire format (`dcp-transport`'s
//! `type:u8 ‖ len:u32be ‖ payload`) but hardens the reassembly for bytes
//! arriving from *real* sockets: the length prefix is validated against a
//! hard cap **before** any buffering commitment, so a hostile peer
//! claiming a 4 GiB frame cannot make the server allocate 4 GiB — or
//! even hold the connection's buffer hostage. Every failure is a typed
//! error the server answers by closing that one connection; nothing here
//! can panic on wire input (the proptest in `tests/serve_loopback.rs`
//! fuzzes exactly this surface).

use dcp_transport::frame::{Frame, FrameType};
use dcp_transport::TransportError;
use std::io::Write;

/// Hard cap on a single frame's payload arriving over a real socket.
/// Every protocol message in the workspace is well under this; anything
/// larger is an attack or a bug, and is rejected *from the length prefix
/// alone* — before buffering a single payload byte.
pub const MAX_FRAME_PAYLOAD: usize = 1 << 20;

/// Incremental frame reassembler for socket streams, the hardened
/// production twin of `dcp_transport::frame::Framer`.
///
/// Differences from the sim-side `Framer`, both fail-closed:
/// * unknown type tags poison the stream immediately (first byte);
/// * a length prefix over [`MAX_FRAME_PAYLOAD`] errors before buffering.
///
/// After any error the reader must be discarded along with its
/// connection — resynchronizing inside a hostile byte stream is
/// guesswork, and guessing is exactly what fail-closed forbids.
#[derive(Default)]
pub struct FrameReader {
    buf: Vec<u8>,
}

impl FrameReader {
    /// An empty reader.
    pub fn new() -> Self {
        Self::default()
    }

    /// Feed stream bytes; returns every frame completed by this chunk.
    ///
    /// Errors with [`TransportError::BadFrame`] on an unknown type tag
    /// and [`TransportError::Oversize`] on a length prefix over the cap.
    pub fn push(&mut self, chunk: &[u8]) -> Result<Vec<Frame>, TransportError> {
        self.buf.extend_from_slice(chunk);
        let mut frames = Vec::new();
        loop {
            if self.buf.is_empty() {
                break;
            }
            // Validate the type tag from the very first byte: a garbage
            // stream is rejected before it can buffer anything.
            if frame_type_of(self.buf[0]).is_none() {
                return Err(TransportError::BadFrame);
            }
            if self.buf.len() < 5 {
                break;
            }
            let len =
                u32::from_be_bytes([self.buf[1], self.buf[2], self.buf[3], self.buf[4]]) as usize;
            if len > MAX_FRAME_PAYLOAD {
                return Err(TransportError::Oversize);
            }
            if self.buf.len() < 5 + len {
                break;
            }
            let (frame, used) = Frame::decode_prefix(&self.buf)?;
            frames.push(frame);
            self.buf.drain(..used);
        }
        Ok(frames)
    }

    /// Bytes buffered awaiting completion — bounded by `5 +`
    /// [`MAX_FRAME_PAYLOAD`] for any input, hostile or not.
    pub fn pending(&self) -> usize {
        self.buf.len()
    }
}

fn frame_type_of(tag: u8) -> Option<FrameType> {
    match tag {
        0x01 => Some(FrameType::Data),
        0x02 => Some(FrameType::Connect),
        0x03 => Some(FrameType::Response),
        0x04 => Some(FrameType::Chaff),
        0x05 => Some(FrameType::Token),
        _ => None,
    }
}

/// Encode and write one frame to a (blocking) stream. The length check
/// happens in `Frame::encode` — an oversize payload is a local bug and
/// surfaces as an error here rather than a truncated frame on the wire.
pub fn write_frame<W: Write>(
    w: &mut W,
    ftype: FrameType,
    payload: &[u8],
) -> Result<(), crate::ServeError> {
    let bytes = Frame::new(ftype, payload.to_vec())
        .encode()
        .map_err(crate::ServeError::Wire)?;
    w.write_all(&bytes).map_err(crate::ServeError::Io)?;
    w.flush().map_err(crate::ServeError::Io)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reassembles_across_arbitrary_splits() {
        let f1 = Frame::new(FrameType::Data, vec![1; 100]);
        let f2 = Frame::new(FrameType::Response, vec![2; 7]);
        let mut stream = f1.encode().unwrap();
        stream.extend_from_slice(&f2.encode().unwrap());
        let mut r = FrameReader::new();
        let mut got = Vec::new();
        for chunk in stream.chunks(3) {
            got.extend(r.push(chunk).unwrap());
        }
        assert_eq!(got, vec![f1, f2]);
        assert_eq!(r.pending(), 0);
    }

    #[test]
    fn oversize_length_prefix_rejected_before_buffering() {
        // Claims a 16 MiB payload; only the 5-byte header arrives. The
        // reader must reject from the prefix alone.
        let mut hdr = vec![0x01];
        hdr.extend_from_slice(&(16u32 << 20).to_be_bytes());
        let mut r = FrameReader::new();
        assert_eq!(r.push(&hdr).unwrap_err(), TransportError::Oversize);
    }

    #[test]
    fn bad_tag_poisons_immediately() {
        let mut r = FrameReader::new();
        assert_eq!(r.push(&[0xfe]).unwrap_err(), TransportError::BadFrame);
    }

    #[test]
    fn pending_is_bounded() {
        // A maximal valid frame buffers at most 5 + cap bytes.
        let mut hdr = vec![0x01];
        hdr.extend_from_slice(&(MAX_FRAME_PAYLOAD as u32).to_be_bytes());
        let mut r = FrameReader::new();
        assert!(r.push(&hdr).unwrap().is_empty());
        assert!(r.pending() <= 5 + MAX_FRAME_PAYLOAD);
    }
}
