//! Role hosts: the event loop that runs [`WireRole`]s over real sockets.
//!
//! One OS thread per role (thread-per-role, the workspace's minimal
//! stand-in for thread-per-core), each owning a nonblocking listener and
//! a bounded connection set. Accept backpressure is literal: a host at
//! its connection cap simply stops calling `accept(2)`, letting the
//! kernel's SYN backlog absorb or shed the excess.
//!
//! ## Connection hello and the label side channel
//!
//! The first frame on every connection is a CONNECT hello:
//! `nonce:u64be ‖ sender:u16be`. In loopback mode the nonce must have
//! been pre-registered (single-use) by the sending host on the shared
//! [`LabelBus`] — a rogue local connection that invents a hello is
//! poisoned and observes nothing. Verified data frames then pop exactly
//! one label per frame from the bus's per-direction FIFO (valid because
//! TCP preserves order within a connection and each directed pair uses
//! one connection), and the engine replays the simulator's delivery
//! rule — `world.observe(entity, &label)` *before* the role sees the
//! frame. In multi-process mode there is no shared bus or world: the
//! hello only identifies the peer, frames deliver with `Label::Public`,
//! and the twin check belongs to the loopback run.
//!
//! ## Fail-closed invariants
//!
//! * A decode error ([`FrameReader`]) closes that connection; no resync
//!   guessing.
//! * A frame before a (valid) hello, a second hello, or a data frame
//!   with no queued label closes the connection.
//! * A role panic tears down the run with [`ServeError::RoleCrash`];
//!   hostile *wire bytes* can never cause one (roles are written
//!   fail-closed, and `tests/serve_loopback.rs` fuzzes the decoder).

use std::collections::{HashMap, VecDeque};
use std::io::Read;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use dcp_core::role::RoleKind;
use dcp_core::{EntityId, Label, World};
use dcp_runtime::seam::{
    apply_effects, PeerId, ServeSpec, WireCtx, WireEffects, WireMsg, WireRole,
};
use dcp_transport::frame::{Frame, FrameType};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::codec::{write_frame, FrameReader};
use crate::{ServeError, ServeOutcome};

/// Engine knobs.
#[derive(Clone, Debug)]
pub struct ServeConfig {
    /// Per-host inbound connection cap; at the cap the host stops
    /// accepting (backpressure) until a connection closes.
    pub max_conns: usize,
    /// Seed for engine randomness (role RNGs, hello nonces). The same
    /// seed the simulated twin ran with, by convention.
    pub seed: u64,
    /// Wall-clock bound on the whole run: when it passes, shutdown is
    /// signalled regardless of progress (a hung peer must not hang the
    /// process forever).
    pub deadline: Duration,
    /// Loopback only: if set, the engine sends every role's bound
    /// address (indexed by peer id) here right after binding, before any
    /// role starts. Exists so tests can aim hostile traffic at live
    /// listeners; production callers leave it `None`.
    pub port_report: Option<std::sync::mpsc::Sender<Vec<SocketAddr>>>,
    /// Dial attempts per outbound connection (minimum 1). A peer that is
    /// still binding, or briefly restarting, refuses the first connect;
    /// the host retries with backoff instead of failing the run, and a
    /// peer still unreachable after the budget is a typed
    /// [`ServeError::DialExhausted`](crate::ServeError::DialExhausted).
    pub dial_attempts: u32,
    /// Base backoff between dial attempts; attempt `k` waits roughly
    /// `k × dial_backoff`, with ±50% seeded jitter so a herd of
    /// redialing hosts never re-synchronizes.
    pub dial_backoff: Duration,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            max_conns: 64,
            seed: 0,
            deadline: Duration::from_secs(30),
            port_report: None,
            dial_attempts: 4,
            dial_backoff: Duration::from_millis(25),
        }
    }
}

/// The loopback label side channel plus the hello-nonce registry.
///
/// Labels are verification shadow state — they never touch a socket.
/// Each directed role pair `(from, to)` keeps a FIFO of labels, pushed
/// by the sender *before* the frame bytes are written and popped by the
/// receiver per delivered frame; TCP's in-order delivery on the single
/// connection per pair keeps bytes and labels in lock-step.
#[derive(Default)]
pub(crate) struct LabelBus {
    queues: Mutex<HashMap<(u16, u16), VecDeque<Label>>>,
    nonces: Mutex<HashMap<u64, u16>>,
}

impl LabelBus {
    fn push(&self, from: u16, to: u16, label: Label) {
        self.queues
            .lock()
            .unwrap()
            .entry((from, to))
            .or_default()
            .push_back(label);
    }

    fn pop(&self, from: u16, to: u16) -> Option<Label> {
        self.queues
            .lock()
            .unwrap()
            .get_mut(&(from, to))
            .and_then(VecDeque::pop_front)
    }

    fn register_nonce(&self, nonce: u64, sender: u16) {
        self.nonces.lock().unwrap().insert(nonce, sender);
    }

    /// Single-use: a replayed hello finds its nonce gone and fails.
    fn take_nonce(&self, nonce: u64) -> Option<u16> {
        self.nonces.lock().unwrap().remove(&nonce)
    }
}

/// One full-duplex connection: either accepted (peer learned from the
/// hello) or dialed (peer known at connect time). A directed role pair
/// uses exactly one connection — replies ride the requester's dial — so
/// the label side channel's per-pair FIFO stays aligned with TCP's
/// in-order delivery.
struct Conn {
    stream: TcpStream,
    reader: FrameReader,
    /// `Some(peer)` once identified: immediately for dialed connections,
    /// after a valid hello for accepted ones. Frames on an accepted
    /// connection before its hello are a protocol violation and close it.
    peer: Option<u16>,
    /// Accepted connections expect a hello; dialed ones must never see
    /// one.
    dialed: bool,
}

/// Engine state shared by every host of one run.
struct SharedRun {
    /// Loopback only: the knowledge-ledger twin.
    world: Option<Arc<Mutex<World>>>,
    /// Loopback only: the label side channel.
    bus: Option<Arc<LabelBus>>,
    shutdown: Arc<AtomicBool>,
    units: Arc<AtomicU64>,
    initiators_done: Arc<AtomicUsize>,
}

struct RoleHost {
    idx: u16,
    entity: EntityId,
    kind: RoleKind,
    role: Box<dyn WireRole>,
    listener: TcpListener,
    peer_addrs: HashMap<u16, SocketAddr>,
    conns: Vec<Conn>,
    /// Role-visible RNG (sealing operations).
    rng: StdRng,
    /// Engine-only RNG (hello nonces) — separate so engine draws can
    /// never perturb protocol-level randomness.
    nonce_rng: StdRng,
    shared: SharedRun,
    max_conns: usize,
    dial_attempts: u32,
    dial_backoff: Duration,
}

impl RoleHost {
    fn run(mut self) -> Result<(), ServeError> {
        self.listener
            .set_nonblocking(true)
            .map_err(ServeError::Io)?;
        let fx = {
            let mut ctx = WireCtx::new(&mut self.rng);
            self.role.on_start(&mut ctx);
            ctx.finish()
        };
        self.apply(fx)?;
        let mut buf = [0u8; 4096];
        loop {
            if self.shared.shutdown.load(Ordering::SeqCst) {
                break;
            }
            if self.kind == RoleKind::Initiator && self.role.finished() {
                self.shared.initiators_done.fetch_add(1, Ordering::SeqCst);
                break;
            }
            let mut progress = false;

            // Accept with backpressure: at the cap, simply don't accept.
            while self.conns.len() < self.max_conns {
                match self.listener.accept() {
                    Ok((stream, _)) => {
                        stream.set_nonblocking(true).map_err(ServeError::Io)?;
                        self.conns.push(Conn {
                            stream,
                            reader: FrameReader::new(),
                            peer: None,
                            dialed: false,
                        });
                        progress = true;
                    }
                    Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                    Err(_) => break,
                }
            }

            // Drain readable connections; any per-connection failure
            // closes that connection only.
            let mut i = 0;
            while i < self.conns.len() {
                match self.conns[i].stream.read(&mut buf) {
                    Ok(0) => {
                        self.conns.swap_remove(i);
                        continue;
                    }
                    Ok(n) => {
                        progress = true;
                        let frames = match self.conns[i].reader.push(&buf[..n]) {
                            Ok(frames) => frames,
                            Err(_) => {
                                // Undecodable stream: fail closed.
                                self.conns.swap_remove(i);
                                continue;
                            }
                        };
                        let mut poisoned = false;
                        for frame in frames {
                            if !self.handle_frame(i, frame)? {
                                poisoned = true;
                                break;
                            }
                        }
                        if poisoned {
                            self.conns.swap_remove(i);
                            continue;
                        }
                    }
                    Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {}
                    Err(_) => {
                        self.conns.swap_remove(i);
                        continue;
                    }
                }
                i += 1;
            }

            if !progress {
                std::thread::sleep(Duration::from_micros(300));
            }
        }
        Ok(())
    }

    /// Process one decoded frame on connection `ci`. `Ok(false)` poisons
    /// the connection (fail closed); errors tear the run down.
    fn handle_frame(&mut self, ci: usize, frame: Frame) -> Result<bool, ServeError> {
        // A hello on a connection *we* dialed is a protocol violation no
        // matter what it claims.
        if self.conns[ci].dialed && frame.ftype == FrameType::Connect {
            return Ok(false);
        }
        match (self.conns[ci].peer, frame.ftype) {
            (None, FrameType::Connect) => {
                if frame.payload.len() != 10 {
                    return Ok(false);
                }
                let nonce = u64::from_be_bytes(frame.payload[..8].try_into().expect("8 bytes"));
                let from = u16::from_be_bytes([frame.payload[8], frame.payload[9]]);
                match &self.shared.bus {
                    // Loopback: the hello must present a nonce the
                    // claimed sender registered — single-use, so replays
                    // fail too. A rogue connection observes nothing.
                    Some(bus) => match bus.take_nonce(nonce) {
                        Some(registered) if registered == from => {
                            self.conns[ci].peer = Some(from);
                            Ok(true)
                        }
                        _ => Ok(false),
                    },
                    // Multi-process: the hello is identification, not
                    // authentication (that is the transport-security
                    // layer's job, out of scope here — see docs/SERVE.md).
                    None => {
                        self.conns[ci].peer = Some(from);
                        Ok(true)
                    }
                }
            }
            // Data before a hello, or a second hello: protocol violation.
            (None, _) | (Some(_), FrameType::Connect) => Ok(false),
            (Some(from), ftype) => {
                let label = match &self.shared.bus {
                    Some(bus) => match bus.pop(from, self.idx) {
                        Some(label) => label,
                        // Bytes without a shadow label would mean the
                        // sender bypassed the seam: desync, fail closed.
                        None => return Ok(false),
                    },
                    None => Label::Public,
                };
                // The simulator's delivery rule, replayed: the receiving
                // entity observes the label before protocol processing.
                if let Some(world) = &self.shared.world {
                    world.lock().unwrap().observe(self.entity, &label);
                }
                let fx = {
                    let mut ctx = WireCtx::new(&mut self.rng);
                    self.role.on_frame(
                        &mut ctx,
                        PeerId(from),
                        WireMsg {
                            ftype,
                            payload: frame.payload,
                            label,
                        },
                    );
                    ctx.finish()
                };
                self.apply(fx)?;
                Ok(true)
            }
        }
    }

    fn apply(&mut self, fx: WireEffects) -> Result<(), ServeError> {
        if let Some(world) = &self.shared.world {
            apply_effects(&mut world.lock().unwrap(), self.entity, &fx);
        }
        if fx.units_done > 0 {
            self.shared.units.fetch_add(fx.units_done, Ordering::SeqCst);
        }
        for (to, msg) in fx.out {
            self.send(to.0, msg)?;
        }
        Ok(())
    }

    fn send(&mut self, to: u16, msg: WireMsg) -> Result<(), ServeError> {
        // Prefer the connection we already share with this peer — the
        // one they dialed to us, or one we dialed earlier. Replies riding
        // the requester's own connection is what lets a pure responder
        // (the origin) run with no peer addresses at all, and keeps each
        // pair on a single TCP stream so the loopback label FIFO stays
        // aligned with byte order.
        if !self.conns.iter().any(|c| c.peer == Some(to)) {
            let addr = *self
                .peer_addrs
                .get(&to)
                .ok_or(ServeError::UnknownPeer(to))?;
            let mut stream = dial_with_backoff(
                addr,
                to,
                self.dial_attempts,
                self.dial_backoff,
                &mut self.nonce_rng,
            )?;
            let nonce: u64 = self.nonce_rng.gen();
            if let Some(bus) = &self.shared.bus {
                bus.register_nonce(nonce, self.idx);
            }
            let mut hello = nonce.to_be_bytes().to_vec();
            hello.extend_from_slice(&self.idx.to_be_bytes());
            // Hello goes out while the stream still blocks; everything
            // after is nonblocking, full duplex.
            write_frame(&mut stream, FrameType::Connect, &hello)?;
            stream.set_nonblocking(true).map_err(ServeError::Io)?;
            self.conns.push(Conn {
                stream,
                reader: FrameReader::new(),
                peer: Some(to),
                dialed: true,
            });
        }
        // Label rides the side channel, pushed strictly before the frame
        // bytes so the receiver can never see bytes without their label.
        if let Some(bus) = &self.shared.bus {
            bus.push(self.idx, to, msg.label.clone());
        }
        let conn = self
            .conns
            .iter_mut()
            .find(|c| c.peer == Some(to))
            .expect("just ensured");
        write_frame_retry(&mut conn.stream, msg.ftype, &msg.payload)
    }
}

/// Dial a peer with bounded retry: transient refusals (a peer that has
/// not finished binding, or is briefly restarting) are retried with
/// linear backoff plus seeded jitter from the engine-only RNG; a peer
/// still unreachable after the budget is a typed
/// [`ServeError::DialExhausted`], never a hang and never a silent drop.
fn dial_with_backoff(
    addr: SocketAddr,
    peer: u16,
    attempts: u32,
    backoff: Duration,
    jitter_rng: &mut StdRng,
) -> Result<TcpStream, ServeError> {
    let budget = attempts.max(1);
    let mut last = None;
    for attempt in 0..budget {
        match TcpStream::connect(addr) {
            Ok(s) => return Ok(s),
            Err(e) => {
                last = Some(e);
                if attempt + 1 < budget {
                    // Attempt k waits roughly k × backoff, jittered into
                    // [50%, 150%] so redialing hosts spread out.
                    let base = (backoff.as_micros() as u64).max(1) * (attempt as u64 + 1);
                    let jittered = base / 2 + jitter_rng.gen_range(0..=base);
                    std::thread::sleep(Duration::from_micros(jittered));
                }
            }
        }
    }
    Err(ServeError::DialExhausted {
        peer,
        attempts: budget,
        last: last.expect("at least one attempt was made"),
    })
}

/// `write_all` for a nonblocking stream: a full kernel send buffer
/// (`WouldBlock`) means back off briefly and keep going — a partial
/// frame on the wire is never acceptable.
fn write_frame_retry(
    stream: &mut TcpStream,
    ftype: FrameType,
    payload: &[u8],
) -> Result<(), ServeError> {
    use std::io::Write;
    let bytes = Frame::new(ftype, payload.to_vec())
        .encode()
        .map_err(ServeError::Wire)?;
    let mut off = 0;
    while off < bytes.len() {
        match stream.write(&bytes[off..]) {
            Ok(0) => {
                return Err(ServeError::Io(std::io::Error::new(
                    std::io::ErrorKind::WriteZero,
                    "peer closed mid-frame",
                )))
            }
            Ok(n) => off += n,
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_micros(100));
            }
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(e) => return Err(ServeError::Io(e)),
        }
    }
    Ok(())
}

/// Run a whole wiring in one process: every role a thread, traffic over
/// real loopback TCP, labels on the in-memory side channel, the world a
/// shared twin ledger. Returns when every initiator role reports
/// [`WireRole::finished`] (or the deadline passes), after gracefully
/// shutting the service hosts down.
pub fn run_loopback(spec: ServeSpec, cfg: &ServeConfig) -> Result<ServeOutcome, ServeError> {
    let n = spec.roles.len();
    let mut listeners = Vec::with_capacity(n);
    let mut peer_addrs = HashMap::new();
    for i in 0..n {
        let listener = TcpListener::bind("127.0.0.1:0").map_err(ServeError::Io)?;
        peer_addrs.insert(i as u16, listener.local_addr().map_err(ServeError::Io)?);
        listeners.push(listener);
    }
    if let Some(tx) = &cfg.port_report {
        let addrs: Vec<SocketAddr> = (0..n).map(|i| peer_addrs[&(i as u16)]).collect();
        let _ = tx.send(addrs);
    }

    let world = Arc::new(Mutex::new(spec.world));
    let bus = Arc::new(LabelBus::default());
    let shutdown = Arc::new(AtomicBool::new(false));
    let units = Arc::new(AtomicU64::new(0));
    let initiators_done = Arc::new(AtomicUsize::new(0));
    let expected_units = spec.expected_units;

    let mut initiators = 0usize;
    let mut handles = Vec::with_capacity(n);
    for (i, (rs, listener)) in spec.roles.into_iter().zip(listeners).enumerate() {
        if rs.kind == RoleKind::Initiator {
            initiators += 1;
        }
        let host = RoleHost {
            idx: i as u16,
            entity: rs.entity,
            kind: rs.kind,
            role: rs.role,
            listener,
            peer_addrs: peer_addrs.clone(),
            conns: Vec::new(),
            rng: StdRng::seed_from_u64(cfg.seed ^ (0x5e57e ^ (i as u64)).wrapping_mul(0x9e37)),
            nonce_rng: StdRng::seed_from_u64(cfg.seed ^ 0xa0_0e ^ ((i as u64) << 32)),
            shared: SharedRun {
                world: Some(world.clone()),
                bus: Some(bus.clone()),
                shutdown: shutdown.clone(),
                units: units.clone(),
                initiators_done: initiators_done.clone(),
            },
            max_conns: cfg.max_conns,
            dial_attempts: cfg.dial_attempts,
            dial_backoff: cfg.dial_backoff,
        };
        let name = rs.name.clone();
        handles.push((name, std::thread::spawn(move || host.run())));
    }

    // Drive the run: initiators finish on their own; services are shut
    // down gracefully afterwards. The deadline bounds a wedged run.
    let deadline = Instant::now() + cfg.deadline;
    while initiators_done.load(Ordering::SeqCst) < initiators && Instant::now() < deadline {
        std::thread::sleep(Duration::from_millis(1));
    }
    shutdown.store(true, Ordering::SeqCst);

    let mut first_err = None;
    for (name, handle) in handles {
        match handle.join() {
            Ok(Ok(())) => {}
            Ok(Err(e)) => first_err = first_err.or(Some(e)),
            Err(_) => first_err = first_err.or(Some(ServeError::RoleCrash(name))),
        }
    }
    if let Some(e) = first_err {
        return Err(e);
    }

    let world = Arc::try_unwrap(world)
        .map_err(|_| ServeError::RoleCrash("world still shared".into()))?
        .into_inner()
        .unwrap();
    Ok(ServeOutcome {
        world,
        completed_units: units.load(Ordering::SeqCst),
        expected_units,
    })
}

/// Run exactly one role of a wiring in this process, speaking real TCP
/// to peers given as `(peer_name, addr)` pairs. No shared world or label
/// bus exists across processes — bytes flow and the role's protocol
/// logic runs, while knowledge-table verification remains the loopback
/// twin's job. Returns the role's completed units when it finishes (an
/// initiator) or when the deadline passes (services run until then).
pub fn run_role(
    mut spec: ServeSpec,
    role_name: &str,
    listen: SocketAddr,
    peers: &[(String, SocketAddr)],
    cfg: &ServeConfig,
) -> Result<u64, ServeError> {
    let idx = spec
        .role_index(role_name)
        .ok_or_else(|| ServeError::UnknownRole(role_name.to_string()))?;
    let mut peer_addrs = HashMap::new();
    for (name, addr) in peers {
        let pi = spec
            .role_index(name)
            .ok_or_else(|| ServeError::UnknownRole(name.clone()))?;
        peer_addrs.insert(pi as u16, *addr);
    }
    let rs = spec.roles.swap_remove(idx);
    let listener = TcpListener::bind(listen).map_err(ServeError::Io)?;
    let shutdown = Arc::new(AtomicBool::new(false));
    let units = Arc::new(AtomicU64::new(0));
    let host = RoleHost {
        idx: idx as u16,
        entity: rs.entity,
        kind: rs.kind,
        role: rs.role,
        listener,
        peer_addrs,
        conns: Vec::new(),
        rng: StdRng::seed_from_u64(cfg.seed ^ (0x5e57e ^ (idx as u64)).wrapping_mul(0x9e37)),
        nonce_rng: StdRng::seed_from_u64(cfg.seed ^ 0xa0_0e ^ ((idx as u64) << 32)),
        shared: SharedRun {
            world: None,
            bus: None,
            shutdown: shutdown.clone(),
            units: units.clone(),
            initiators_done: Arc::new(AtomicUsize::new(0)),
        },
        max_conns: cfg.max_conns,
        dial_attempts: cfg.dial_attempts,
        dial_backoff: cfg.dial_backoff,
    };
    // The deadline doubles as the service-role lifetime: without a
    // cross-process control plane, "graceful shutdown" for a lone
    // service process is a bounded run.
    let kind = host.kind;
    let deadline_shutdown = shutdown.clone();
    let deadline = cfg.deadline;
    let timer = std::thread::spawn(move || {
        let end = Instant::now() + deadline;
        while Instant::now() < end {
            if deadline_shutdown.load(Ordering::SeqCst) {
                return;
            }
            std::thread::sleep(Duration::from_millis(10));
        }
        deadline_shutdown.store(true, Ordering::SeqCst);
    });
    let result = host.run();
    shutdown.store(true, Ordering::SeqCst);
    let _ = timer.join();
    result?;
    let _ = kind;
    Ok(units.load(Ordering::SeqCst))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::{Ipv4Addr, SocketAddrV4, TcpListener};

    /// Nobody listening and nobody ever will: the dial budget drains and
    /// the caller gets the typed exhaustion error, not a hang.
    #[test]
    fn dial_exhausts_into_typed_error() {
        // Bind-then-drop reserves a port that is closed by the time we dial.
        let addr = {
            let l = TcpListener::bind((Ipv4Addr::LOCALHOST, 0)).unwrap();
            l.local_addr().unwrap()
        };
        let mut rng = StdRng::seed_from_u64(7);
        let err = dial_with_backoff(addr, 3, 3, Duration::from_micros(100), &mut rng)
            .expect_err("closed port must not connect");
        match err {
            ServeError::DialExhausted {
                peer,
                attempts,
                last,
            } => {
                assert_eq!(peer, 3);
                assert_eq!(attempts, 3);
                assert_eq!(last.kind(), std::io::ErrorKind::ConnectionRefused);
            }
            other => panic!("expected DialExhausted, got {other}"),
        }
    }

    /// A peer that binds late (restart, slow start) is reached by the
    /// retry loop instead of failing the whole run on the first refusal.
    #[test]
    fn dial_retries_until_late_listener_appears() {
        let addr = {
            let l = TcpListener::bind((Ipv4Addr::LOCALHOST, 0)).unwrap();
            l.local_addr().unwrap()
        };
        let bind_to = match addr {
            SocketAddr::V4(v4) => SocketAddrV4::new(*v4.ip(), v4.port()),
            SocketAddr::V6(_) => unreachable!("bound v4 above"),
        };
        let listener = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(40));
            let l = TcpListener::bind(bind_to).unwrap();
            // Hold the listener long enough for the dialer to land.
            let _ = l.accept();
        });
        let mut rng = StdRng::seed_from_u64(11);
        let stream = dial_with_backoff(addr, 9, 12, Duration::from_millis(10), &mut rng);
        assert!(
            stream.is_ok(),
            "late listener should be reached: {:?}",
            stream.err()
        );
        drop(stream);
        let _ = listener.join();
    }
}
