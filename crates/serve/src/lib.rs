//! # dcp-serve — the production transport engine
//!
//! Everything else in this workspace runs protocol roles inside the
//! deterministic simulator (`dcp-simnet`). This crate runs the *same*
//! role logic over real TCP sockets: wirings are expressed once as
//! [`dcp_runtime::seam::WireRole`]s, and the engine here hosts them
//! either
//!
//! * **loopback** — every role a thread in one process, traffic over
//!   real `127.0.0.1` sockets, with the knowledge-ledger shadow (the
//!   paper's (▲,●) tables) maintained on an in-memory side channel so a
//!   served run can be byte-compared against its simulated twin; or
//! * **multi-process** — one role per process ([`run_role`]), bytes
//!   only, for actually standing a decoupled deployment up.
//!
//! The engine is deliberately minimal: nonblocking sockets polled by a
//! thread-per-role loop, length-prefixed frames reusing the
//! `dcp-transport` wire format, a bounded connection set whose cap *is*
//! the accept backpressure, and graceful shutdown driven by initiator
//! completion. What it is not minimal about is failure: every byte
//! arriving from a socket is treated as hostile until decoded, and every
//! decode failure closes exactly one connection — nothing in this crate
//! panics on wire input.
//!
//! See `docs/SERVE.md` for the operator view and `docs/ARCHITECTURE.md`
//! for how the sim/prod duality is kept honest.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use dcp_transport::TransportError;

pub mod codec;
pub mod engine;

pub use codec::{FrameReader, MAX_FRAME_PAYLOAD};
pub use engine::{run_loopback, run_role, ServeConfig};

/// Everything that can go wrong hosting roles over real sockets.
#[derive(Debug)]
pub enum ServeError {
    /// An OS-level socket failure on the host's own infrastructure
    /// (bind, accept bookkeeping, writing to a peer we initiated).
    /// Failures on *inbound* connections never surface here — they
    /// close that connection and the run continues.
    Io(std::io::Error),
    /// A frame we were about to send failed wire validation — a local
    /// bug (e.g. oversize payload), never a peer's doing.
    Wire(TransportError),
    /// A role thread panicked or the run's shared state was torn down
    /// inconsistently. Hostile wire bytes must never cause this; the
    /// fail-closed decode path exists so they can't.
    RoleCrash(String),
    /// A role tried to send to a peer id with no known address.
    UnknownPeer(u16),
    /// Every dial attempt to a peer failed: the engine retried with
    /// backoff (`ServeConfig::dial_attempts` × `dial_backoff`) and the
    /// peer never accepted. Carries the final OS error so operators can
    /// tell "refused" (peer down) from "unreachable" (network).
    DialExhausted {
        /// The peer id the host was dialing.
        peer: u16,
        /// How many connect attempts were made.
        attempts: u32,
        /// The last attempt's OS error.
        last: std::io::Error,
    },
    /// A role or peer name that isn't part of the wiring's spec.
    UnknownRole(String),
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::Io(e) => write!(f, "socket error: {e}"),
            ServeError::Wire(e) => write!(f, "wire encode error: {e}"),
            ServeError::RoleCrash(name) => write!(f, "role crashed: {name}"),
            ServeError::UnknownPeer(id) => write!(f, "no address for peer {id}"),
            ServeError::DialExhausted {
                peer,
                attempts,
                last,
            } => {
                write!(
                    f,
                    "peer {peer} unreachable after {attempts} dial attempts: {last}"
                )
            }
            ServeError::UnknownRole(name) => write!(f, "unknown role: {name}"),
        }
    }
}

impl std::error::Error for ServeError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ServeError::Io(e) => Some(e),
            ServeError::Wire(e) => Some(e),
            ServeError::DialExhausted { last, .. } => Some(last),
            _ => None,
        }
    }
}

impl From<std::io::Error> for ServeError {
    fn from(e: std::io::Error) -> Self {
        ServeError::Io(e)
    }
}

impl From<TransportError> for ServeError {
    fn from(e: TransportError) -> Self {
        ServeError::Wire(e)
    }
}

/// What a completed loopback run hands back.
#[derive(Debug)]
pub struct ServeOutcome {
    /// The knowledge-ledger twin after the run: feed it to
    /// `dcp_obs::KnowledgeFingerprint::of` and compare byte-for-byte
    /// against the simulated twin's fingerprint.
    pub world: dcp_core::World,
    /// Protocol work units the roles reported (for odoh: answered
    /// queries).
    pub completed_units: u64,
    /// What the wiring's spec said a full run completes.
    pub expected_units: u64,
}

impl ServeOutcome {
    /// Did the run do everything the spec promised?
    pub fn complete(&self) -> bool {
        self.completed_units >= self.expected_units
    }
}
