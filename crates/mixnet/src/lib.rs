//! # dcp-mixnet — Chaum's mix network (§3.1.2, Fig. 1)
//!
//! "A message is encrypted using the mix's public key before being sent.
//! The mix decrypts using its private key and forwards to the receiver or
//! to another mix… Chaum's design thwarted timing attacks by batch
//! forwarding."
//!
//! Paper table:
//!
//! | Sender | Mix 1  | …  | Mix N  | Receiver |
//! |--------|--------|----|--------|----------|
//! | (▲, ●) | (▲, ⊙) | …  | (△, ⊙) | (△, ●)   |
//!
//! * [`mix`] — the batching mix node: pool, threshold flush with
//!   shuffling, one onion layer peeled per message, optional constant-size
//!   cells.
//! * [`adversary`] — a passive timing-correlation attacker scored against
//!   ground truth, plus anonymity-set measurement: the quantitative side
//!   of §4.3's "encryption … does not protect against size and timestamps".
//! * [`scenario`] — end-to-end runs sweeping mix count and batch size.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod adversary;
pub mod circuit;
pub mod circuit_scenario;
pub mod mix;
pub mod population;
pub mod scenario;
pub mod types;

pub use scenario::{sweep, Mixnet, MixnetConfig, MixnetReport};
pub use types::declared_caps;
