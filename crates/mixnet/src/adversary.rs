//! Passive traffic-analysis adversaries (§4.3).
//!
//! These attackers see only honest wire metadata — [`PacketRecord`]s:
//! endpoints, timestamps, sizes. Ground-truth flow ids ride alongside for
//! *scoring only*; the matching algorithms never read them.

use std::collections::HashMap;

use dcp_runtime::{NodeId, PacketRecord, Trace};

/// A first-hop event the adversary observed: sender node, send time.
#[derive(Clone, Copy, Debug)]
struct Ingress {
    sender: NodeId,
    time: u64,
    true_flow: Option<u64>,
}

/// A last-hop event: receiver node, delivery time.
#[derive(Clone, Copy, Debug)]
struct Egress {
    receiver: NodeId,
    time: u64,
    true_flow: Option<u64>,
}

/// Result of a correlation attack.
#[derive(Clone, Debug, PartialEq)]
pub struct AttackResult {
    /// Fraction of sender→receiver pairs matched correctly.
    pub accuracy: f64,
    /// Number of pairs evaluated.
    pub pairs: usize,
    /// Baseline accuracy of random guessing (1 / distinct receivers).
    pub random_baseline: f64,
}

/// Timing-correlation attack: for each ingress (in time order), predict
/// the earliest not-yet-claimed egress after it. With unbatched FIFO mixes
/// this wins; threshold batching with shuffling pushes it toward the
/// random baseline.
pub fn timing_correlation(trace: &Trace, first_hop: NodeId, last_hops: &[NodeId]) -> AttackResult {
    let mut ingresses: Vec<Ingress> = trace
        .records()
        .iter()
        .filter(|r| r.dst == first_hop)
        .map(|r| Ingress {
            sender: r.src,
            time: r.send_time.as_us(),
            true_flow: r.true_flow,
        })
        .collect();
    let mut egresses: Vec<Egress> = trace
        .records()
        .iter()
        .filter(|r| last_hops.contains(&r.src) && !last_hops.contains(&r.dst) && r.dst != first_hop)
        .map(|r| Egress {
            receiver: r.dst,
            time: r.deliver_time.as_us(),
            true_flow: r.true_flow,
        })
        .collect();
    ingresses.sort_by_key(|i| i.time);
    egresses.sort_by_key(|e| e.time);

    // Ground truth: flow → true receiver (from scoring metadata).
    let truth: HashMap<u64, NodeId> = egresses
        .iter()
        .filter_map(|e| e.true_flow.map(|f| (f, e.receiver)))
        .collect();
    let receivers: std::collections::HashSet<NodeId> =
        egresses.iter().map(|e| e.receiver).collect();

    let mut claimed = vec![false; egresses.len()];
    let mut correct = 0usize;
    let mut pairs = 0usize;
    for ing in &ingresses {
        // Earliest unclaimed egress at/after the ingress.
        let Some(idx) = egresses
            .iter()
            .enumerate()
            .position(|(i, e)| !claimed[i] && e.time >= ing.time)
        else {
            continue;
        };
        claimed[idx] = true;
        let Some(flow) = ing.true_flow else { continue };
        let Some(&true_receiver) = truth.get(&flow) else {
            continue;
        };
        let _ = ing.sender;
        pairs += 1;
        if egresses[idx].receiver == true_receiver {
            correct += 1;
        }
    }

    AttackResult {
        accuracy: if pairs == 0 {
            0.0
        } else {
            correct as f64 / pairs as f64
        },
        pairs,
        random_baseline: if receivers.is_empty() {
            0.0
        } else {
            1.0 / receivers.len() as f64
        },
    }
}

/// Mean anonymity-set size: for each delivered message, how many messages
/// shared its final flush batch (delivered at the same instant from the
/// same mix). Size 1 = fully exposed ordering.
pub fn mean_anonymity_set(trace: &Trace, last_hops: &[NodeId]) -> f64 {
    let mut batches: HashMap<(NodeId, u64), usize> = HashMap::new();
    let egress: Vec<&PacketRecord> = trace
        .records()
        .iter()
        .filter(|r| last_hops.contains(&r.src) && !last_hops.contains(&r.dst))
        .collect();
    for r in &egress {
        *batches.entry((r.src, r.send_time.as_us())).or_default() += 1;
    }
    if egress.is_empty() {
        return 0.0;
    }
    let total: usize = egress
        .iter()
        .map(|r| batches[&(r.src, r.send_time.as_us())])
        .sum();
    total as f64 / egress.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use dcp_runtime::SimTime;

    fn rec(src: usize, dst: usize, t_send: u64, t_del: u64, flow: u64) -> PacketRecord {
        PacketRecord {
            send_time: SimTime(t_send),
            deliver_time: SimTime(t_del),
            src: NodeId(src),
            dst: NodeId(dst),
            size: 100,
            true_flow: Some(flow),
        }
    }

    #[test]
    fn fifo_leak_is_fully_correlated() {
        // Two senders (10, 11) → mix (0) → receivers (20, 21), strict FIFO.
        let mut t = Trace::default();
        t.push(rec(10, 0, 0, 5, 1));
        t.push(rec(11, 0, 100, 105, 2));
        t.push(rec(0, 20, 10, 15, 1));
        t.push(rec(0, 21, 110, 115, 2));
        let r = timing_correlation(&t, NodeId(0), &[NodeId(0)]);
        assert_eq!(r.pairs, 2);
        assert!((r.accuracy - 1.0).abs() < 1e-9);
        assert!((r.random_baseline - 0.5).abs() < 1e-9);
    }

    #[test]
    fn batched_shuffle_confuses_greedy_matcher() {
        // Both messages flushed simultaneously but in swapped order: the
        // greedy matcher pairs ingress 1 with the earliest egress, which
        // is flow 2's.
        let mut t = Trace::default();
        t.push(rec(10, 0, 0, 5, 1));
        t.push(rec(11, 0, 100, 105, 2));
        // Flush at 200: flow 2 happens to be first in the shuffle.
        t.push(rec(0, 21, 200, 205, 2));
        t.push(rec(0, 20, 200, 206, 1));
        let r = timing_correlation(&t, NodeId(0), &[NodeId(0)]);
        assert_eq!(r.pairs, 2);
        assert!(r.accuracy < 1.0);
    }

    #[test]
    fn anonymity_set_counts_batch_peers() {
        let mut t = Trace::default();
        // Batch of 3 at t=50 from mix 0, singleton at t=90.
        t.push(rec(0, 20, 50, 55, 1));
        t.push(rec(0, 21, 50, 56, 2));
        t.push(rec(0, 22, 50, 57, 3));
        t.push(rec(0, 20, 90, 95, 4));
        let m = mean_anonymity_set(&t, &[NodeId(0)]);
        // Three messages in a batch of 3, one in a batch of 1: (3*3+1)/4.
        assert!((m - 2.5).abs() < 1e-9, "{m}");
    }

    #[test]
    fn empty_trace_degenerates_gracefully() {
        let t = Trace::default();
        let r = timing_correlation(&t, NodeId(0), &[NodeId(0)]);
        assert_eq!(r.pairs, 0);
        assert_eq!(r.accuracy, 0.0);
        assert_eq!(mean_anonymity_set(&t, &[NodeId(0)]), 0.0);
    }
}
