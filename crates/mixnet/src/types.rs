//! Label-bounded wire types and typed roles for the mix-net wiring.
//!
//! Every [`WireLabel`] impl for this crate lives in this module (the CI
//! layering lint holds wiring crates to that). Two wirings share these
//! types: the batch-and-shuffle chain of `scenario` (Fig. 1) and the
//! session-circuit chain of `circuit_scenario` (§4.2). Batch mixes are
//! bounded at the relay default `(▲, ⊙)`; circuit relays include the
//! exit position, which must see the destination (`⊙/●`), so their cap
//! is the union `(▲, ⊙/●)`.

use dcp_core::cap::{Addressed, Blinded, KnowledgeCap, WireLabel};
use dcp_core::role::{Role, RoleKind};
use dcp_core::Sensitivity;

/// A message as content: what the sender says (and to whom) — sensitive
/// data with no identity of its own.
pub struct MailMessage;

impl WireLabel for MailMessage {
    const IDENTITY: Sensitivity = Sensitivity::NonSensitive;
    const DATA: Sensitivity = Sensitivity::Sensitive;
}

/// A sender's first-hop frame: the access link names the sender (▲)
/// around an onion the entry mix cannot open (⊙). Chaff is the same
/// type on purpose — on the wire it is indistinguishable from mail.
pub type MixedMail = Addressed<Blinded<MailMessage>>;

/// A circuit cell user → entry: same envelope shape as [`MixedMail`],
/// riding per-hop session keys instead of per-message onions.
pub type CircuitCell = Addressed<Blinded<MailMessage>>;

/// A message sender (initiator).
pub struct MailSender;

impl Role for MailSender {
    const KIND: RoleKind = RoleKind::Initiator;
    const NAME: &'static str = "mixnet-sender";
}

/// A threshold mix in the chain: the relay default `(▲, ⊙)` — the entry
/// sees who sends, later positions see strictly less.
pub struct BatchMix;

impl Role for BatchMix {
    const KIND: RoleKind = RoleKind::Relay;
    const NAME: &'static str = "mixnet-mix";
}

/// A circuit relay, any position: the exit must learn the destination
/// to contact it, so the cap is the union `(▲, ⊙/●)`.
pub struct SessionRelay;

impl Role for SessionRelay {
    const KIND: RoleKind = RoleKind::Relay;
    const NAME: &'static str = "mixnet-circuit-relay";
    const CAP: KnowledgeCap = KnowledgeCap::new(Sensitivity::Sensitive, Sensitivity::Partial);
}

/// A receiver: anonymous senders, full message content — `(△, ●)`, the
/// service default.
pub struct MailReceiver;

impl Role for MailReceiver {
    const KIND: RoleKind = RoleKind::Service;
    const NAME: &'static str = "mixnet-receiver";
}

/// Entity-name rows (matched by prefix) → declared caps, reconciled
/// against runtime ledgers by the cap-reconciliation proptest. "Mix"
/// matches every `Mix N` row.
pub fn declared_caps() -> Vec<(&'static str, KnowledgeCap)> {
    vec![
        ("Sender", MailSender::CAP),
        ("Mix", BatchMix::CAP),
        ("Receiver", MailReceiver::CAP),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mix_cap_is_the_relay_default_and_rejects_content() {
        assert_eq!(BatchMix::CAP.render(), "(▲, ⊙)");
        assert_eq!(SessionRelay::CAP.render(), "(▲, ⊙/●)");
        assert!(BatchMix::CAP.admits(
            <MixedMail as WireLabel>::IDENTITY,
            <MixedMail as WireLabel>::DATA
        ));
        // Neither mix flavour may see the message itself.
        assert!(!BatchMix::CAP.admits(MailMessage::IDENTITY, MailMessage::DATA));
        assert!(!SessionRelay::CAP.admits(MailMessage::IDENTITY, MailMessage::DATA));
        // The exit's destination visibility fits circuits, not batch mixes.
        assert!(SessionRelay::CAP.admits(Sensitivity::NonSensitive, Sensitivity::Partial));
        assert!(!BatchMix::CAP.admits(Sensitivity::NonSensitive, Sensitivity::Partial));
    }
}
