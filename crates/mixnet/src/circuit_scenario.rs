//! Circuit-based relaying on the simulator: the Tor-shaped operating
//! point of §4.2. One handshake builds a session through every relay;
//! subsequent cells ride the per-hop session keys — amortizing the
//! public-key cost that per-message onions pay every time.

use std::cell::RefCell;
use std::collections::HashMap;
use std::rc::Rc;

use dcp_core::table::DecouplingTable;
use dcp_core::{DataKind, EntityId, IdentityKind, InfoItem, KeyId, Label, UserId, World};
use dcp_crypto::hpke;
use dcp_runtime::{
    Control, Ctx, Endpoint, LinkParams, Message, Network, Node, NodeId, SimTime, Trace, TypedSend,
};

use crate::circuit::{self, ClientCircuit, RelayCircuit};
use crate::types::{CircuitCell, SessionRelay};

/// Report from a circuit run.
pub struct CircuitReport {
    /// Knowledge base.
    pub world: World,
    /// Packet trace.
    pub trace: Trace,
    /// Completed request/response exchanges.
    pub completed: usize,
    /// Latency of the first exchange (includes circuit build), µs.
    pub first_exchange_us: f64,
    /// Mean latency of subsequent exchanges (session reuse), µs.
    pub steady_exchange_us: f64,
    /// The user.
    pub user: UserId,
    /// Relay column names.
    pub relay_names: Vec<String>,
}

impl CircuitReport {
    /// Derive the decoupling table (same columns as the MPR/mix tables).
    pub fn table(&self) -> DecouplingTable {
        let mut cols: Vec<&str> = vec!["User"];
        cols.extend(self.relay_names.iter().map(String::as_str));
        cols.push("Exit Destination");
        DecouplingTable::derive(&self.world, self.user, &cols)
    }
}

const REQUEST: &[u8] = b"GET /over-the-circuit";
const RESPONSE: &[u8] = b"200 circuit OK";

struct Stats {
    completed: usize,
    exchange_times: Vec<u64>,
}

/// Wire tags.
const TAG_HS: u8 = 1;
const TAG_FWD: u8 = 2;
const TAG_BWD: u8 = 3;
const TAG_HS_ACK: u8 = 4;

struct CircuitUser {
    entity: EntityId,
    user: UserId,
    entry: Endpoint<CircuitCell, Control, SessionRelay>,
    relay_pks: Vec<[u8; 32]>,
    relay_keys: Vec<KeyId>,
    circuit: Option<ClientCircuit>,
    exchanges_left: usize,
    stats: Rc<RefCell<Stats>>,
    started: SimTime,
}

impl CircuitUser {
    fn cell_label(&self) -> Label {
        // Envelope to the entry relay (▲, ⊙) wrapping per-hop seals whose
        // innermost content is the request the exit delivers (△, ⊙/●).
        let mut label = Label::items([
            InfoItem::plain_identity(self.user, IdentityKind::Any),
            InfoItem::partial_data(self.user, DataKind::Destination),
        ]);
        for &k in self.relay_keys.iter().rev() {
            // Each relay that peels its layer learns "an anonymous member
            // is relaying traffic" (△, ⊙) plus an opaque inner blob.
            label = Label::items([
                InfoItem::plain_identity(self.user, IdentityKind::Any),
                InfoItem::plain_data(self.user, DataKind::Payload),
            ])
            .and(label)
            .sealed(k);
        }
        Label::items([
            InfoItem::sensitive_identity(self.user, IdentityKind::Any),
            InfoItem::plain_data(self.user, DataKind::Payload),
        ])
        .and(label)
    }

    fn send_request(&mut self, ctx: &mut Ctx) {
        let cell = self
            .circuit
            .as_mut()
            .expect("circuit built")
            .seal_forward(REQUEST);
        let mut bytes = vec![TAG_FWD];
        bytes.extend_from_slice(&cell);
        ctx.send_to(self.entry, Message::new(bytes, self.cell_label()));
    }
}

impl Node for CircuitUser {
    fn entity(&self) -> EntityId {
        self.entity
    }
    fn on_start(&mut self, ctx: &mut Ctx) {
        ctx.world.record(
            self.entity,
            InfoItem::sensitive_identity(self.user, IdentityKind::Any),
        );
        ctx.world.record(
            self.entity,
            InfoItem::sensitive_data(self.user, DataKind::Destination),
        );
        self.started = ctx.now;
        let (client, hs) = circuit::create(ctx.rng, &self.relay_pks).expect("circuit create");
        self.circuit = Some(client);
        let mut bytes = vec![TAG_HS];
        bytes.extend_from_slice(&hs.onion);
        // The handshake reveals the same envelope facts as a data cell.
        ctx.send_to(self.entry, Message::new(bytes, self.cell_label()));
    }
    fn on_message(&mut self, ctx: &mut Ctx, _from: NodeId, msg: Message) {
        // Wire-derived input: empty cells, unknown tags, undecryptable or
        // unexpected payloads are all dropped — never a panic.
        let Some(&tag) = msg.bytes.first() else {
            return;
        };
        match tag {
            TAG_HS_ACK => {
                // Circuit built end-to-end; start requesting.
                self.send_request(ctx);
            }
            TAG_BWD => {
                let Some(circuit) = self.circuit.as_mut() else {
                    return;
                };
                let Ok(plain) = circuit.open_backward(&msg.bytes[1..]) else {
                    return;
                };
                if plain != RESPONSE {
                    return;
                }
                let mut stats = self.stats.borrow_mut();
                stats.completed += 1;
                stats.exchange_times.push(ctx.now - self.started);
                drop(stats);
                if self.exchanges_left > 1 {
                    self.exchanges_left -= 1;
                    self.started = ctx.now;
                    self.send_request(ctx);
                }
            }
            _ => {}
        }
    }
}

struct CircuitRelay {
    entity: EntityId,
    kp: hpke::Keypair,
    key_id: KeyId,
    hop_index: usize,
    /// Next hop toward the exit (None = this is the exit; it answers).
    next: Option<NodeId>,
    prev_of: HashMap<u64, NodeId>,
    state: Option<RelayCircuit>,
}

impl Node for CircuitRelay {
    fn entity(&self) -> EntityId {
        self.entity
    }
    fn on_message(&mut self, ctx: &mut Ctx, from: NodeId, msg: Message) {
        // Everything here is derived from wire bytes, so every surprise —
        // empty cell, unknown tag, failed decrypt, out-of-order state,
        // label desync — is a drop, never a panic: a relay fails closed.
        let inner_label = |label: &Label, key: KeyId| -> Option<Label> {
            let sealed = match label {
                Label::Bundle(parts) if parts.len() == 2 => &parts[1],
                other => other,
            };
            dcp_transport::onion::unwrap_label(sealed, key).ok()
        };
        let Some(&tag) = msg.bytes.first() else {
            return;
        };
        match tag {
            TAG_HS => {
                let Ok((state, rest)) = circuit::accept(&self.kp, self.hop_index, &msg.bytes[1..])
                else {
                    return;
                };
                let Some(label) = inner_label(&msg.label, self.key_id) else {
                    return;
                };
                self.state = Some(state);
                self.prev_of.insert(0, from);
                match self.next {
                    Some(next) => {
                        let mut bytes = vec![TAG_HS];
                        bytes.extend_from_slice(&rest);
                        ctx.send(next, Message::new(bytes, label));
                    }
                    None => {
                        // Exit: handshake complete; ack back along the path.
                        let ack = Message::new(vec![TAG_HS_ACK], Label::Public);
                        ctx.send(from, ack);
                    }
                }
            }
            TAG_FWD => {
                let Some(state) = self.state.as_mut() else {
                    return;
                };
                let Ok(peeled) = state.peel_forward(&msg.bytes[1..]) else {
                    return;
                };
                let Some(label) = inner_label(&msg.label, self.key_id) else {
                    return;
                };
                self.prev_of.insert(0, from);
                match self.next {
                    Some(next) => {
                        let mut bytes = vec![TAG_FWD];
                        bytes.extend_from_slice(&peeled);
                        ctx.send(next, Message::new(bytes, label));
                    }
                    None => {
                        // Exit relay: "contact the destination" and answer.
                        if peeled != REQUEST {
                            return;
                        }
                        let Some(state) = self.state.as_mut() else {
                            return;
                        };
                        let cell = state.wrap_backward(RESPONSE);
                        let mut bytes = vec![TAG_BWD];
                        bytes.extend_from_slice(&cell);
                        ctx.send(from, Message::new(bytes, Label::Public));
                    }
                }
            }
            TAG_BWD => {
                // Response heading back: add our layer, relay toward user.
                let Some(state) = self.state.as_mut() else {
                    return;
                };
                let cell = state.wrap_backward(&msg.bytes[1..]);
                let mut bytes = vec![TAG_BWD];
                bytes.extend_from_slice(&cell);
                let Some(&prev) = self.prev_of.get(&0) else {
                    return;
                };
                ctx.send(prev, Message::new(bytes, Label::Public));
            }
            TAG_HS_ACK => {
                // Handshake ack relays backwards unchanged.
                let Some(&prev) = self.prev_of.get(&0) else {
                    return;
                };
                ctx.send(prev, Message::new(msg.bytes, Label::Public));
            }
            _ => {}
        }
    }
}

/// Run a circuit of `relays` hops carrying `exchanges` request/response
/// pairs over one session.
pub fn run_circuit(relays: usize, exchanges: usize, seed: u64) -> CircuitReport {
    use rand::SeedableRng;
    assert!(relays >= 1 && exchanges >= 1);
    let mut setup_rng = rand::rngs::StdRng::seed_from_u64(seed ^ 0xc142);

    let mut world = World::new();
    let user_org = world.add_org("user");
    let dest_org = world.add_org("destination");
    let mut relay_entities = Vec::new();
    let mut relay_names = Vec::new();
    for i in 0..relays {
        let org = world.add_org(&format!("relay-op-{i}"));
        let name = format!("Relay {}", i + 1);
        relay_entities.push(world.add_entity(&name, org, None));
        relay_names.push(name);
    }
    // The "destination" the exit contacts, modeled as knowledge at the
    // exit's answer step; give it an entity for the table's last column.
    let dest_e = world.add_entity("Exit Destination", dest_org, None);
    let user = world.add_user();
    let user_e = world.add_entity("User", user_org, Some(user));

    let relay_kps: Vec<hpke::Keypair> = (0..relays)
        .map(|_| hpke::Keypair::generate(&mut setup_rng))
        .collect();
    let relay_keys: Vec<KeyId> = relay_entities
        .iter()
        .map(|&e| world.new_key(&[e]))
        .collect();
    // The destination sees the request content from an anonymous exit.
    world.record(dest_e, InfoItem::plain_identity(user, IdentityKind::Any));
    world.record(
        dest_e,
        InfoItem::sensitive_data(user, DataKind::Destination),
    );

    let mut net = Network::new(world, seed);
    net.set_default_link(LinkParams::wan_ms(10));
    let relay_ids: Vec<NodeId> = (0..relays).map(NodeId).collect();
    for i in 0..relays {
        net.add_node(Box::new(CircuitRelay {
            entity: relay_entities[i],
            kp: relay_kps[i].clone(),
            key_id: relay_keys[i],
            hop_index: i,
            next: if i + 1 < relays {
                Some(relay_ids[i + 1])
            } else {
                None
            },
            prev_of: HashMap::new(),
            state: None,
        }));
    }
    let stats = Rc::new(RefCell::new(Stats {
        completed: 0,
        exchange_times: Vec::new(),
    }));
    net.add_node(Box::new(CircuitUser {
        entity: user_e,
        user,
        entry: Endpoint::new(relay_ids[0].0),
        relay_pks: relay_kps.iter().map(|k| k.public).collect(),
        relay_keys,
        circuit: None,
        exchanges_left: exchanges,
        stats: stats.clone(),
        started: SimTime::ZERO,
    }));

    net.run();
    let (world, trace) = net.into_parts();
    let stats = Rc::try_unwrap(stats).map_err(|_| ()).unwrap().into_inner();
    let first = stats.exchange_times.first().copied().unwrap_or(0) as f64;
    let steady = if stats.exchange_times.len() > 1 {
        stats.exchange_times[1..].iter().sum::<u64>() as f64
            / (stats.exchange_times.len() - 1) as f64
    } else {
        0.0
    };
    CircuitReport {
        world,
        trace,
        completed: stats.completed,
        first_exchange_us: first,
        steady_exchange_us: steady,
        user,
        relay_names,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dcp_core::analyze;

    #[test]
    fn three_hop_circuit_decouples_like_a_relay_chain() {
        let report = run_circuit(3, 3, 91);
        assert_eq!(report.completed, 3);
        assert!(analyze(&report.world).decoupled);
        let t = report.table();
        assert_eq!(t.tuples[0], "(▲, ●)", "user");
        assert_eq!(t.tuples[1], "(▲, ⊙)", "entry");
        assert_eq!(t.tuples[2], "(△, ⊙)", "middle");
        assert_eq!(t.tuples[3], "(△, ⊙/●)", "exit");
        assert_eq!(t.tuples[4], "(△, ●)", "destination");
    }

    #[test]
    fn session_reuse_amortizes_the_handshake() {
        let report = run_circuit(3, 5, 92);
        assert!(
            report.first_exchange_us > report.steady_exchange_us,
            "first {} vs steady {}",
            report.first_exchange_us,
            report.steady_exchange_us
        );
    }

    #[test]
    fn single_hop_circuit_couples_like_a_vpn() {
        let report = run_circuit(1, 2, 93);
        let verdict = analyze(&report.world);
        assert!(!verdict.decoupled);
        assert!(verdict.offenders().contains(&"Relay 1"));
    }
}
