//! Population-scale bridge: map a [`WorldSpec`] onto the mix-chain
//! wiring and name its abstract decoupled-path topology.

use dcp_runtime::{PopulationScenario, Topology, WorldSpec};

use crate::scenario::{Mixnet, MixnetConfig};

impl PopulationScenario for Mixnet {
    fn population_config(spec: &WorldSpec) -> MixnetConfig {
        let senders = spec.users as usize;
        MixnetConfig {
            senders,
            mixes: 3,
            // Threshold scales with the population so mixes actually
            // batch (a fixed threshold would never fire for small
            // worlds or degenerate to per-message for large ones).
            batch_size: (senders / 4).max(2),
            window_us: spec.duration_us,
            shuffle: true,
            chaff_per_sender: 0,
            mix_max_wait_us: None,
            seed: 0, // replaced per run by `run_with`
        }
    }

    fn topology() -> Topology {
        Topology::mixnet()
    }
}

#[cfg(test)]
mod tests {
    use dcp_core::ScenarioReport as _;
    use dcp_runtime::{PopulationScenario, WorldSpec};

    use crate::scenario::Mixnet;

    #[test]
    fn population_run_delivers_every_sender() {
        let spec = WorldSpec::smoke().users(8).duration_us(400_000);
        let report = Mixnet::run_population(&spec, 11);
        assert_eq!(report.completed_units(), 8);
        assert!(
            report.trace.is_empty(),
            "population profile drops the trace"
        );
        assert!(report.metrics.enabled);
    }
}
