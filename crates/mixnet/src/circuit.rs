//! Onion-routing circuits (Syverson et al. → Tor): the *session* form of
//! mix-net decoupling.
//!
//! A mix-net onion is one-shot; Tor-style systems instead build a
//! long-lived **circuit**: per-hop Diffie–Hellman yields forward/backward
//! AEAD keys, and every cell is layered in those session keys with
//! counter nonces. "Tor embodies this approach by allowing for circuits
//! of 3 or more hops, albeit at greater performance cost" (§4.2).
//!
//! Circuit building here is single-pass (the handshake onion carries one
//! ephemeral public key per hop), which preserves what the decoupling
//! analysis needs: each relay learns exactly one adjacent pair and one
//! layer's keys.

use dcp_crypto::{aead, hkdf, hpke, x25519, CryptoError};

/// Result alias.
pub type Result<T> = core::result::Result<T, CryptoError>;

/// Per-hop session keys and nonce counters.
#[derive(Clone)]
struct HopKeys {
    fwd_key: [u8; 32],
    bwd_key: [u8; 32],
    fwd_ctr: u64,
    bwd_ctr: u64,
}

fn derive_hop_keys(shared: &[u8; 32], transcript: &[u8]) -> HopKeys {
    let prk = hkdf::extract(b"dcp-circuit", shared);
    let okm = hkdf::expand(&prk, transcript, 64);
    let mut fwd_key = [0u8; 32];
    let mut bwd_key = [0u8; 32];
    fwd_key.copy_from_slice(&okm[..32]);
    bwd_key.copy_from_slice(&okm[32..]);
    HopKeys {
        fwd_key,
        bwd_key,
        fwd_ctr: 0,
        bwd_ctr: 0,
    }
}

fn nonce_for(ctr: u64, dir: u8) -> [u8; 12] {
    let mut n = [0u8; 12];
    n[0] = dir;
    n[4..12].copy_from_slice(&ctr.to_be_bytes());
    n
}

/// Client-side circuit state.
pub struct ClientCircuit {
    hops: Vec<HopKeys>,
}

/// Relay-side circuit state (one per circuit per relay).
pub struct RelayCircuit {
    keys: HopKeys,
}

/// The handshake onion: hop *k* peels layer *k* with its static HPKE key,
/// recovers its ephemeral DH public, and forwards the rest to hop *k+1*.
/// (Addresses are the caller's concern; this module is pure protocol.)
pub struct Handshake {
    /// One opaque layer blob per hop, outermost first.
    pub onion: Vec<u8>,
}

/// Build a circuit through relays with static X25519 public keys
/// `relay_pks`. Returns the client state and the handshake onion.
pub fn create<R: rand::Rng + ?Sized>(
    rng: &mut R,
    relay_pks: &[[u8; 32]],
) -> Result<(ClientCircuit, Handshake)> {
    assert!(!relay_pks.is_empty(), "circuit needs at least one hop");
    let mut hops = Vec::with_capacity(relay_pks.len());
    let mut ephs = Vec::with_capacity(relay_pks.len());
    for (i, pk) in relay_pks.iter().enumerate() {
        let (esk, epk) = x25519::keypair(rng);
        let shared = x25519::shared_secret(&esk, pk).ok_or(CryptoError::InvalidPoint)?;
        let transcript = [&epk[..], &pk[..], &[i as u8]].concat();
        hops.push(derive_hop_keys(&shared, &transcript));
        ephs.push(epk);
    }
    // Handshake onion: innermost layer is the last hop's ephemeral key.
    let mut onion: Vec<u8> = Vec::new();
    for (i, pk) in relay_pks.iter().enumerate().rev() {
        let mut plain = ephs[i].to_vec();
        plain.extend_from_slice(&onion);
        onion = hpke::seal(rng, pk, b"dcp-circuit-hs", b"", &plain)?;
    }
    Ok((ClientCircuit { hops }, Handshake { onion }))
}

/// Relay: accept a handshake layer with the relay's static keypair.
/// Returns this relay's circuit state, its hop index transcript, and the
/// remaining onion (empty at the exit).
pub fn accept(
    kp: &hpke::Keypair,
    hop_index: usize,
    onion: &[u8],
) -> Result<(RelayCircuit, Vec<u8>)> {
    let plain = hpke::open(kp, b"dcp-circuit-hs", b"", onion)?;
    if plain.len() < 32 {
        return Err(CryptoError::Malformed);
    }
    let mut epk = [0u8; 32];
    epk.copy_from_slice(&plain[..32]);
    let shared = x25519::shared_secret(&kp.private, &epk).ok_or(CryptoError::InvalidPoint)?;
    let transcript = [&epk[..], &kp.public[..], &[hop_index as u8]].concat();
    Ok((
        RelayCircuit {
            keys: derive_hop_keys(&shared, &transcript),
        },
        plain[32..].to_vec(),
    ))
}

impl ClientCircuit {
    /// Number of hops.
    pub fn len(&self) -> usize {
        self.hops.len()
    }

    /// Is the circuit empty? (Never true for a built circuit.)
    pub fn is_empty(&self) -> bool {
        self.hops.is_empty()
    }

    /// Layer a forward cell: the innermost layer is the exit's.
    pub fn seal_forward(&mut self, payload: &[u8]) -> Vec<u8> {
        let mut cell = payload.to_vec();
        for hop in self.hops.iter_mut().rev() {
            cell = aead::seal(&hop.fwd_key, &nonce_for(hop.fwd_ctr, 0), b"fwd", &cell);
            hop.fwd_ctr += 1;
        }
        cell
    }

    /// Remove all backward layers from a cell that traversed the circuit
    /// in reverse (entry relay's layer is outermost).
    pub fn open_backward(&mut self, cell: &[u8]) -> Result<Vec<u8>> {
        let mut cur = cell.to_vec();
        for hop in self.hops.iter_mut() {
            cur = aead::open(&hop.bwd_key, &nonce_for(hop.bwd_ctr, 1), b"bwd", &cur)?;
            hop.bwd_ctr += 1;
        }
        Ok(cur)
    }
}

impl RelayCircuit {
    /// Forward direction: remove this relay's layer.
    pub fn peel_forward(&mut self, cell: &[u8]) -> Result<Vec<u8>> {
        let out = aead::open(
            &self.keys.fwd_key,
            &nonce_for(self.keys.fwd_ctr, 0),
            b"fwd",
            cell,
        )?;
        self.keys.fwd_ctr += 1;
        Ok(out)
    }

    /// Backward direction: add this relay's layer.
    pub fn wrap_backward(&mut self, cell: &[u8]) -> Vec<u8> {
        let out = aead::seal(
            &self.keys.bwd_key,
            &nonce_for(self.keys.bwd_ctr, 1),
            b"bwd",
            cell,
        );
        self.keys.bwd_ctr += 1;
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng() -> rand::rngs::StdRng {
        rand::rngs::StdRng::seed_from_u64(2718)
    }

    fn build(n: usize) -> (ClientCircuit, Vec<RelayCircuit>) {
        let mut rng = rng();
        let kps: Vec<hpke::Keypair> = (0..n).map(|_| hpke::Keypair::generate(&mut rng)).collect();
        let pks: Vec<[u8; 32]> = kps.iter().map(|k| k.public).collect();
        let (client, hs) = create(&mut rng, &pks).unwrap();
        let mut relays = Vec::new();
        let mut onion = hs.onion;
        for (i, kp) in kps.iter().enumerate() {
            let (rc, rest) = accept(kp, i, &onion).unwrap();
            relays.push(rc);
            onion = rest;
        }
        assert!(onion.is_empty(), "exit consumed the whole handshake");
        (client, relays)
    }

    #[test]
    fn three_hop_forward_and_backward() {
        let (mut client, mut relays) = build(3);
        // Forward: each relay peels one layer; the exit sees the payload.
        let mut cell = client.seal_forward(b"GET /hidden-service");
        for r in relays.iter_mut() {
            cell = r.peel_forward(&cell).unwrap();
        }
        assert_eq!(cell, b"GET /hidden-service");

        // Backward: exit wraps first, then middle, then entry; the client
        // removes all three.
        let mut back = b"200 OK".to_vec();
        for r in relays.iter_mut().rev() {
            back = r.wrap_backward(&back);
        }
        assert_eq!(client.open_backward(&back).unwrap(), b"200 OK");
    }

    #[test]
    fn many_cells_keep_counter_sync() {
        let (mut client, mut relays) = build(2);
        for i in 0..20u8 {
            let mut cell = client.seal_forward(&[i; 10]);
            for r in relays.iter_mut() {
                cell = r.peel_forward(&cell).unwrap();
            }
            assert_eq!(cell, vec![i; 10]);
        }
    }

    #[test]
    fn replayed_cell_rejected() {
        let (mut client, mut relays) = build(2);
        let cell = client.seal_forward(b"once");
        let peeled = relays[0].peel_forward(&cell).unwrap();
        let _ = relays[1].peel_forward(&peeled).unwrap();
        // Replaying the same cell at relay 0 fails: its counter advanced.
        assert!(relays[0].peel_forward(&cell).is_err());
    }

    #[test]
    fn middle_relay_cannot_read_payload() {
        let (mut client, mut relays) = build(3);
        let cell = client.seal_forward(b"secret destination");
        let after_entry = relays[0].peel_forward(&cell).unwrap();
        // The middle relay's peel yields another ciphertext, not plaintext.
        let after_middle = relays[1].peel_forward(&after_entry).unwrap();
        assert!(
            !after_middle.windows(6).any(|w| w == b"secret"),
            "middle still sees ciphertext"
        );
        // Only the exit recovers it.
        assert_eq!(
            relays[2].peel_forward(&after_middle).unwrap(),
            b"secret destination"
        );
    }

    #[test]
    fn tampered_cell_rejected_at_first_hop() {
        let (mut client, mut relays) = build(2);
        let mut cell = client.seal_forward(b"x");
        cell[0] ^= 1;
        assert!(relays[0].peel_forward(&cell).is_err());
    }

    #[test]
    fn wrong_relay_cannot_accept_handshake() {
        let mut rng = rng();
        let kp1 = hpke::Keypair::generate(&mut rng);
        let kp2 = hpke::Keypair::generate(&mut rng);
        let (_, hs) = create(&mut rng, &[kp1.public]).unwrap();
        assert!(accept(&kp2, 0, &hs.onion).is_err());
    }

    #[test]
    fn single_hop_circuit_works() {
        let (mut client, mut relays) = build(1);
        let cell = client.seal_forward(b"hi");
        assert_eq!(relays[0].peel_forward(&cell).unwrap(), b"hi");
        let back = relays[0].wrap_backward(b"yo");
        assert_eq!(client.open_backward(&back).unwrap(), b"yo");
    }

    #[test]
    fn per_hop_keys_are_independent() {
        // Entry relay's keys cannot open the exit's layer.
        let (mut client, mut relays) = build(2);
        let cell = client.seal_forward(b"layered");
        let inner = relays[0].peel_forward(&cell).unwrap();
        // Re-using relay 0's state on the inner cell must fail.
        assert!(relays[0].peel_forward(&inner).is_err());
    }
}
