//! End-to-end mix-net runs: Fig. 1's topology with measurable anonymity.

use std::cell::RefCell;
use std::collections::BTreeSet;
use std::rc::Rc;

use dcp_core::sweep::derive_seed;
use dcp_core::table::DecouplingTable;
use dcp_core::{
    DataKind, EntityId, FaultLog, IdentityKind, InfoItem, KeyId, Label, MetricsReport, RunOptions,
    Scenario, UserId, World,
};
use dcp_crypto::hpke;
use dcp_runtime::{
    mean_us, wire, Attempt, CallEvent, Control, Ctx, Driver, Endpoint, FleetClient, FleetSetup,
    FleetSummary, Harness, LinkParams, Message, Node, NodeId, RetryLinkage, Trace, TypedSend,
};
use dcp_transport::onion::{self, Hop, Unwrapped};
use rand::Rng as _;

use crate::adversary::{self, AttackResult};
use crate::mix::{MixNode, RESP_BIT};
use crate::types::{BatchMix, MailReceiver, MailSender, MixedMail};

/// Configuration of a mix-net run.
#[derive(Clone, Copy, Debug)]
pub struct MixnetConfig {
    /// Number of senders (= receivers; each sender messages one receiver).
    pub senders: usize,
    /// Mixes in the chain.
    pub mixes: usize,
    /// Threshold batch size at each mix.
    pub batch_size: usize,
    /// Senders start uniformly at random within this window (µs).
    pub window_us: u64,
    /// Shuffle batches at each mix (disable for the broken-mix ablation).
    pub shuffle: bool,
    /// Decoy messages each sender emits alongside its real one (§4.3
    /// "adding additional chaff").
    pub chaff_per_sender: usize,
    /// Override the mixes' flush deadline (µs). `None` = one terminal
    /// flush after the window. Short deadlines turn the threshold mixes
    /// into *timed* mixes — the configuration where chaff pays off.
    pub mix_max_wait_us: Option<u64>,
    /// Seed.
    pub seed: u64,
}

impl Default for MixnetConfig {
    fn default() -> Self {
        MixnetConfig {
            senders: 8,
            mixes: 2,
            batch_size: 4,
            window_us: 200_000,
            shuffle: true,
            chaff_per_sender: 0,
            mix_max_wait_us: None,
            seed: 0,
        }
    }
}

/// Report from a run.
pub struct MixnetReport {
    /// Knowledge base.
    pub world: World,
    /// Packet trace.
    pub trace: Trace,
    /// Messages delivered end-to-end.
    pub delivered: usize,
    /// Mean sender→receiver latency (µs).
    pub mean_latency_us: f64,
    /// Timing-correlation attack outcome.
    pub attack: AttackResult,
    /// Mean final-hop anonymity-set size.
    pub mean_anonymity_set: f64,
    /// Sender users.
    pub users: Vec<UserId>,
    /// Mix column names in chain order.
    pub mix_names: Vec<String>,
    /// Receiver entity name for each sender (post-shuffle).
    pub receiver_of: Vec<String>,
    /// Faults injected during the run (empty when faults are disabled).
    pub fault_log: FaultLog,
    /// Run metrics (populated on instrumented runs).
    pub metrics: MetricsReport,
    /// The workload's target: one real message per sender.
    pub expected: u64,
    /// Retry-linkage violations over the re-wrapped onion attempts.
    pub retry_linkage: Vec<String>,
    /// Fleet-layer summary ([`FleetSummary::disabled`] when the run had
    /// no directory).
    pub fleet: FleetSummary,
}

impl dcp_core::ScenarioReport for MixnetReport {
    fn world(&self) -> &World {
        &self.world
    }
    fn fault_log(&self) -> &FaultLog {
        &self.fault_log
    }
    fn metrics(&self) -> &MetricsReport {
        &self.metrics
    }
    fn completed_units(&self) -> u64 {
        self.delivered as u64
    }
    fn expected_units(&self) -> Option<u64> {
        Some(self.expected)
    }
    fn retry_linkage(&self) -> &[String] {
        &self.retry_linkage
    }
}

/// §3.1.2 mix chain: Fig. 1's topology with measurable anonymity.
pub struct Mixnet;

impl Scenario for Mixnet {
    type Config = MixnetConfig;
    type Report = MixnetReport;
    const NAME: &'static str = "mixnet";

    fn run_with(cfg: &MixnetConfig, seed: u64, opts: &RunOptions) -> MixnetReport {
        let config = MixnetConfig { seed, ..*cfg };
        run_impl(&config, opts)
    }
}

/// Multi-seed sweep of [`Mixnet`] on `exec`: one independent world per
/// derived seed, results identical for any conforming executor (pass
/// `dcp_sweep::ParallelExecutor` to fan across cores).
pub fn sweep(
    cfg: &MixnetConfig,
    builder: &dcp_core::SweepBuilder,
    exec: &impl dcp_core::SweepExecutor,
    opts: &RunOptions,
) -> dcp_core::SweepRun<MixnetReport> {
    Mixnet::sweep(cfg, builder, exec, opts)
}

impl MixnetReport {
    /// Derive the §3.1.2 table for sender `i`.
    pub fn table(&self, i: usize) -> DecouplingTable {
        let sender_col = if i == 0 {
            "Sender".to_string()
        } else {
            format!("Sender {}", i + 1)
        };
        let mut cols: Vec<&str> = vec![&sender_col];
        cols.extend(self.mix_names.iter().map(String::as_str));
        cols.push(&self.receiver_of[i]);
        let mut t = DecouplingTable::derive(&self.world, self.users[i], &cols);
        // Normalize headers to the paper's generic column names.
        t.columns[0] = "Sender".to_string();
        *t.columns.last_mut().unwrap() = "Receiver".to_string();
        t
    }

    /// The paper's table for a 2-mix chain.
    pub fn paper_table_two_mixes() -> DecouplingTable {
        DecouplingTable::expect(&[
            ("Sender", "(▲, ●)"),
            ("Mix 1", "(▲, ⊙)"),
            ("Mix 2", "(△, ⊙)"),
            ("Receiver", "(△, ●)"),
        ])
    }
}

struct Stats {
    delivered: usize,
    latencies: Vec<u64>,
    /// Retry-linkage check fed by every real attempt's outermost bytes.
    linkage: RetryLinkage,
}

const TOKEN_REAL: u64 = 0;
const TOKEN_CHAFF: u64 = 1;

/// Chaff copies are framed one-shot (never retried), in a seq space that
/// can never collide with the sender's ARQ seqs.
const CHAFF_SEQ_BASE: u64 = 1 << 62;

/// Payload discriminators (inside the innermost encryption layer).
const BODY_REAL: u8 = 0;
const BODY_CHAFF: u8 = 1;

struct SenderNode {
    entity: EntityId,
    user: UserId,
    first_mix: Endpoint<MixedMail, Control, BatchMix>,
    /// Plain mode: the full mix+receiver hop stack. Fleet mode: the
    /// receiver's single hop (mix hops come from the directory per wrap).
    hops: Vec<Hop>,
    /// Alternative hop stacks ending at other receivers (chaff targets).
    chaff_hops: Vec<Vec<Hop>>,
    mix_keys: Vec<KeyId>,
    /// Fleet mode: the home-directory handle the mix chain's hops are
    /// read from on every wrap (so retries pick up rotated keys).
    fleet: Option<FleetClient>,
    receiver_key: KeyId,
    delay_us: u64,
    chaff_delays: Vec<u64>,
    sent: bool,
    stats: Rc<RefCell<Stats>>,
    /// Per-message reliable-call driver (inert when recovery is
    /// disabled); the single open call is the real message.
    calls: Driver<()>,
    /// The real body, built once at first transmission so every attempt
    /// carries the same send-time stamp and the receiver can dedup.
    real_body: Vec<u8>,
    /// One-shot chaff seq counter (recovery framing only).
    chaff_seq: u64,
}

impl SenderNode {
    /// Emit one decoy: same size, same onion structure, random receiver,
    /// no information content. On the wire it is indistinguishable from a
    /// real message.
    fn send_chaff(&mut self, ctx: &mut Ctx) {
        use rand::Rng as _;
        let idx = ctx.rng.gen_range(0..self.chaff_hops.len());
        let hops = self.chaff_hops[idx].clone();
        let mut body = vec![BODY_CHAFF];
        body.extend_from_slice(&[0u8; 8]);
        body.extend_from_slice(format!("dear receiver, love sender {}", self.user.0).as_bytes());
        let (bytes, chaff_keys) = if let Some(client) = &self.fleet {
            // Fleet: seal the receiver's layer, then route it through the
            // directory-drawn chain with epoch-tagged layers.
            let ehops = client.hops();
            for _ in 0..(ehops.len() + hops.len()) {
                ctx.world.crypto_op("hpke_seal");
            }
            let (recv_cipher, _) =
                onion::wrap(ctx.rng, &hops, &body, Label::Public).expect("chaff recv seal");
            let (bytes, _) =
                onion::wrap_epochs(ctx.rng, &ehops, hops[0].addr, &recv_cipher, Label::Public)
                    .expect("chaff onion");
            let mut keys: Vec<KeyId> = ehops.iter().map(|h| h.hop.key_id).collect();
            keys.extend(hops.iter().map(|h| h.key_id));
            (bytes, keys)
        } else {
            for _ in 0..hops.len() {
                ctx.world.crypto_op("hpke_seal");
            }
            let (bytes, _) =
                onion::wrap(ctx.rng, &hops, &body, Label::Public).expect("chaff onion");
            (bytes, hops.iter().map(|h| h.key_id).collect())
        };
        // Chaff reveals the same envelope facts (someone at this address is
        // sending into the mix-net) but protects nothing further: every
        // layer seals emptiness.
        let mut label = Label::Public;
        for &k in chaff_keys.iter().rev() {
            label = label.sealed(k);
        }
        let label = Label::items([
            InfoItem::sensitive_identity(self.user, IdentityKind::Any),
            InfoItem::plain_data(self.user, DataKind::Payload),
        ])
        .and(label);
        if self.calls.enabled() {
            // Framed so recovered mixes can parse it, but fire-and-forget:
            // chaff that faults eat is just less cover, never lost work.
            self.chaff_seq += 1;
            let seq = CHAFF_SEQ_BASE | self.chaff_seq;
            ctx.send_to(
                self.first_mix,
                Message::new(wire::frame(seq, &bytes), label),
            );
            return;
        }
        ctx.send_to(self.first_mix, Message::new(bytes, label));
    }

    /// Wrap the stored real body in a fresh onion with the hand-built
    /// label nesting: every intermediate mix sees the (△, ⊙) "someone is
    /// using the mix-net" facts the paper ascribes to it, while only the
    /// receiver opens the message itself.
    fn wrap_real(&mut self, ctx: &mut Ctx) -> (Vec<u8>, Label) {
        let (bytes, layer_keys) = if let Some(client) = &self.fleet {
            // Fleet: the receiver's layer is sealed under its fixed key,
            // then routed through the directory-drawn mix chain with
            // epoch-tagged layers; the exit mix forwards the receiver's
            // ciphertext to its address. Hops are re-read from the
            // directory on every wrap, so after a stale-epoch rejection
            // the ARQ's next attempt seals under rotated keys.
            let ehops = client.hops();
            for _ in 0..(ehops.len() + self.hops.len()) {
                ctx.world.crypto_op("hpke_seal");
            }
            let (recv_cipher, _) = onion::wrap(ctx.rng, &self.hops, &self.real_body, Label::Public)
                .expect("recv seal");
            let (bytes, _) = onion::wrap_epochs(
                ctx.rng,
                &ehops,
                self.hops[0].addr,
                &recv_cipher,
                Label::Public,
            )
            .expect("onion");
            (
                bytes,
                ehops.iter().map(|h| h.hop.key_id).collect::<Vec<_>>(),
            )
        } else {
            for _ in 0..self.hops.len() {
                ctx.world.crypto_op("hpke_seal");
            }
            let (bytes, _auto_label) =
                onion::wrap(ctx.rng, &self.hops, &self.real_body, Label::Public).expect("onion");
            (bytes, self.mix_keys.clone())
        };
        let mut label = Label::items([
            InfoItem::plain_identity(self.user, IdentityKind::Any),
            InfoItem::sensitive_data(self.user, DataKind::Message),
        ])
        .sealed(self.receiver_key);
        for &k in layer_keys.iter().rev() {
            label = Label::items([
                InfoItem::plain_identity(self.user, IdentityKind::Any),
                InfoItem::plain_data(self.user, DataKind::Payload),
            ])
            .and(label)
            .sealed(k);
        }
        // Envelope: the first mix (and any tap on the access link) sees
        // the sender's address.
        let label = Label::items([
            InfoItem::sensitive_identity(self.user, IdentityKind::Any),
            InfoItem::plain_data(self.user, DataKind::Payload),
        ])
        .and(label);
        (bytes, label)
    }

    /// (Re)transmit the real message: every attempt is a fresh onion over
    /// the same body, so no two attempts share a byte on any wire.
    fn transmit_real(&mut self, ctx: &mut Ctx, att: Attempt) {
        let (bytes, label) = self.wrap_real(ctx);
        self.stats
            .borrow_mut()
            .linkage
            .record(self.user.0, att.seq, att.attempt, &bytes);
        ctx.send_to(
            self.first_mix,
            Message::new(wire::frame(att.seq, &bytes), label).with_flow(self.user.0),
        );
        ctx.set_timer(att.timer_delay_us, att.token);
    }
}

impl Node for SenderNode {
    fn entity(&self) -> EntityId {
        self.entity
    }
    fn on_start(&mut self, ctx: &mut Ctx) {
        ctx.world.record(
            self.entity,
            InfoItem::sensitive_identity(self.user, IdentityKind::Any),
        );
        ctx.world.record(
            self.entity,
            InfoItem::sensitive_data(self.user, DataKind::Message),
        );
        ctx.set_timer(self.delay_us, TOKEN_REAL);
        for (i, &d) in self.chaff_delays.iter().enumerate() {
            let _ = i;
            ctx.set_timer(d, TOKEN_CHAFF);
        }
    }
    fn on_timer(&mut self, ctx: &mut Ctx, token: u64) {
        match self.calls.on_timer(ctx, token) {
            CallEvent::App(_) => {} // an app timer: fall through
            CallEvent::Ignored => return,
            CallEvent::Retry(att) => {
                self.transmit_real(ctx, att);
                return;
            }
            // The one real message is abandoned; chaff keeps flowing.
            CallEvent::Exhausted { .. } => return,
        }
        if token == TOKEN_CHAFF {
            self.send_chaff(ctx);
            return;
        }
        if self.sent {
            return;
        }
        self.sent = true;
        let payload = format!("dear receiver, love sender {}", self.user.0);
        // Send-time stamp rides in the payload so the receiver can compute
        // latency without out-of-band state.
        let mut body = vec![BODY_REAL];
        body.extend_from_slice(&ctx.now.as_us().to_be_bytes());
        body.extend_from_slice(payload.as_bytes());
        self.real_body = body;
        if let Some(att) = self.calls.begin(()) {
            self.transmit_real(ctx, att);
            return;
        }
        let (bytes, label) = self.wrap_real(ctx);
        ctx.send_to(
            self.first_mix,
            Message::new(bytes, label).with_flow(self.user.0),
        );
    }
    fn on_message(&mut self, _ctx: &mut Ctx, _from: NodeId, msg: Message) {
        // The only traffic a sender ever receives is its own ack, retraced
        // hop by hop from the receiver. Acks for chaff seqs (or duplicated
        // acks) simply don't match an open call.
        if self.calls.enabled() {
            if let Some((seq, _)) = wire::unframe(&msg.bytes) {
                self.calls.complete(seq);
            }
        }
    }
}

struct ReceiverNode {
    entity: EntityId,
    kp: hpke::Keypair,
    key_id: KeyId,
    stats: Rc<RefCell<Stats>>,
    /// Recovery wiring: unframe deliveries and ack every copy.
    recover: bool,
    /// Fleet runs: mark acks with [`RESP_BIT`] so full-mesh mixes can
    /// tell direction without topology.
    resp_bit: bool,
    /// Real payloads already counted (a retransmitted copy carries the
    /// same body, so content is the dedup key).
    seen: BTreeSet<Vec<u8>>,
}

impl Node for ReceiverNode {
    fn entity(&self) -> EntityId {
        self.entity
    }
    fn on_message(&mut self, ctx: &mut Ctx, from: NodeId, msg: Message) {
        let cipher: &[u8] = if self.recover {
            let Some((seq, body)) = wire::unframe(&msg.bytes) else {
                return; // unframed delivery on a recovered run: drop
            };
            // Ack every copy (chaff and duplicates included): the ack
            // retraces the mix chain, and a copy that arrived must stop
            // its sender's retries regardless of what it decodes to.
            let out_seq = if self.resp_bit { seq | RESP_BIT } else { seq };
            ctx.send(from, Message::public(wire::frame(out_seq, &[])));
            body
        } else {
            &msg.bytes
        };
        // Final onion layer: the receiver peels its own seal. Undecodable
        // or misrouted deliveries are dropped — fail closed.
        ctx.world.crypto_op("hpke_open");
        let Ok(unwrapped) = onion::unwrap_layer(&self.kp, cipher) else {
            return;
        };
        let Unwrapped::Deliver { payload } = unwrapped else {
            return;
        };
        if onion::unwrap_label(
            match &msg.label {
                Label::Bundle(parts) if parts.len() == 2 => &parts[1],
                other => other,
            },
            self.key_id,
        )
        .is_err()
        {
            return; // label desync: bytes and labels disagree — drop
        }
        if payload.len() < 9 || payload[0] == BODY_CHAFF {
            return; // decoy (or truncated): drop silently
        }
        if self.recover && !self.seen.insert(payload.clone()) {
            return; // another copy of a counted message: exactly-once
        }
        let sent_at = u64::from_be_bytes(payload[1..9].try_into().unwrap());
        ctx.world.span("e2e", sent_at, ctx.now.as_us());
        let mut stats = self.stats.borrow_mut();
        stats.delivered += 1;
        stats.latencies.push(ctx.now.as_us() - sent_at);
    }
}

fn run_impl(config: &MixnetConfig, opts: &RunOptions) -> MixnetReport {
    use rand::SeedableRng;
    let config = *config;
    let mut setup_rng = rand::rngs::StdRng::seed_from_u64(config.seed ^ 0x317);
    assert!(config.mixes >= 1 && config.senders >= 1);

    let (mut world, harness) = Harness::begin(Mixnet::NAME, config.seed, opts);
    let user_org = world.add_org("senders");
    let recv_org = world.add_org("receivers");

    // Fleet mode: mixes come from a gossiped directory instead of static
    // wiring. `pool = 0` means "the wiring's own mix count".
    let fleet_on = opts.fleet.enabled && config.mixes > 0;
    assert!(
        !fleet_on || opts.recover.enabled,
        "fleet mode requires the recovery runtime (RunOptions::recovered): \
         churn survival rides the ARQ's re-sealed retransmissions"
    );
    let pool = if fleet_on {
        config.mixes.max(opts.fleet.pool as usize)
    } else {
        config.mixes
    };

    let mut mix_entities = Vec::new();
    let mut pool_names = Vec::new();
    for i in 0..pool {
        let org = world.add_org(&format!("mix-op-{i}"));
        let name = format!("Mix {}", i + 1);
        mix_entities.push(world.add_entity(&name, org, None));
        pool_names.push(name);
    }

    let mut users = Vec::new();
    let mut sender_entities = Vec::new();
    for i in 0..config.senders {
        let u = world.add_user();
        let name = if i == 0 {
            "Sender".to_string()
        } else {
            format!("Sender {}", i + 1)
        };
        sender_entities.push(world.add_entity(&name, user_org, Some(u)));
        users.push(u);
    }
    let mut receiver_entities = Vec::new();
    for i in 0..config.senders {
        let name = if i == 0 {
            "Receiver".to_string()
        } else {
            format!("Receiver {}", i + 1)
        };
        receiver_entities.push(world.add_entity(&name, recv_org, None));
    }

    // Directory entities register after every baseline entity so the
    // byte-identity probe can compare fleet runs against the fixed-mix
    // baseline on the baseline's own rows.
    let mix_addrs: Vec<u16> = (0..pool).map(|i| 100 + i as u16).collect();
    let mut dir_entities = Vec::new();
    let mut fleet_setup = if fleet_on {
        let dir_org = world.add_org("directory-auth");
        for j in 0..opts.fleet.directories.max(1) {
            dir_entities.push(world.add_entity(&format!("Directory {}", j + 1), dir_org, None));
        }
        Some(FleetSetup::build(
            &mut world,
            &opts.fleet,
            config.seed,
            &mix_entities,
            &mix_addrs,
        ))
    } else {
        None
    };
    // One shared chain: a mix-net batches, so every sender traverses the
    // same mixes in the same order (fleet runs pin it at t = 0 from the
    // genesis directory; churn is survived through the pinned chain's
    // ARQ, keeping knowledge byte-identical to the fixed-mix run).
    let chain: Vec<u16> = match &mut fleet_setup {
        Some(fs) => fs.chain(config.mixes).expect("fleet pool < chain length"),
        None => (0..config.mixes as u16).collect(),
    };
    let mix_names: Vec<String> = chain
        .iter()
        .map(|&m| pool_names[m as usize].clone())
        .collect();

    // Keys: one per mix (fleet mode mints them per epoch instead — the
    // keypairs are still drawn so the seed stream, and with it the
    // sender→receiver permutation below, matches the fixed-mix baseline).
    let mix_kps: Vec<hpke::Keypair> = (0..config.mixes)
        .map(|_| hpke::Keypair::generate(&mut setup_rng))
        .collect();
    let mix_keys: Vec<KeyId> = if fleet_on {
        Vec::new()
    } else {
        mix_entities.iter().map(|&e| world.new_key(&[e])).collect()
    };
    let recv_kps: Vec<hpke::Keypair> = (0..config.senders)
        .map(|_| hpke::Keypair::generate(&mut setup_rng))
        .collect();
    let recv_keys: Vec<KeyId> = receiver_entities
        .iter()
        .map(|&e| world.new_key(&[e]))
        .collect();

    let mut net = harness.network(world, LinkParams::wan_ms(5));

    // Node layout: mixes 0..pool, receivers after, senders after those,
    // then (fleet runs) the directory nodes.
    let mix_ids: Vec<NodeId> = (0..pool).map(NodeId).collect();
    let recv_ids: Vec<NodeId> = (0..config.senders).map(|i| NodeId(pool + i)).collect();
    let dir_ids: Vec<NodeId> = (0..dir_entities.len())
        .map(|j| NodeId(pool + 2 * config.senders + j))
        .collect();
    let mix_addr = |i: usize| 100 + i as u16;
    let recv_addr = |i: usize| 1000 + i as u16;

    for i in 0..pool {
        // Plain mode: each mix forwards to the next (the last one to the
        // receivers). Fleet mode: chains are directory-drawn, so every
        // mix can route to every other mix and to every receiver.
        let mut addr_map: Vec<(u16, NodeId)> = Vec::new();
        if fleet_on {
            for (j, &m) in mix_ids.iter().enumerate().take(pool) {
                if j != i {
                    addr_map.push((mix_addr(j), m));
                }
            }
            for (j, &r) in recv_ids.iter().enumerate() {
                addr_map.push((recv_addr(j), r));
            }
        } else if i + 1 < config.mixes {
            addr_map.push((mix_addr(i + 1), mix_ids[i + 1]));
        } else {
            for (j, &r) in recv_ids.iter().enumerate() {
                addr_map.push((recv_addr(j), r));
            }
        }
        let max_wait = config.mix_max_wait_us.unwrap_or(config.window_us + 200_000);
        let mut mix = match &mut fleet_setup {
            Some(fs) => MixNode::new_fleet(
                mix_entities[i],
                fs.relay(i as u16, dir_ids[i % dir_ids.len()]),
                config.batch_size,
                max_wait,
                addr_map,
            ),
            None => MixNode::new(
                mix_entities[i],
                mix_kps[i].clone(),
                mix_keys[i],
                config.batch_size,
                max_wait,
                addr_map,
            ),
        }
        .with_recovery(opts.recover.enabled);
        if !config.shuffle {
            mix = mix.without_shuffle();
        }
        Harness::add_role::<BatchMix>(&mut net, Box::new(mix));
    }
    let stats = Rc::new(RefCell::new(Stats {
        delivered: 0,
        latencies: Vec::new(),
        linkage: RetryLinkage::new(),
    }));
    for i in 0..config.senders {
        Harness::add_role::<MailReceiver>(
            &mut net,
            Box::new(ReceiverNode {
                entity: receiver_entities[i],
                kp: recv_kps[i].clone(),
                key_id: recv_keys[i],
                stats: stats.clone(),
                recover: opts.recover.enabled,
                resp_bit: fleet_on,
                seen: BTreeSet::new(),
            }),
        );
    }

    // Sender i messages receiver perm[i] (a seeded derangement-ish shuffle).
    let mut perm: Vec<usize> = (0..config.senders).collect();
    use rand::seq::SliceRandom;
    perm.shuffle(&mut setup_rng);
    let receiver_name = |i: usize| {
        if i == 0 {
            "Receiver".to_string()
        } else {
            format!("Receiver {}", i + 1)
        }
    };
    let receiver_of: Vec<String> = perm.iter().map(|&t| receiver_name(t)).collect();

    for (i, (&u, &e)) in users.iter().zip(sender_entities.iter()).enumerate() {
        let target = perm[i];
        let recv_hop = |r: usize| Hop {
            addr: recv_addr(r),
            pk: recv_kps[r].public,
            key_id: recv_keys[r],
        };
        let hops: Vec<Hop> = if fleet_on {
            // Fleet: only the receiver's hop is static; the mix hops are
            // read from the directory on every wrap.
            vec![recv_hop(target)]
        } else {
            let mut hops: Vec<Hop> = (0..config.mixes)
                .map(|m| Hop {
                    addr: mix_addr(m),
                    pk: mix_kps[m].public,
                    key_id: mix_keys[m],
                })
                .collect();
            hops.push(recv_hop(target));
            hops
        };
        let delay_us = setup_rng.gen_range(0..config.window_us.max(1));
        let chaff_hops: Vec<Vec<Hop>> = (0..config.senders)
            .map(|r| {
                if fleet_on {
                    vec![recv_hop(r)]
                } else {
                    let mut hs: Vec<Hop> = (0..config.mixes)
                        .map(|m| Hop {
                            addr: mix_addr(m),
                            pk: mix_kps[m].public,
                            key_id: mix_keys[m],
                        })
                        .collect();
                    hs.push(recv_hop(r));
                    hs
                }
            })
            .collect();
        let chaff_delays: Vec<u64> = (0..config.chaff_per_sender)
            .map(|_| setup_rng.gen_range(0..config.window_us.max(1)))
            .collect();
        let client = fleet_setup.as_mut().map(|fs| fs.client(i, chain.clone()));
        Harness::add_role::<MailSender>(
            &mut net,
            Box::new(SenderNode {
                entity: e,
                user: u,
                first_mix: Endpoint::new(mix_ids[chain[0] as usize].0),
                hops,
                chaff_hops,
                mix_keys: mix_keys.clone(),
                fleet: client,
                receiver_key: recv_keys[target],
                delay_us,
                chaff_delays,
                sent: false,
                stats: stats.clone(),
                calls: Driver::new(&opts.recover, derive_seed(config.seed, 0x3170 + i as u64)),
                real_body: Vec::new(),
                chaff_seq: 0,
            }),
        );
    }

    if let Some(fs) = &mut fleet_setup {
        for (j, &dir_entity) in dir_entities.iter().enumerate() {
            let peers: Vec<NodeId> = dir_ids
                .iter()
                .enumerate()
                .filter(|&(p, _)| p != j)
                .map(|(_, &id)| id)
                .collect();
            Harness::add_directory(&mut net, Box::new(fs.directory_node(j, dir_entity, peers)));
        }
    }

    let core = harness.finish(net);
    let fleet = fleet_setup
        .map(|fs| fs.summary())
        .unwrap_or_else(FleetSummary::disabled);
    let stats = Rc::try_unwrap(stats).map_err(|_| ()).unwrap().into_inner();
    let trace = core.trace;
    let entry_mix = mix_ids[chain[0] as usize];
    let exit_mix = mix_ids[*chain.last().unwrap() as usize];
    let attack = adversary::timing_correlation(&trace, entry_mix, &[exit_mix]);
    let anon = adversary::mean_anonymity_set(&trace, &[exit_mix]);
    MixnetReport {
        world: core.world,
        trace,
        delivered: stats.delivered,
        mean_latency_us: mean_us(&stats.latencies),
        attack,
        mean_anonymity_set: anon,
        users,
        mix_names,
        receiver_of,
        fault_log: core.fault_log,
        metrics: core.metrics,
        expected: config.senders as u64,
        retry_linkage: stats.linkage.violations(),
        fleet,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dcp_core::{analyze, collusion::entity_collusion, FaultConfig};

    fn run(config: MixnetConfig) -> MixnetReport {
        Mixnet::run(&config, config.seed)
    }

    #[test]
    fn instrumented_run_counts_onion_layers() {
        let report = Mixnet::run_instrumented(&cfg(), 77);
        assert_eq!(report.delivered, 6);
        assert!(report.metrics.wire_accounting_holds());
        assert_eq!(report.metrics.span_count("e2e"), 6);
        // Each sender wraps mixes+1 layers; each layer is opened exactly
        // once along the chain (2 mixes + receiver here).
        assert_eq!(report.metrics.crypto_ops["hpke_seal"], 6 * 3);
        assert_eq!(report.metrics.crypto_ops["hpke_open"], 6 * 3);
    }

    fn cfg() -> MixnetConfig {
        MixnetConfig {
            senders: 6,
            mixes: 2,
            batch_size: 3,
            window_us: 100_000,
            shuffle: true,
            chaff_per_sender: 0,
            mix_max_wait_us: None,
            seed: 77,
        }
    }

    #[test]
    fn reproduces_paper_table() {
        let report = run(cfg());
        assert_eq!(report.delivered, 6);
        let derived = report.table(0);
        let expected = MixnetReport::paper_table_two_mixes();
        assert_eq!(
            derived,
            expected,
            "diff:\n{}",
            derived.diff(&expected).unwrap_or_default()
        );
        assert!(analyze(&report.world).decoupled);
    }

    #[test]
    fn recoupling_requires_first_and_last_knowledge() {
        let report = run(cfg());
        let rep = entity_collusion(&report.world, report.users[0], 4);
        assert_eq!(
            rep.min_coalition_size,
            Some(2),
            "{:?}",
            rep.minimal_coalitions
        );
        // Mix 1 alone never suffices.
        assert!(rep
            .minimal_coalitions
            .iter()
            .all(|c| c != &vec!["Mix 1".to_string()]));
    }

    #[test]
    fn batching_grows_anonymity_sets() {
        let no_batch = run(MixnetConfig {
            batch_size: 1,
            seed: 3,
            ..cfg()
        });
        let batched = run(MixnetConfig {
            batch_size: 6,
            seed: 3,
            ..cfg()
        });
        assert!(no_batch.mean_anonymity_set <= 1.0 + 1e-9);
        assert!(
            batched.mean_anonymity_set > no_batch.mean_anonymity_set,
            "{} vs {}",
            batched.mean_anonymity_set,
            no_batch.mean_anonymity_set
        );
    }

    #[test]
    fn batching_degrades_timing_attack() {
        // Averaged over seeds: unbatched FIFO mixes leak ordering, big
        // batches push the attacker toward the random baseline.
        let mean_acc = |batch: usize| -> f64 {
            let runs = 5;
            (0..runs)
                .map(|s| {
                    run(MixnetConfig {
                        senders: 8,
                        mixes: 2,
                        batch_size: batch,
                        window_us: 400_000,
                        shuffle: true,
                        chaff_per_sender: 0,
                        mix_max_wait_us: None,
                        seed: 1000 + s,
                    })
                    .attack
                    .accuracy
                })
                .sum::<f64>()
                / runs as f64
        };
        let unbatched = mean_acc(1);
        let batched = mean_acc(8);
        assert!(
            unbatched > 0.8,
            "FIFO ordering should correlate well: {unbatched}"
        );
        assert!(
            batched < unbatched - 0.2,
            "batching should hurt the attacker: {batched} vs {unbatched}"
        );
    }

    #[test]
    fn batching_costs_latency() {
        let fast = run(MixnetConfig {
            batch_size: 1,
            seed: 5,
            ..cfg()
        });
        let slow = run(MixnetConfig {
            batch_size: 6,
            seed: 5,
            ..cfg()
        });
        assert!(
            slow.mean_latency_us > fast.mean_latency_us,
            "{} vs {}",
            slow.mean_latency_us,
            fast.mean_latency_us
        );
    }

    #[test]
    fn deeper_chains_still_deliver_and_decouple() {
        let report = run(MixnetConfig {
            senders: 4,
            mixes: 4,
            batch_size: 2,
            window_us: 100_000,
            shuffle: true,
            chaff_per_sender: 0,
            mix_max_wait_us: None,
            seed: 8,
        });
        assert_eq!(report.delivered, 4);
        assert!(analyze(&report.world).decoupled);
        // Middle mixes know only (△, ⊙).
        let t = report.table(0);
        assert_eq!(t.tuples[2], "(△, ⊙)");
        assert_eq!(t.tuples[3], "(△, ⊙)");
    }
    #[test]
    fn batching_without_shuffle_is_a_broken_mix() {
        // Ablation: threshold batching with FIFO output preserves the
        // arrival order, so the correlation attack stays strong even
        // though every message waits for a full batch.
        let mean_acc = |shuffle: bool| -> f64 {
            let runs = 5;
            (0..runs)
                .map(|s| {
                    run(MixnetConfig {
                        senders: 8,
                        mixes: 2,
                        batch_size: 8,
                        window_us: 400_000,
                        shuffle,
                        chaff_per_sender: 0,
                        mix_max_wait_us: None,
                        seed: 2000 + s,
                    })
                    .attack
                    .accuracy
                })
                .sum::<f64>()
                / runs as f64
        };
        let fifo = mean_acc(false);
        let mixed = mean_acc(true);
        assert!(fifo > 0.8, "FIFO batching leaks ordering: {fifo}");
        assert!(
            mixed < fifo - 0.3,
            "shuffling is load-bearing: {mixed} vs {fifo}"
        );
    }

    #[test]
    fn chaff_degrades_the_attacker_at_a_bandwidth_cost() {
        let mean = |chaff: usize| {
            let runs = 5;
            let mut acc = 0.0;
            let mut bytes = 0usize;
            for s in 0..runs {
                let r = run(MixnetConfig {
                    senders: 6,
                    mixes: 2,
                    batch_size: 2,
                    window_us: 300_000,
                    shuffle: true,
                    chaff_per_sender: chaff,
                    mix_max_wait_us: None,
                    seed: 3000 + s,
                });
                assert_eq!(r.delivered, 6, "real messages still arrive");
                acc += r.attack.accuracy;
                bytes += r.trace.total_bytes();
            }
            (acc / runs as f64, bytes / runs as usize)
        };
        let (acc0, bytes0) = mean(0);
        let (acc3, bytes3) = mean(3);
        assert!(
            acc3 < acc0,
            "chaff must hurt the attacker: {acc3} vs {acc0}"
        );
        assert!(
            bytes3 > bytes0 * 2,
            "and it costs bandwidth: {bytes3} vs {bytes0}"
        );
    }

    #[test]
    fn recovered_harsh_run_delivers_every_message_exactly_once() {
        use dcp_core::ScenarioReport as _;
        use dcp_faults::dst::KnowledgeFingerprint;
        let cfg = MixnetConfig {
            senders: 4,
            mixes: 2,
            batch_size: 2,
            window_us: 100_000,
            shuffle: true,
            chaff_per_sender: 0,
            mix_max_wait_us: Some(50_000),
            seed: 31,
        };
        let calm = Mixnet::run_with(&cfg, 31, &RunOptions::recovered(&FaultConfig::calm()));
        let harsh = Mixnet::run_with(&cfg, 31, &RunOptions::recovered(&FaultConfig::harsh()));
        assert_eq!(calm.delivered, 4, "calm recovered run delivers everything");
        assert_eq!(
            harsh.delivered as u64,
            harsh.expected_units().unwrap(),
            "under harsh faults the recovery layer still finishes the workload"
        );
        assert!(!harsh.fault_log.is_empty(), "harsh actually injected");
        assert!(
            harsh.retry_linkage().is_empty(),
            "re-wrapped onion attempts are never linkable: {:?}",
            harsh.retry_linkage()
        );
        assert_eq!(
            KnowledgeFingerprint::of(&harsh.world),
            KnowledgeFingerprint::of(&calm.world),
            "recovery must not change anyone's knowledge ledger"
        );
        assert_eq!(harsh.table(0), calm.table(0));
        assert!(analyze(&harsh.world).decoupled);
    }

    /// The tentpole acceptance bar, mix-net edition: a fleet-enabled run
    /// under `harsh_fleet()` delivers the whole workload with knowledge
    /// tables byte-identical to the fixed-mix, fault-free baseline.
    #[test]
    fn fleet_run_survives_churn_with_baseline_knowledge() {
        use dcp_core::ScenarioReport as _;
        use dcp_runtime::{entities_silent, restricted_fingerprint, FleetConfig};

        let cfg = MixnetConfig {
            senders: 4,
            mixes: 2,
            batch_size: 2,
            window_us: 100_000,
            shuffle: true,
            chaff_per_sender: 0,
            mix_max_wait_us: Some(50_000),
            seed: 41,
        };
        let baseline = Mixnet::run_with(&cfg, 41, &RunOptions::recovered(&FaultConfig::calm()));
        let fleet = Mixnet::run_with(
            &cfg,
            41,
            &RunOptions::recovered(&FaultConfig::harsh_fleet())
                .with_fleet(&FleetConfig::standard()),
        );

        assert_eq!(
            fleet.delivered as u64,
            fleet.expected_units().unwrap(),
            "fleet run under harsh_fleet lost messages"
        );
        assert!(fleet.fleet.enabled);
        assert!(fleet.fleet.converged, "directories ended divergent");
        assert!(
            fleet.fleet.stats.rotations > 0,
            "rotation schedule never fired"
        );
        assert!(entities_silent(&fleet.world, "Directory"));

        let names: BTreeSet<String> = baseline
            .world
            .entities()
            .iter()
            .map(|e| e.name.clone())
            .collect();
        assert_eq!(
            restricted_fingerprint(&fleet.world, &names),
            restricted_fingerprint(&baseline.world, &names),
            "fleet run changed a baseline entity's knowledge"
        );
        assert!(analyze(&fleet.world).decoupled);
    }

    /// Mid-run key rotation is knowledge-invariant: the same run with
    /// rotation disabled produces identical knowledge tables.
    #[test]
    fn fleet_rotation_never_changes_knowledge() {
        use dcp_faults::dst::KnowledgeFingerprint;
        use dcp_runtime::FleetConfig;

        let cfg = MixnetConfig {
            senders: 4,
            mixes: 2,
            batch_size: 2,
            window_us: 100_000,
            shuffle: true,
            chaff_per_sender: 1,
            mix_max_wait_us: Some(50_000),
            seed: 43,
        };
        let rotating = Mixnet::run_with(
            &cfg,
            43,
            &RunOptions::recovered(&FaultConfig::calm()).with_fleet(&FleetConfig::standard()),
        );
        let frozen = Mixnet::run_with(
            &cfg,
            43,
            &RunOptions::recovered(&FaultConfig::calm())
                .with_fleet(&FleetConfig::standard().max_rotations(0)),
        );
        assert!(rotating.fleet.stats.rotations > 0);
        assert_eq!(frozen.fleet.stats.rotations, 0);
        assert_eq!(rotating.delivered, 4, "rotation must not lose messages");
        assert_eq!(frozen.delivered, 4);
        assert_eq!(
            KnowledgeFingerprint::of(&rotating.world),
            KnowledgeFingerprint::of(&frozen.world),
            "key rotation leaked into a knowledge ledger"
        );
    }

    #[test]
    fn recovered_calm_run_matches_plain_completion() {
        let plain = run(cfg());
        let rec = Mixnet::run_with(&cfg(), 77, &RunOptions::recovered(&FaultConfig::calm()));
        assert_eq!(plain.delivered, rec.delivered);
        assert_eq!(plain.table(0), rec.table(0));
    }

    #[test]
    fn recovered_run_keeps_chaff_flowing() {
        // Chaff is framed one-shot on recovered runs: a calm recovered
        // run must still deliver every real message and drop every decoy.
        let rec = Mixnet::run_with(
            &MixnetConfig {
                chaff_per_sender: 2,
                ..cfg()
            },
            77,
            &RunOptions::recovered(&FaultConfig::calm()),
        );
        assert_eq!(rec.delivered, 6, "chaff never counts, reals all arrive");
    }
}
