//! The batching mix node.

use dcp_core::{EntityId, KeyId, Label};
use dcp_crypto::hpke;
use dcp_runtime::{wire, Ctx, FleetRelay, HopMap, Message, Node, NodeId};
use dcp_transport::onion::{self, Unwrapped};
use rand::seq::SliceRandom;

/// Timer token for the flush deadline.
const FLUSH_TIMER: u64 = 1;

/// Direction bit on fleet-mode ack frames. Plain chains infer direction
/// from topology (an ack can only arrive from the node a mix forwards
/// to); directory-drawn chains give every mix a full-mesh address map,
/// where that inference misreads a forward copy from the previous mix as
/// an ack. Fleet acks therefore carry the direction explicitly.
pub(crate) const RESP_BIT: u64 = 1 << 63;

/// A mix's decryption material: one fixed keypair (plain runs) or an
/// epoch keyring fed by the fleet directory (fleet runs).
enum MixKeys {
    Plain { kp: hpke::Keypair, key_id: KeyId },
    Fleet(FleetRelay),
}

/// A threshold mix: it pools incoming messages, and once `batch_size`
/// messages are queued (or the deadline expires) it peels one onion layer
/// from each, shuffles them, and forwards the whole batch at once —
/// destroying the arrival/departure order correlation.
pub struct MixNode {
    entity: EntityId,
    keys: MixKeys,
    batch_size: usize,
    /// Shuffle each batch before flushing (a FIFO "mix" that batches but
    /// preserves order is the classic broken-mix ablation).
    shuffle: bool,
    /// Flush any partial pool after this many µs of inactivity.
    max_wait_us: u64,
    /// addr → node for forwarding.
    addr_map: Vec<(u16, NodeId)>,
    pool: Vec<(u16, Message)>,
    timer_armed: bool,
    /// Batch sizes at each flush (anonymity-set record).
    pub flush_sizes: Vec<usize>,
    /// Recovery wiring: unframe hop seqs forward, route acks backward.
    recover: bool,
    /// Per-copy ack back-routes keyed by the hop seq this mix minted.
    /// Take-once, so a duplicated ack cannot ride another copy's route.
    hop: HopMap<(NodeId, u64)>,
}

impl MixNode {
    /// Create a mix.
    pub fn new(
        entity: EntityId,
        kp: hpke::Keypair,
        key_id: KeyId,
        batch_size: usize,
        max_wait_us: u64,
        addr_map: Vec<(u16, NodeId)>,
    ) -> Self {
        assert!(batch_size >= 1);
        MixNode {
            entity,
            keys: MixKeys::Plain { kp, key_id },
            batch_size,
            shuffle: true,
            max_wait_us,
            addr_map,
            pool: Vec::new(),
            timer_armed: false,
            flush_sizes: Vec::new(),
            recover: false,
            hop: HopMap::new(),
        }
    }

    /// Disable batch shuffling (ablation: batching alone does not mix).
    pub fn without_shuffle(mut self) -> Self {
        self.shuffle = false;
        self
    }

    /// Create a fleet-mode mix: decryption material comes from the
    /// directory's epoch keyring instead of a fixed keypair. The mix
    /// rotates keys on the directory's schedule and peels layers by
    /// their cleartext epoch tag, fail-closed on stale or future epochs.
    pub fn new_fleet(
        entity: EntityId,
        relay: FleetRelay,
        batch_size: usize,
        max_wait_us: u64,
        addr_map: Vec<(u16, NodeId)>,
    ) -> Self {
        assert!(batch_size >= 1);
        MixNode {
            entity,
            keys: MixKeys::Fleet(relay),
            batch_size,
            shuffle: true,
            max_wait_us,
            addr_map,
            pool: Vec::new(),
            timer_armed: false,
            flush_sizes: Vec::new(),
            recover: false,
            hop: HopMap::new(),
        }
    }

    /// Enable the recovery wire protocol: framed hop seqs on the forward
    /// path, end-to-end acks routed back hop by hop, and a flush deadline
    /// re-armed on every arrival (a churned mix can lose a timer, so one
    /// armed timer is not enough under faults).
    pub fn with_recovery(mut self, enabled: bool) -> Self {
        self.recover = enabled;
        self
    }

    fn flush(&mut self, ctx: &mut Ctx) {
        if self.pool.is_empty() {
            return;
        }
        self.flush_sizes.push(self.pool.len());
        let mut batch = std::mem::take(&mut self.pool);
        if self.shuffle {
            batch.shuffle(ctx.rng);
        }
        for (next_addr, msg) in batch {
            // An unroutable next hop (malformed or misdirected under
            // faults) is dropped, never misdelivered.
            let Some(node) = self
                .addr_map
                .iter()
                .find(|(a, _)| *a == next_addr)
                .map(|(_, n)| *n)
            else {
                continue;
            };
            ctx.send(node, msg);
        }
    }
}

impl Node for MixNode {
    fn entity(&self) -> EntityId {
        self.entity
    }

    fn on_start(&mut self, ctx: &mut Ctx) {
        if let MixKeys::Fleet(f) = &self.keys {
            f.arm(ctx);
        }
    }

    fn on_message(&mut self, ctx: &mut Ctx, from: NodeId, msg: Message) {
        // Recovery: route acks back to the sender along the stored route.
        // Plain chains recognize an ack by topology (it arrives from the
        // node this mix forwards to); fleet chains are full-mesh, so acks
        // are recognized by their explicit direction bit instead.
        if self.recover {
            let fleet = matches!(self.keys, MixKeys::Fleet(_));
            let is_ack = if fleet {
                wire::unframe(&msg.bytes).is_some_and(|(s, _)| s & RESP_BIT != 0)
            } else {
                self.addr_map.iter().any(|(_, n)| *n == from)
            };
            if is_ack {
                let Some((pseq, body)) = wire::unframe(&msg.bytes) else {
                    return; // unframed ack on a recovered run: drop
                };
                let Some((prev, prev_seq)) = self.hop.take(pseq & !RESP_BIT) else {
                    return; // duplicated ack: its route was consumed
                };
                // Mix-bound acks keep the direction bit; the final hop
                // back to the sender carries the bare ARQ seq.
                let to_mix = fleet && self.addr_map.iter().any(|(_, n)| *n == prev);
                let out_seq = if to_mix {
                    prev_seq | RESP_BIT
                } else {
                    prev_seq
                };
                let label = msg.label.clone();
                ctx.send(prev, Message::new(wire::frame(out_seq, body), label));
                return;
            }
        }
        let (cseq, cipher): (u64, &[u8]) = if self.recover {
            match wire::unframe(&msg.bytes) {
                Some((s, b)) => (s, b),
                None => return, // unframed message on a recovered run: drop
            }
        } else {
            (0, &msg.bytes)
        };
        // Peel one layer of bytes and label. Anything that fails to peel
        // (tampered, truncated, or not for us) is dropped: a mix fails
        // closed rather than forwarding plaintext it cannot vouch for.
        ctx.world.crypto_op("hpke_open");
        let (unwrapped, layer_key) = match &mut self.keys {
            MixKeys::Plain { kp, key_id } => match onion::unwrap_layer(kp, cipher) {
                Ok(u) => (u, *key_id),
                Err(_) => return,
            },
            MixKeys::Fleet(f) => {
                // Fleet layers carry their sealing epoch in the clear:
                // select the matching keypair first, fail-closed — a
                // stale or future epoch is a typed rejection (counted in
                // the run stats), never a guessed key.
                let Ok((epoch, sealed)) = onion::read_epoch(cipher) else {
                    return; // missing epoch tag: drop
                };
                let Ok((kp, key_id)) = f.open_epoch(epoch) else {
                    return; // stale/future epoch: typed, fail-closed
                };
                match onion::unwrap_layer(kp, sealed) {
                    Ok(u) => (u, key_id),
                    Err(_) => return,
                }
            }
        };
        let outer_label = match &msg.label {
            Label::Bundle(parts) if parts.len() == 2 => parts[1].clone(),
            other => other.clone(),
        };
        // Label desync means bytes and labels no longer describe the same
        // message: fail closed and drop, like a failed peel.
        let Ok(inner_label) = onion::unwrap_label(&outer_label, layer_key) else {
            return;
        };
        let (next, bytes) = match unwrapped {
            Unwrapped::Forward { next, bytes } => (next, bytes),
            // A terminal layer addressed to a mix is a protocol error;
            // drop it rather than guessing a destination.
            Unwrapped::Deliver { .. } => return,
        };
        let body = if self.recover {
            // Mint a hop seq for this copy and remember the way back, so
            // the receiver's ack can retrace the chain without the mix
            // ever learning the end-to-end pairing.
            let pseq = self.hop.insert((from, cseq));
            wire::frame(pseq, &bytes)
        } else {
            bytes
        };
        let mut fwd = Message::new(body, inner_label);
        fwd.flow = msg.flow;
        self.pool.push((next, fwd));

        if self.pool.len() >= self.batch_size {
            self.flush(ctx);
        } else if self.recover {
            // Re-arm on every arrival: a single armed deadline can be
            // lost to relay churn, stranding the pool forever.
            ctx.set_timer(self.max_wait_us, FLUSH_TIMER);
        } else if !self.timer_armed {
            self.timer_armed = true;
            ctx.set_timer(self.max_wait_us, FLUSH_TIMER);
        }
    }

    fn on_timer(&mut self, ctx: &mut Ctx, token: u64) {
        if let MixKeys::Fleet(f) = &mut self.keys {
            if f.on_timer(ctx, token) {
                return; // key-rotation tick, handled by the keyring
            }
        }
        if token == FLUSH_TIMER {
            self.timer_armed = false;
            // Deadline flush: trade some anonymity for bounded latency.
            self.flush(ctx);
        }
    }
}

#[cfg(test)]
mod tests {
    // MixNode behaviour is exercised end-to-end in `scenario`; the unit
    // tests here cover the pool/flush bookkeeping via a tiny harness.
    use super::*;
    use dcp_core::World;
    use dcp_runtime::{LinkParams, Network, SimTime};
    use dcp_transport::onion::Hop;
    use rand::SeedableRng;

    type Received = std::rc::Rc<std::cell::RefCell<Vec<(u64, Vec<u8>)>>>;

    struct Sink {
        entity: EntityId,
        received: Received,
    }
    impl Node for Sink {
        fn entity(&self) -> EntityId {
            self.entity
        }
        fn on_message(&mut self, ctx: &mut Ctx, _f: NodeId, msg: Message) {
            self.received
                .borrow_mut()
                .push((ctx.now.as_us(), msg.bytes));
        }
    }

    #[test]
    fn batch_is_held_until_threshold() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        let mut world = World::new();
        let org = world.add_org("o");
        let mix_e = world.add_entity("Mix", org, None);
        let sink_e = world.add_entity("Sink", org, None);
        let key = world.new_key(&[mix_e]);
        let kp = hpke::Keypair::generate(&mut rng);

        let received = std::rc::Rc::new(std::cell::RefCell::new(Vec::new()));
        let mut net = Network::new(world, 3);
        net.set_default_link(LinkParams {
            latency_us: 1000,
            jitter_us: 0,
            bytes_per_us: 1000,
        });
        let mix_id = net.add_node(Box::new(MixNode::new(
            mix_e,
            kp.clone(),
            key,
            3,
            1_000_000,
            vec![(7, NodeId(1))],
        )));
        let _sink = net.add_node(Box::new(Sink {
            entity: sink_e,
            received: received.clone(),
        }));

        // Three onions injected at t = 0, 10ms, 20ms.
        let hop = [Hop {
            addr: 7,
            pk: kp.public,
            key_id: key,
        }];
        for i in 0..3u64 {
            let mut srng = rand::rngs::StdRng::seed_from_u64(100 + i);
            // The payload still carries the next-hop address after peeling,
            // so wrap payload for delivery at the *sink*: one mix layer,
            // then DELIVER at sink is encoded as addr 7 in the mix layer.
            let (bytes, label) =
                onion::wrap(&mut srng, &hop, format!("m{i}").as_bytes(), Label::Public).unwrap();
            // Rewrite: single-hop onion delivers locally, but the mix
            // topology forwards to addr 7 — re-wrap with an explicit
            // forward layer instead.
            let _ = (bytes, label);
            let mut plain = 7u16.to_be_bytes().to_vec();
            plain.extend_from_slice(format!("m{i}").as_bytes());
            let sealed = hpke::seal(&mut srng, &kp.public, b"dcp-onion", b"", &plain).unwrap();
            net.post_at(
                mix_id,
                Message::new(sealed, Label::Public.sealed(key)),
                SimTime(i * 10_000),
            );
        }
        net.run();
        let got = received.borrow();
        assert_eq!(got.len(), 3);
        // All three delivered at the same flush time (+1 link delay):
        // the first two messages were *held* until the third arrived.
        let flush_time = got[0].0;
        assert!(got.iter().all(|(t, _)| *t == flush_time), "{got:?}");
        assert!(flush_time >= 20_000, "flush waits for the batch");
    }

    #[test]
    fn deadline_flush_bounds_latency() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(2);
        let mut world = World::new();
        let org = world.add_org("o");
        let mix_e = world.add_entity("Mix", org, None);
        let sink_e = world.add_entity("Sink", org, None);
        let key = world.new_key(&[mix_e]);
        let kp = hpke::Keypair::generate(&mut rng);
        let received = std::rc::Rc::new(std::cell::RefCell::new(Vec::new()));
        let mut net = Network::new(world, 3);
        net.set_default_link(LinkParams {
            latency_us: 1000,
            jitter_us: 0,
            bytes_per_us: 1000,
        });
        let mix_id = net.add_node(Box::new(MixNode::new(
            mix_e,
            kp.clone(),
            key,
            64, // threshold never reached
            50_000,
            vec![(7, NodeId(1))],
        )));
        let _sink = net.add_node(Box::new(Sink {
            entity: sink_e,
            received: received.clone(),
        }));
        let mut srng = rand::rngs::StdRng::seed_from_u64(9);
        let mut plain = 7u16.to_be_bytes().to_vec();
        plain.extend_from_slice(b"lonely");
        let sealed = hpke::seal(&mut srng, &kp.public, b"dcp-onion", b"", &plain).unwrap();
        net.post_at(
            mix_id,
            Message::new(sealed, Label::Public.sealed(key)),
            SimTime(0),
        );
        net.run();
        let got = received.borrow();
        assert_eq!(got.len(), 1, "deadline flush released the message");
        assert!(got[0].0 >= 50_000, "held until the deadline");
    }
}
