//! Compile-fail harness for the knowledge-cap witness.
//!
//! `trybuild`-style tooling is unavailable offline, so this is the
//! vendored equivalent: two tiny out-of-workspace crates under
//! `tests/compile_fail/` are built with the real toolchain, and the
//! assertions are on the *build outcome* —
//!
//! * `decoupled_control` (a sealed query to a relay) must build, proving
//!   the harness toolchain and path-dependencies work;
//! * `coupled_strawman` (the same wiring, one `Sealed` wrapper removed)
//!   must FAIL with the `Admits` witness's "knowledge-cap violation"
//!   message at the send site.
//!
//! The witness is a post-monomorphization `const` evaluation, so the
//! failure only appears on `cargo build` (codegen), never on
//! `cargo check` — which is exactly what these tests pin down.

use std::path::PathBuf;
use std::process::Command;

/// Repo root, derived from this test's manifest (`crates/dcp`).
fn repo_root() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .canonicalize()
        .expect("repo root resolves")
}

/// Build one of the `tests/compile_fail/` crates offline, reusing a
/// shared target dir so repeated runs pay for the dependency graph once.
fn build(crate_dir: &str) -> std::process::Output {
    let root = repo_root();
    let cargo = std::env::var("CARGO").unwrap_or_else(|_| "cargo".to_string());
    Command::new(cargo)
        .arg("build")
        .arg("--offline")
        .current_dir(root.join("tests/compile_fail").join(crate_dir))
        .env("CARGO_TARGET_DIR", root.join("target/compile_fail"))
        .output()
        .expect("cargo spawns")
}

#[test]
fn decoupled_control_builds() {
    let out = build("decoupled_control");
    assert!(
        out.status.success(),
        "the decoupled control wiring must compile; stderr:\n{}",
        String::from_utf8_lossy(&out.stderr)
    );
}

#[test]
fn coupled_strawman_fails_with_knowledge_cap_violation() {
    let out = build("coupled_strawman");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        !out.status.success(),
        "the coupled strawman must NOT compile — a (▲, ●) message reached a \
         (△, ●) service endpoint without tripping the witness"
    );
    assert!(
        stderr.contains("knowledge-cap violation"),
        "the build must fail *because of the cap witness*, not for some \
         other reason; stderr:\n{stderr}"
    );
}
