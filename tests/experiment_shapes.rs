//! Shape checks for the §4–§5 quantitative claims (fast versions of the
//! bench-harness experiments).

use decoupling::core::degrees::{DegreePoint, DegreeSweep};
use decoupling::core::{analyze, collusion::entity_collusion};
use decoupling::Scenario as _;

#[test]
fn e42_degrees_of_decoupling_curve() {
    let mut sweep = DegreeSweep::default();
    for (config, relays) in [("direct", 0usize), ("vpn", 1), ("mpr-2", 2), ("chain-3", 3)] {
        let chain = decoupling::ChainConfig {
            relays,
            users: 1,
            fetches_each: 2,
            geohint: false,
            seed: 401,
        };
        let r = decoupling::Mpr::run(&chain, 401);
        let verdict = analyze(&r.world);
        let coll = entity_collusion(&r.world, r.users[0], relays.max(1) + 1);
        sweep.push(DegreePoint {
            config: config.to_string(),
            parties: relays,
            decoupled: verdict.decoupled,
            min_collusion: coll.min_coalition_size,
            latency_us: r.mean_fetch_us,
            bytes_factor: r.bytes_factor,
            throughput_rps: if r.mean_fetch_us > 0.0 {
                1_000_000.0 / r.mean_fetch_us
            } else {
                0.0
            },
        });
    }
    // The paper's §4.2 claims, checked mechanically: privacy up, latency
    // up, diminishing returns.
    sweep.check_shape().expect("curve shape matches §4.2");
    // Crossover: decoupling starts at exactly 2 parties.
    assert!(!sweep.points[0].decoupled && !sweep.points[1].decoupled);
    assert!(sweep.points[2].decoupled && sweep.points[3].decoupled);
}

#[test]
fn e43_traffic_analysis_tradeoff() {
    // Batching degrades the attacker (averaged over seeds) and costs
    // latency — the anonymity-trilemma shape.
    let mean = |batch: usize| {
        let runs = 4;
        let mut acc = 0.0;
        let mut lat = 0.0;
        for s in 0..runs {
            let config = decoupling::MixnetConfig {
                senders: 8,
                mixes: 2,
                batch_size: batch,
                window_us: 300_000,
                shuffle: true,
                chaff_per_sender: 0,
                mix_max_wait_us: None,
                seed: 500 + s,
            };
            let r = decoupling::Mixnet::run(&config, 500 + s);
            acc += r.attack.accuracy;
            lat += r.mean_latency_us;
        }
        (acc / runs as f64, lat / runs as f64)
    };
    let (acc1, lat1) = mean(1);
    let (acc8, lat8) = mean(8);
    assert!(
        acc1 > acc8 + 0.15,
        "batching must hurt the attacker: {acc1} vs {acc8}"
    );
    assert!(lat8 > lat1, "and cost latency: {lat8} vs {lat1}");
}

#[test]
fn e51_striping_fraction_falls_with_resolver_count() {
    let frac = |r: usize| {
        let rep = decoupling::DirectDns::run(&decoupling::DirectDnsConfig::new(3, 30, r), 501);
        let max_view = *rep.resolver_views.iter().max().unwrap() as f64;
        max_view / rep.distinct_names as f64
    };
    let f1 = frac(1);
    let f4 = frac(4);
    let f8 = frac(8);
    assert!((f1 - 1.0).abs() < 1e-9, "one resolver sees everything");
    assert!(
        f4 < 1.0 && f8 < f4,
        "more resolvers, smaller views: {f4} vs {f8}"
    );
}

#[test]
fn shaping_overhead_is_the_cost_of_uniformity() {
    use decoupling::transport::shaping;
    // Constant-size cells hide message sizes at a quantifiable byte cost.
    let small = shaping::overhead_factor(40, 512);
    let full = shaping::overhead_factor(508, 512);
    assert!(small > 10.0 && full < 1.1);
    // And cells really are indistinguishable by size.
    let a = shaping::cells_for(b"tiny", 512).unwrap();
    let b = shaping::cells_for(&[9u8; 400], 512).unwrap();
    assert_eq!(a[0].len(), b[0].len());
}
