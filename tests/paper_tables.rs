//! The headline reproduction: every §3 decoupling table in the paper,
//! derived from a real protocol run on the simulator, must equal the
//! table printed in the paper.

use decoupling::core::analyze;
use decoupling::Scenario as _;

#[test]
fn t311_blind_signature_cash() {
    let report = decoupling::Blindcash::run(&decoupling::BlindcashConfig::new(1, 1, 512), 101);
    let derived = report.table(0);
    let paper = decoupling::blindcash::scenario::ScenarioReport::paper_table();
    assert_eq!(
        derived,
        paper,
        "{}",
        derived.diff(&paper).unwrap_or_default()
    );
    assert!(analyze(&report.world).decoupled);
}

#[test]
fn t312_mixnet() {
    let config = decoupling::MixnetConfig {
        senders: 6,
        mixes: 2,
        batch_size: 3,
        window_us: 100_000,
        shuffle: true,
        chaff_per_sender: 0,
        mix_max_wait_us: None,
        seed: 102,
    };
    let report = decoupling::Mixnet::run(&config, 102);
    let derived = report.table(0);
    let paper = decoupling::mixnet::scenario::MixnetReport::paper_table_two_mixes();
    assert_eq!(
        derived,
        paper,
        "{}",
        derived.diff(&paper).unwrap_or_default()
    );
    assert!(analyze(&report.world).decoupled);
    assert_eq!(report.delivered, 6, "all messages actually arrived");
}

#[test]
fn t321_privacy_pass() {
    let report = decoupling::Privacypass::run(&decoupling::PrivacypassConfig::new(1, 2), 103);
    let derived = report.table(0);
    let paper = decoupling::privacypass::scenario::ScenarioReport::paper_table();
    assert_eq!(
        derived,
        paper,
        "{}",
        derived.diff(&paper).unwrap_or_default()
    );
    assert!(analyze(&report.world).decoupled);
    assert_eq!(report.redeemed, 2);
}

#[test]
fn t322_oblivious_dns() {
    let report = decoupling::Odoh::run(&decoupling::OdohConfig::new(1, 3), 104);
    let derived = report.table(0);
    let paper = decoupling::odns::scenario::ScenarioReport::paper_table();
    assert_eq!(
        derived,
        paper,
        "{}",
        derived.diff(&paper).unwrap_or_default()
    );
    assert!(analyze(&report.world).decoupled);
    assert_eq!(report.answered, 3);
}

#[test]
fn t323_pgpp() {
    let config = decoupling::PgppConfig {
        mode: decoupling::pgpp::Mode::Pgpp,
        users: 4,
        cells: 2,
        epochs: 2,
        moves_per_epoch: 2,
        seed: 105,
    };
    let report = decoupling::Pgpp::run(&config, 105);
    let derived = report.table(0);
    let paper = decoupling::pgpp::scenario::PgppReport::paper_table();
    assert_eq!(
        derived,
        paper,
        "{}",
        derived.diff(&paper).unwrap_or_default()
    );
    assert!(analyze(&report.world).decoupled);
}

#[test]
fn t324_multi_party_relay() {
    let config = decoupling::ChainConfig {
        relays: 2,
        users: 1,
        fetches_each: 1,
        geohint: false,
        seed: 106,
    };
    let report = decoupling::Mpr::run(&config, 106);
    let derived = report.table(0);
    let paper = decoupling::mpr::ScenarioReport::paper_table();
    assert_eq!(
        derived,
        paper,
        "{}",
        derived.diff(&paper).unwrap_or_default()
    );
    assert!(analyze(&report.world).decoupled);
}

#[test]
fn t325_private_aggregate_statistics() {
    let config = decoupling::PpmConfig {
        clients: 5,
        bits: 8,
        malicious: 0,
        seed: 107,
    };
    let report = decoupling::Ppm::run(&config, 107);
    let derived = report.table(0);
    let paper = decoupling::ppm::scenario::PpmReport::paper_table();
    assert_eq!(
        derived,
        paper,
        "{}",
        derived.diff(&paper).unwrap_or_default()
    );
    assert!(analyze(&report.world).decoupled);
    assert_eq!(report.aggregate, Some(report.expected_sum));
}

#[test]
fn t33_vpn_cautionary_tale() {
    let report = decoupling::Vpn::run(&decoupling::VpnConfig::new(1, 1), 108);
    let derived = report.table(0);
    let paper = decoupling::vpn::VpnReport::paper_table();
    assert_eq!(
        derived,
        paper,
        "{}",
        derived.diff(&paper).unwrap_or_default()
    );
    // And the point of §3.3: this one is NOT decoupled.
    let verdict = analyze(&report.world);
    assert!(!verdict.decoupled);
    assert_eq!(verdict.offenders(), vec!["VPN Server"]);
}

#[test]
fn t33_ech_partial_protection() {
    let with = decoupling::Ech::run(&decoupling::EchConfig { ech: true }, 109);
    let without = decoupling::Ech::run(&decoupling::EchConfig { ech: false }, 109);
    // ECH removes the network observer's coupling but not the server's.
    let obs = |r: &decoupling::vpn::EchReport| {
        r.world
            .tuple(r.world.entity_by_name("Network Observer").id, r.user)
            .is_coupled()
    };
    let srv = |r: &decoupling::vpn::EchReport| {
        r.world
            .tuple(r.world.entity_by_name("TLS Server").id, r.user)
            .is_coupled()
    };
    assert!(obs(&without) && !obs(&with));
    assert!(srv(&without) && srv(&with));
}
