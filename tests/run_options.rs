//! The [`RunOptions`] builder matrix, end to end: every combination of
//! observe × faults × recovery, with the promise that a *disabled* layer
//! is perfectly inert — no `Recovery*` observations, no metrics, no
//! fault log, and outcomes identical to the plain [`RunOptions::new`]
//! run.

use decoupling::faults::dst::KnowledgeFingerprint;
use decoupling::{
    DirectDns, DirectDnsConfig, FaultConfig, MetricsReport, Odoh, OdohConfig, Privacypass,
    RecoverConfig, RunOptions, Scenario, ScenarioReport as _, Vpn,
};

/// All eight builder combinations for one fault schedule.
fn matrix(faults: &FaultConfig) -> Vec<(&'static str, RunOptions)> {
    let recovered = |o: RunOptions| o.with_recovery(&RecoverConfig::standard());
    vec![
        ("new", RunOptions::new()),
        ("observed", RunOptions::observed()),
        ("with_faults", RunOptions::with_faults(faults)),
        (
            "observed_with_faults",
            RunOptions::observed_with_faults(faults),
        ),
        ("new+recovery", recovered(RunOptions::new())),
        ("observed+recovery", recovered(RunOptions::observed())),
        ("recovered", RunOptions::recovered(faults)),
        (
            "observed_with_faults+recovery",
            recovered(RunOptions::observed_with_faults(faults)),
        ),
    ]
}

/// Run `S` through the whole matrix and check the inertness contract of
/// every disabled layer.
fn assert_matrix<S: Scenario>(cfg: &S::Config, seed: u64) {
    let plain = S::run_with(cfg, seed, &RunOptions::new());
    let baseline = KnowledgeFingerprint::of(plain.world());

    for (label, opts) in matrix(&FaultConfig::moderate()) {
        let report = S::run_with(cfg, seed, &opts);

        // Observability off → the metrics layer never existed.
        if !opts.observe {
            assert_eq!(
                *report.metrics(),
                MetricsReport::disabled(),
                "{}/{label}: unobserved run produced metrics",
                S::NAME
            );
        } else {
            assert!(report.metrics().enabled, "{}/{label}", S::NAME);
            assert_eq!(report.metrics().scenario, S::NAME, "{label}");
            assert_eq!(report.metrics().seed, seed, "{label}");
        }

        // Faults off → nothing was injected.
        if !opts.faults.enabled {
            assert!(
                report.fault_log().is_empty(),
                "{}/{label}: calm run injected faults",
                S::NAME
            );
        }

        // Recovery off → no ARQ, so no Recovery* observations can exist.
        if !opts.recover.enabled && opts.observe {
            let m = report.metrics();
            assert_eq!(
                (
                    m.recovery_retries,
                    m.recovery_failovers,
                    m.recovery_quarantines,
                    m.recovery_give_ups,
                ),
                (0, 0, 0, 0),
                "{}/{label}: recovery events without a recovery layer",
                S::NAME
            );
        }

        // Fault-free runs — whatever the observe/recovery settings — must
        // finish the same workload with the same knowledge ledger as the
        // plain run: both layers are outcome-invariant.
        if !opts.faults.enabled {
            assert_eq!(
                report.completed_units(),
                plain.completed_units(),
                "{}/{label}: observe/recovery changed liveness",
                S::NAME
            );
            assert_eq!(
                KnowledgeFingerprint::of(report.world()),
                baseline,
                "{}/{label}: observe/recovery changed someone's knowledge",
                S::NAME
            );
        }

        // The full stack: recovery finishes the workload despite whatever
        // the fault layer injected, ledger still at baseline.
        if opts.faults.enabled && opts.recover.enabled {
            if let Some(expected) = report.expected_units() {
                assert_eq!(report.completed_units(), expected, "{}/{label}", S::NAME);
            }
            assert_eq!(
                KnowledgeFingerprint::of(report.world()),
                baseline,
                "{label}"
            );
        }
    }
}

#[test]
fn odoh_runoptions_matrix() {
    assert_matrix::<Odoh>(&OdohConfig::default(), 1101);
}

#[test]
fn direct_dns_runoptions_matrix() {
    assert_matrix::<DirectDns>(&DirectDnsConfig::new(2, 4, 2), 1102);
}

#[test]
fn privacypass_runoptions_matrix() {
    assert_matrix::<Privacypass>(&Default::default(), 1103);
}

#[test]
fn vpn_runoptions_matrix() {
    assert_matrix::<Vpn>(&Default::default(), 1104);
}

/// Observation must be invisible at the wire level too, not just in the
/// knowledge ledger: same trace length, same latency, same answer count
/// for every (faults, recovery) setting.
#[test]
fn observation_never_perturbs_the_wire() {
    let cfg = OdohConfig::new(2, 3).backup_proxies(1);
    let faults = FaultConfig::moderate();
    let pairs = [
        (RunOptions::new(), RunOptions::observed()),
        (
            RunOptions::with_faults(&faults),
            RunOptions::observed_with_faults(&faults),
        ),
        (
            RunOptions::recovered(&faults),
            RunOptions::observed_with_faults(&faults).with_recovery(&RecoverConfig::standard()),
        ),
    ];
    for (quiet, observed) in pairs {
        let a = Odoh::run_with(&cfg, 1105, &quiet);
        let b = Odoh::run_with(&cfg, 1105, &observed);
        assert_eq!(a.answered, b.answered);
        assert_eq!(a.mean_query_us, b.mean_query_us);
        assert_eq!(a.trace.len(), b.trace.len());
        assert_eq!(a.fault_log.len(), b.fault_log.len());
    }
}

/// The chainable builder spells the same options as the shorthand
/// constructors, and identical options mean identical runs.
#[test]
fn builder_and_shorthand_agree() {
    let faults = FaultConfig::moderate();
    let built = RunOptions::with_faults(&faults).with_recovery(&RecoverConfig::standard());
    let shorthand = RunOptions::recovered(&faults);
    let a = Odoh::run_with(&OdohConfig::default(), 1106, &built);
    let b = Odoh::run_with(&OdohConfig::default(), 1106, &shorthand);
    assert_eq!(a.answered, b.answered);
    assert_eq!(a.trace.len(), b.trace.len());
    assert_eq!(
        KnowledgeFingerprint::of(&a.world),
        KnowledgeFingerprint::of(&b.world)
    );
}
