//! The coupling the decoupling principle forbids, as a build: a client
//! routes its readable query — with its address on the envelope, a
//! `(▲, ●)` message — straight to an origin wired as a default `(△, ●)`
//! service. The typed send path forces the [`Admits`] witness for
//! `(CoupledQuery, AuthOrigin)`, so this crate must FAIL to compile
//! with a "knowledge-cap violation" error. The `compile_fail` runner
//! test asserts exactly that; the sibling `decoupled_control` crate is
//! the same wiring with the query sealed, and must build.

use dcp_core::{EntityId, Label, RunOptions};
use dcp_odns::types::{AuthOrigin, CoupledQuery, StubClient};
use dcp_runtime::{Control, Ctx, Endpoint, Harness, LinkParams, Message, Node, NodeId, TypedSend};

struct Origin {
    entity: EntityId,
}

impl Node for Origin {
    fn entity(&self) -> EntityId {
        self.entity
    }
    fn on_message(&mut self, _ctx: &mut Ctx, _from: NodeId, _msg: Message) {}
}

struct Client {
    entity: EntityId,
    origin: Endpoint<CoupledQuery, Control, AuthOrigin>,
}

impl Node for Client {
    fn entity(&self) -> EntityId {
        self.entity
    }
    fn on_start(&mut self, ctx: &mut Ctx) {
        // (▲, ●) to a (△, ●) service: the witness below this call rejects
        // the pair at compile time.
        ctx.send_to(self.origin, Message::new(b"who+what".to_vec(), Label::Public));
    }
    fn on_message(&mut self, _ctx: &mut Ctx, _from: NodeId, _msg: Message) {}
}

fn main() {
    let opts = RunOptions::default();
    let (mut world, harness) = Harness::begin("coupled-strawman", 7, &opts);
    let org = world.add_org("strawman");
    let origin_e = world.add_entity("Origin", org, None);
    let client_e = world.add_entity("Client", org, None);
    let mut net = harness.network(world, LinkParams::wan_ms(8));
    Harness::add_role::<AuthOrigin>(&mut net, Box::new(Origin { entity: origin_e }));
    Harness::add_role::<StubClient>(
        &mut net,
        Box::new(Client {
            entity: client_e,
            origin: Endpoint::new(0),
        }),
    );
    harness.finish(net);
}
