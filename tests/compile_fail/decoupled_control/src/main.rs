//! The positive control for `coupled_strawman`: the identical wiring
//! with the query sealed past the first hop — `(▲, ⊙)` to a relay whose
//! cap admits it — which must BUILD. Together the pair pins the
//! witness: same send path, same roles crate, one wrapper apart.

use dcp_core::{EntityId, Label, RunOptions};
use dcp_odns::types::{ObliviousProxy, SealedQuery, StubClient};
use dcp_runtime::{Control, Ctx, Endpoint, Harness, LinkParams, Message, Node, NodeId, TypedSend};

struct Proxy {
    entity: EntityId,
}

impl Node for Proxy {
    fn entity(&self) -> EntityId {
        self.entity
    }
    fn on_message(&mut self, _ctx: &mut Ctx, _from: NodeId, _msg: Message) {}
}

struct Client {
    entity: EntityId,
    proxy: Endpoint<SealedQuery, Control, ObliviousProxy>,
}

impl Node for Client {
    fn entity(&self) -> EntityId {
        self.entity
    }
    fn on_start(&mut self, ctx: &mut Ctx) {
        // (▲, ⊙) to a (▲, ⊙) relay: admitted, so this crate compiles.
        ctx.send_to(self.proxy, Message::new(b"who+sealed".to_vec(), Label::Public));
    }
    fn on_message(&mut self, _ctx: &mut Ctx, _from: NodeId, _msg: Message) {}
}

fn main() {
    let opts = RunOptions::default();
    let (mut world, harness) = Harness::begin("decoupled-control", 7, &opts);
    let org = world.add_org("control");
    let proxy_e = world.add_entity("Proxy", org, None);
    let client_e = world.add_entity("Client", org, None);
    let mut net = harness.network(world, LinkParams::wan_ms(8));
    Harness::add_role::<ObliviousProxy>(&mut net, Box::new(Proxy { entity: proxy_e }));
    Harness::add_role::<StubClient>(
        &mut net,
        Box::new(Client {
            entity: client_e,
            proxy: Endpoint::new(0),
        }),
    );
    harness.finish(net);
}
