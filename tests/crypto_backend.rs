//! Backend-equivalence battery for the pluggable bignum backends.
//!
//! The fast Montgomery backend is only admissible because it is
//! *value-identical* to the reference backend on every operation the
//! protocols use — the DST probes enforce that end to end (byte-identical
//! sweep artifacts across `--backend`), and this battery enforces it at
//! the operation level:
//!
//! * reference/fast agreement on the `modpow`/`mulmod`/`reduce`/`modinv`
//!   byte surfaces over random odd moduli, including the edge exponents
//!   the windowed ladder special-cases (0, 1, m−1, full-width);
//! * blind-RSA signatures byte-identical under either process-global
//!   backend selection;
//! * batch verification pinpoints exactly the signatures individual
//!   verification rejects, for arbitrary corruption patterns;
//! * HPKE session reuse never reuses a nonce and fails closed on
//!   replayed or reordered ciphertexts (the property that makes reuse
//!   safe where the scenarios enable it).

use std::sync::OnceLock;

use decoupling::crypto::backend::{self, BackendKind};
use decoupling::crypto::{hpke, rsa};
use proptest::prelude::*;
use rand::SeedableRng;

/// A shared 512-bit key: RSA keygen is too slow to run per proptest case.
fn test_key() -> &'static rsa::RsaPrivateKey {
    static KEY: OnceLock<rsa::RsaPrivateKey> = OnceLock::new();
    KEY.get_or_init(|| {
        let mut rng = rand::rngs::StdRng::seed_from_u64(0xdecaf);
        rsa::RsaPrivateKey::generate(&mut rng, 512).expect("keygen")
    })
}

/// Random modulus bytes, forced odd and > 1 so both backends take their
/// real paths (the fast backend falls back to reference on even moduli —
/// covered separately below).
fn odd_modulus() -> impl Strategy<Value = Vec<u8>> {
    proptest::collection::vec(any::<u8>(), 1..48).prop_map(|mut m| {
        *m.last_mut().unwrap() |= 1;
        if m.iter().all(|&b| b == 0) || (m.len() == 1 && m[0] == 1) {
            m[0] = 3;
        }
        m
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn byte_surfaces_agree_across_backends(
        modulus in odd_modulus(),
        base in proptest::collection::vec(any::<u8>(), 0..48),
        exp in proptest::collection::vec(any::<u8>(), 0..48),
    ) {
        let r = backend::reference();
        let f = backend::fast();
        prop_assert_eq!(
            r.modpow_bytes(&base, &exp, &modulus).unwrap(),
            f.modpow_bytes(&base, &exp, &modulus).unwrap()
        );
        prop_assert_eq!(
            r.mulmod_bytes(&base, &exp, &modulus).unwrap(),
            f.mulmod_bytes(&base, &exp, &modulus).unwrap()
        );
        prop_assert_eq!(
            r.reduce_bytes(&base, &modulus).unwrap(),
            f.reduce_bytes(&base, &modulus).unwrap()
        );
        // modinv either succeeds identically or fails identically.
        match (r.modinv_bytes(&base, &modulus), f.modinv_bytes(&base, &modulus)) {
            (Ok(a), Ok(b)) => prop_assert_eq!(a, b),
            (Err(_), Err(_)) => {}
            (a, b) => prop_assert!(false, "modinv diverged: ref={a:?} fast={b:?}"),
        }
    }

    #[test]
    fn edge_exponents_agree_across_backends(modulus in odd_modulus()) {
        let r = backend::reference();
        let f = backend::fast();
        let minus_one = {
            // m − 1 as bytes, via reduce of (m ‖ 0) − … simpler: decrement.
            let mut m = modulus.clone();
            let last = m.last_mut().unwrap();
            *last -= 1; // modulus is odd, so last byte ≥ 1
            m
        };
        let full_width = vec![0xffu8; modulus.len()];
        for exp in [&[][..], &[0], &[1], &minus_one, &full_width] {
            prop_assert_eq!(
                r.modpow_bytes(&[2], exp, &modulus).unwrap(),
                f.modpow_bytes(&[2], exp, &modulus).unwrap(),
                "exp={exp:02x?}"
            );
        }
    }

    #[test]
    fn even_moduli_agree_via_fallback(
        mut modulus in proptest::collection::vec(any::<u8>(), 1..16),
        base in proptest::collection::vec(any::<u8>(), 0..16),
        exp in proptest::collection::vec(any::<u8>(), 0..8),
    ) {
        *modulus.last_mut().unwrap() &= !1;
        if modulus.iter().all(|&b| b == 0) {
            modulus[0] = 2;
        }
        prop_assert_eq!(
            backend::reference().modpow_bytes(&base, &exp, &modulus).unwrap(),
            backend::fast().modpow_bytes(&base, &exp, &modulus).unwrap()
        );
    }

    #[test]
    fn batch_verify_pinpoints_exactly_the_bad_signatures(
        corrupt in proptest::collection::vec(any::<bool>(), 1..10),
        flip_byte in any::<u8>(),
    ) {
        let sk = test_key();
        let pk = sk.public_key().clone();
        let msgs: Vec<Vec<u8>> = (0..corrupt.len())
            .map(|i| format!("msg-{i}").into_bytes())
            .collect();
        let mut sigs: Vec<Vec<u8>> = msgs.iter().map(|m| sk.sign(m).unwrap()).collect();
        for (i, &bad) in corrupt.iter().enumerate() {
            if bad {
                let pos = i % sigs[i].len();
                sigs[i][pos] ^= flip_byte | 1; // guaranteed nonzero flip
            }
        }
        let items: Vec<(&[u8], &[u8])> = msgs
            .iter()
            .zip(&sigs)
            .map(|(m, s)| (m.as_slice(), s.as_slice()))
            .collect();
        let batch = pk.verify_batch(&items);
        prop_assert_eq!(batch.len(), items.len());
        for (i, (m, s)) in items.iter().enumerate() {
            prop_assert_eq!(
                batch[i].is_ok(),
                pk.verify(m, s).is_ok(),
                "batch verdict diverged from individual at index {i}"
            );
        }
    }
}

/// Zero moduli fail closed on both backends — never panic, never Ok.
#[test]
fn zero_modulus_fails_closed_on_both_backends() {
    for b in [backend::reference(), backend::fast()] {
        assert!(b.modpow_bytes(&[2], &[3], &[0, 0]).is_err(), "{}", b.name());
        assert!(b.mulmod_bytes(&[2], &[3], &[]).is_err(), "{}", b.name());
        assert!(b.modinv_bytes(&[2], &[0]).is_err(), "{}", b.name());
        assert!(b.reduce_bytes(&[2], &[0]).is_err(), "{}", b.name());
    }
}

/// The whole blind-signature flow — blind, sign, finalize, verify, plus
/// the `Unblinder` byte round-trip — yields byte-identical artifacts
/// under either process-global backend. This is the only test in the
/// binary that touches the global selection, so it cannot race another.
#[test]
fn blind_rsa_flow_is_byte_identical_across_global_backends() {
    let sk = test_key();
    let pk = sk.public_key().clone();
    let run = |kind: BackendKind| {
        backend::set_backend(kind);
        let mut rng = rand::rngs::StdRng::seed_from_u64(7);
        let blinding = pk.blind(&mut rng, b"serial").unwrap();
        let unblinder = rsa::Unblinder::from_bytes(&blinding.unblinder.to_bytes()).unwrap();
        let blind_sig = sk.blind_sign(&blinding.blinded_msg).unwrap();
        let sig = pk.finalize(b"serial", &blind_sig, &unblinder).unwrap();
        pk.verify(b"serial", &sig).unwrap();
        (blinding.blinded_msg.clone(), sig)
    };
    let fast = run(BackendKind::Fast);
    let reference = run(BackendKind::Reference);
    backend::set_backend(BackendKind::Fast);
    assert_eq!(fast, reference, "backend selection leaked into values");
}

/// Session reuse safety: successive seals in one HPKE context never
/// repeat a ciphertext for equal plaintexts (nonce advances), decrypt
/// in order, and a replayed or reordered ciphertext fails closed rather
/// than silently decrypting under the wrong nonce.
#[test]
fn hpke_session_reuse_advances_nonces_and_rejects_replay() {
    let mut rng = rand::rngs::StdRng::seed_from_u64(11);
    let kp = hpke::Keypair::generate(&mut rng);
    let (enc, mut tx) = hpke::setup_base_s(&mut rng, &kp.public, b"session").unwrap();
    let ct1 = tx.seal(b"", b"same plaintext");
    let ct2 = tx.seal(b"", b"same plaintext");
    assert_ne!(ct1, ct2, "nonce must advance between seals");

    let mut rx = hpke::setup_base_r(&enc, &kp, b"session").unwrap();
    assert_eq!(rx.open(b"", &ct1).unwrap(), b"same plaintext");
    // Replay of ct1: the receiver nonce has advanced, so this must fail.
    assert!(rx.open(b"", &ct1).is_err(), "replay must not decrypt");
    // After a failed open the sequence is poisoned for ct1, but ct2 at
    // the *current* position still authenticates iff open does not
    // advance on failure.
    let in_order = rx.open(b"", &ct2);
    let mut rx2 = hpke::setup_base_r(&enc, &kp, b"session").unwrap();
    let skipped = rx2.open(b"", &ct2);
    assert!(
        in_order.is_ok() || skipped.is_err(),
        "out-of-order ciphertexts must not silently decrypt"
    );
}
