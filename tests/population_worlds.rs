//! Population-scale properties, end to end:
//!
//! * **generator edges** (proptest) — Zipf at `s = 0` and extreme `s`,
//!   Poisson at rate 0/negative/non-finite, empty populations, and
//!   bit-for-bit sampling determinism;
//! * **thread invariance** — population engine reports are byte-identical
//!   whether worlds run sequentially or on a parallel executor at any
//!   thread count (the `RAYON_NUM_THREADS` axis of the sweep engine);
//! * **trace opt-out** (`RunOptions::without_trace`) — dropping the
//!   per-packet trace changes *nothing* except the trace itself;
//! * **streaming metrics** (`RunOptions::population`) — folded
//!   aggregates equal the itemised ones, with the unbounded vectors
//!   empty.

use decoupling::worlds::{Engine, SplitMix64, Topology, WorkloadBuilder, WorldSpec, Zipf};
use decoupling::{
    Odoh, OdohConfig, ParallelExecutor, RunOptions, Scenario, ScenarioReport as _,
    SequentialExecutor, SweepBuilder,
};
use proptest::prelude::*;

// ------------------------------------------------------ generators ----

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn zipf_samples_stay_in_range_and_are_deterministic(
        n in 1usize..2_000,
        s in (0u32..600).prop_map(|s| f64::from(s) / 10.0),
        seed in any::<u64>(),
    ) {
        let z = Zipf::new(n, s).expect("valid population");
        let mut a = SplitMix64::new(seed);
        let mut b = SplitMix64::new(seed);
        for _ in 0..64 {
            let x = z.sample(&mut a);
            prop_assert!(x < n, "rank {x} out of population {n}");
            prop_assert_eq!(x, z.sample(&mut b), "sampling must be deterministic");
        }
    }

    #[test]
    fn zipf_zero_exponent_is_uniform_and_large_exponent_is_head_heavy(
        n in 2usize..500,
        seed in any::<u64>(),
    ) {
        let uniform = Zipf::new(n, 0.0).unwrap();
        let peaked = Zipf::new(n, 50.0).unwrap();
        let mut rng = SplitMix64::new(seed);
        let mut head_uniform = 0u32;
        let mut head_peaked = 0u32;
        for _ in 0..256 {
            head_uniform += (uniform.sample(&mut rng) == 0) as u32;
            head_peaked += (peaked.sample(&mut rng) == 0) as u32;
        }
        // s=50 concentrates essentially all mass on rank 0; s=0 gives it
        // ~256/n. A generous margin keeps the test seed-stable.
        prop_assert!(head_peaked >= 250, "peaked head hits: {head_peaked}");
        if n >= 16 {
            prop_assert!(head_uniform <= 128, "uniform head hits: {head_uniform}");
        }
    }

    #[test]
    fn workload_arrivals_advance_and_respect_zero_rate(
        users in 1u64..200,
        rate in prop_oneof![Just(0.0), (1u32..500).prop_map(|r| f64::from(r) / 100.0)],
        seed in any::<u64>(),
    ) {
        let spec = WorldSpec::new().users(users).names(16).rate_hz(rate);
        let workload = WorkloadBuilder::new(&spec).build().unwrap();
        let mut rng = SplitMix64::new(seed);
        let next = workload.next_arrival_us(0, 1_000, &mut rng);
        if rate == 0.0 {
            prop_assert!(next.is_none(), "zero rate must produce no arrivals");
        } else {
            prop_assert!(next.unwrap() > 1_000, "arrivals must advance time");
        }
    }
}

#[test]
fn empty_populations_are_rejected_not_degenerate() {
    assert!(Zipf::new(0, 1.0).is_none());
    assert!(Zipf::new(10, f64::NAN).is_none());
    assert!(Zipf::new(10, -1.0).is_none());
    assert!(WorkloadBuilder::new(&WorldSpec::new().users(0))
        .build()
        .is_err());
    assert!(WorkloadBuilder::new(&WorldSpec::new().names(0))
        .build()
        .is_err());
}

// ------------------------------------------- thread-count invariance --

/// One population world per sweep seed; the report must not depend on
/// which executor (or how many threads) ran it.
#[test]
fn population_reports_are_identical_across_thread_counts() {
    fn run_all<X: decoupling::SweepExecutor>(spec: &WorldSpec, exec: &X) -> String {
        let builder = SweepBuilder::new(20221114).worlds(4);
        let run = builder.run_on(exec, |job| {
            let mut e = Engine::new(spec, &Topology::odoh(), job.seed).unwrap();
            e.run_to_end();
            e.report()
        });
        decoupling::obs::to_json(&run.entries.iter().map(|e| &e.result).collect::<Vec<_>>())
    }
    let spec = WorldSpec::smoke()
        .users(60)
        .names(30)
        .duration_us(1_000_000);
    let sequential = run_all(&spec, &SequentialExecutor);
    for threads in [1, 2, 3] {
        let parallel = run_all(&spec, &ParallelExecutor::with_threads(threads));
        assert_eq!(
            sequential, parallel,
            "population sweep diverged at {threads} threads"
        );
    }
}

// ------------------------------------------------- trace opt-out ------

#[test]
fn trace_opt_out_changes_nothing_but_the_trace() {
    let cfg = OdohConfig::new(3, 4);
    let with_trace = Odoh::run_with(&cfg, 7, &RunOptions::observed());
    let without = Odoh::run_with(&cfg, 7, &RunOptions::observed().without_trace());

    assert!(!with_trace.trace.is_empty(), "default records the trace");
    assert!(without.trace.is_empty(), "opt-out drops the trace");
    assert_eq!(with_trace.completed_units(), without.completed_units());
    assert_eq!(
        decoupling::obs::to_json(&with_trace.metrics),
        decoupling::obs::to_json(&without.metrics),
        "metrics must not depend on trace recording"
    );
    assert_eq!(
        decoupling::faults::dst::KnowledgeFingerprint::of(with_trace.world()),
        decoupling::faults::dst::KnowledgeFingerprint::of(without.world()),
        "knowledge must not depend on trace recording"
    );
}

// ---------------------------------------------- streaming metrics -----

#[test]
fn streaming_metrics_match_itemised_aggregates() {
    let cfg = OdohConfig::new(3, 4);
    let itemised = Odoh::run_with(&cfg, 9, &RunOptions::observed());
    let streamed = Odoh::run_with(&cfg, 9, &RunOptions::population());

    // The population profile keeps no unbounded vectors…
    assert!(streamed.metrics.spans.is_empty());
    assert!(streamed.metrics.knowledge.is_empty());
    assert!(streamed.trace.is_empty());
    // …but every folded aggregate matches the itemised run exactly.
    assert_eq!(itemised.metrics.span_stats, streamed.metrics.span_stats);
    assert_eq!(
        itemised.metrics.knowledge_by_entity,
        streamed.metrics.knowledge_by_entity
    );
    assert_eq!(
        itemised.metrics.messages_sent,
        streamed.metrics.messages_sent
    );
    assert_eq!(
        itemised.metrics.messages_delivered,
        streamed.metrics.messages_delivered
    );
    assert_eq!(itemised.completed_units(), streamed.completed_units());
}
