//! DST sweep: every §3 scenario under every fault preset.
//!
//! Each test drives the unified [`decoupling::Scenario`] API through
//! [`decoupling::run_scenario_for`], which builds the full simulation from
//! `(FaultConfig, seed)` and runs it twice per preset, asserting:
//!
//! * **determinism** — identical [`FaultLog`] and knowledge fingerprint
//!   across the two runs;
//! * **safety** — no coupling appears under faults that the calm baseline
//!   does not already have (baseline-relative, so the intentionally
//!   coupled §3.3 VPN still passes);
//! * **liveness degradation** — under `moderate()` the workload still
//!   makes end-to-end progress for these seeds; under `harsh()` (with the
//!   `dcp-recover` layer the harness always enables) the bar rises to
//!   full completion with knowledge tables byte-identical to the calm
//!   baseline; under `chaos()` only safety is promised.

use decoupling::{run_scenario_for, DstReport};

/// Every preset report for one scenario, with the tiered liveness checks.
fn check(reports: &[DstReport]) {
    // Presets come back in calm / moderate / harsh / chaos order.
    assert_eq!(reports.len(), 4);
    for r in reports {
        assert!(
            r.new_couplings.is_empty(),
            "{}/{}: {:?}",
            r.scenario,
            r.preset,
            r.new_couplings
        );
    }
    assert!(
        reports[0].completed,
        "{}: must complete without faults",
        reports[0].scenario
    );
    assert!(
        reports[1].completed,
        "{}: no end-to-end progress under moderate faults",
        reports[1].scenario
    );
    // The harsh completion bar (also asserted inside the harness): the
    // recovery layer finishes the whole workload, and the knowledge
    // tables match the fault-free baseline byte for byte.
    let harsh = &reports[2];
    assert_eq!(harsh.preset, "harsh");
    assert!(
        harsh.completed,
        "{}: harsh must complete with recovery on",
        harsh.scenario
    );
    if let Some(expected) = harsh.expected_units {
        assert_eq!(
            harsh.completed_units, expected,
            "{}: harsh completed {}/{} units",
            harsh.scenario, harsh.completed_units, expected
        );
    }
    assert!(
        harsh.tables_match_baseline,
        "{}: harsh knowledge tables drifted from the calm baseline",
        harsh.scenario
    );
    // Fault schedules must actually fire. (Chaos can inject *fewer* events
    // than moderate — early crashes and drops leave less traffic to fault —
    // so only "nonzero" is asserted, not monotonicity.)
    assert_eq!(reports[0].faults_injected, 0);
    assert!(reports[1].faults_injected > 0, "moderate injected nothing");
    assert!(reports[2].faults_injected > 0, "harsh injected nothing");
    assert!(reports[3].faults_injected > 0, "chaos injected nothing");
}

#[test]
fn dst_blindcash() {
    let cfg = decoupling::BlindcashConfig::new(2, 2, 512);
    check(&run_scenario_for::<decoupling::Blindcash>(1001, &cfg));
}

#[test]
fn dst_mixnet() {
    let cfg = decoupling::MixnetConfig {
        senders: 6,
        mixes: 2,
        batch_size: 3,
        window_us: 100_000,
        shuffle: true,
        chaff_per_sender: 0,
        mix_max_wait_us: None,
        seed: 0, // overridden by the harness seed
    };
    check(&run_scenario_for::<decoupling::Mixnet>(1002, &cfg));
}

#[test]
fn dst_privacypass() {
    let cfg = decoupling::PrivacypassConfig::new(3, 2);
    check(&run_scenario_for::<decoupling::Privacypass>(1003, &cfg));
}

#[test]
fn dst_odns() {
    let cfg = decoupling::OdohConfig::new(3, 4);
    check(&run_scenario_for::<decoupling::Odoh>(1004, &cfg));
}

#[test]
fn dst_pgpp() {
    let cfg = decoupling::PgppConfig {
        mode: decoupling::pgpp::Mode::Pgpp,
        users: 5,
        cells: 2,
        epochs: 2,
        moves_per_epoch: 2,
        seed: 0, // overridden by the harness seed
    };
    check(&run_scenario_for::<decoupling::Pgpp>(1005, &cfg));
}

#[test]
fn dst_mpr() {
    let cfg = decoupling::ChainConfig {
        relays: 2,
        users: 3,
        fetches_each: 2,
        geohint: false,
        seed: 0, // overridden by the harness seed
    };
    check(&run_scenario_for::<decoupling::Mpr>(1006, &cfg));
}

#[test]
fn dst_ppm() {
    // The aggregate only releases if every share survived; any verified
    // submission reaching both aggregators is progress.
    let cfg = decoupling::PpmConfig {
        clients: 5,
        bits: 4,
        malicious: 0,
        seed: 0, // overridden by the harness seed
    };
    check(&run_scenario_for::<decoupling::Ppm>(1007, &cfg));
}

#[test]
fn dst_vpn() {
    // The VPN is the paper's cautionary tale: it is *coupled* in the calm
    // baseline. The harness's baseline-relative invariant is exactly what
    // lets this scenario participate — faults must not couple anyone new
    // (e.g. the network observer), while the VPN server's pre-existing
    // coupling is not charged to the fault injector.
    let cfg = decoupling::VpnConfig::new(3, 2);
    check(&run_scenario_for::<decoupling::Vpn>(1008, &cfg));
}

#[test]
fn dst_ech() {
    // §4.1 ECH hides the SNI from the network observer but the TLS server
    // stays coupled by design — baseline-relative safety is what lets it
    // ride the same battery as the decoupled systems.
    let cfg = decoupling::EchConfig::default().ech(true);
    check(&run_scenario_for::<decoupling::Ech>(1009, &cfg));
}

/// §4.2: key compromise is the one fault the framework *detects* rather
/// than tolerates — granting a relay's keys to the wrong entity must
/// surface as a coupling in the analysis, not pass silently.
#[test]
fn dst_key_compromise_is_detected() {
    use decoupling::core::{DataKind, IdentityKind, InfoItem, Label, World};
    use decoupling::simnet::{Ctx, LinkParams, Message, Network, Node, NodeId};

    struct Fwd {
        entity: decoupling::core::EntityId,
        next: Option<NodeId>,
    }
    impl Node for Fwd {
        fn entity(&self) -> decoupling::core::EntityId {
            self.entity
        }
        fn on_message(&mut self, ctx: &mut Ctx, _from: NodeId, msg: Message) {
            if let Some(next) = self.next {
                // Strip the client-identifying envelope like a real relay:
                // downstream sees only the sealed inner label.
                let inner = match &msg.label {
                    Label::Bundle(parts) if parts.len() == 2 => parts[1].clone(),
                    other => other.clone(),
                };
                ctx.send(next, Message::new(msg.bytes, inner));
            }
        }
    }

    let build = |compromise: bool| {
        let mut world = World::new();
        let uo = world.add_org("users");
        let ro = world.add_org("relay-co");
        let so = world.add_org("server-co");
        let user = world.add_user();
        let client_e = world.add_entity("Client", uo, Some(user));
        let relay_e = world.add_entity("Relay", ro, None);
        let server_e = world.add_entity("Server", so, None);
        let key = world.new_key(&[server_e]);
        world.record(
            client_e,
            InfoItem::sensitive_identity(user, IdentityKind::Any),
        );
        world.record(client_e, InfoItem::sensitive_data(user, DataKind::Payload));

        let mut net = Network::new(world, 77);
        net.set_default_link(LinkParams::wan_ms(5));
        // Zero-probability config: no random faults, but the injector is
        // live so the key compromise below lands in the replay log.
        let mut quiet = decoupling::FaultConfig::calm();
        quiet.enabled = true;
        net.enable_faults(quiet, 77);
        let relay = net.add_node(Box::new(Fwd {
            entity: relay_e,
            next: Some(NodeId(1)),
        }));
        let server = net.add_node(Box::new(Fwd {
            entity: server_e,
            next: None,
        }));
        let _ = server;
        if compromise {
            // The relay obtains the server's decryption key: §4.2
            // collusion modeled as a fault.
            net.inject_key_compromise(server_e, relay_e);
        }
        // Client → relay → server, payload sealed to the server's key. The
        // relay's ledger records the sealed item; only key holders read it.
        let label = Label::items([InfoItem::sensitive_identity(user, IdentityKind::Any)])
            .and(Label::items([InfoItem::sensitive_data(user, DataKind::Payload)]).sealed(key));
        net.post_at(
            relay,
            Message::new(b"secret".to_vec(), label),
            decoupling::simnet::SimTime::ZERO,
        );
        net.run();
        let log = net.fault_log();
        let (world, _) = net.into_parts();
        (world, log)
    };

    let (baseline, base_log) = build(false);
    assert!(base_log.is_empty());
    assert!(decoupling::core::analyze(&baseline).decoupled);

    let (compromised, log) = build(true);
    assert!(!log.is_empty(), "compromise must be logged for replay");
    let fresh = decoupling::faults::dst::new_couplings(&baseline, &compromised);
    assert!(
        fresh.iter().any(|c| c.starts_with("Relay")),
        "key compromise must surface as a Relay coupling, got {fresh:?}"
    );
    // And the World-level assertion trips on the compromised run.
    // `World` holds an `Arc<Mutex<dyn ObsSink>>` observability hook whose
    // trait object is not `RefUnwindSafe`; the closure only reads the
    // knowledge ledger.
    let err = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        compromised.assert_decoupled_except_user()
    }))
    .expect_err("assert_decoupled_except_user must panic");
    let msg = err.downcast_ref::<String>().cloned().unwrap_or_default();
    assert!(msg.contains("decoupling violated"), "{msg}");
}
