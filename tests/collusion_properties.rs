//! Cross-system collusion properties (§4.1): how many parties must pool
//! knowledge to re-couple a user, across every system in the paper.

use decoupling::core::collusion::{entity_collusion, org_collusion};
use decoupling::Scenario as _;

#[test]
fn collusion_bars_ordered_by_architecture() {
    // VPN: 1 (no collusion needed). MPR-2: 2. Deeper chains: >= 2 with
    // more two-party combinations required to include the entry relay.
    let vpn = decoupling::Vpn::run(&decoupling::VpnConfig::new(1, 1), 201);
    let vpn_bar = entity_collusion(&vpn.world, vpn.users[0], 3)
        .min_coalition_size
        .unwrap();

    let config = decoupling::ChainConfig {
        relays: 2,
        users: 1,
        fetches_each: 1,
        geohint: false,
        seed: 202,
    };
    let mpr = decoupling::Mpr::run(&config, 202);
    let mpr_bar = entity_collusion(&mpr.world, mpr.users[0], 4)
        .min_coalition_size
        .unwrap();

    assert_eq!(vpn_bar, 1);
    assert_eq!(mpr_bar, 2);
}

#[test]
fn mixnet_minimal_coalitions_always_include_entry() {
    let config = decoupling::MixnetConfig {
        senders: 4,
        mixes: 3,
        batch_size: 2,
        window_us: 100_000,
        shuffle: true,
        chaff_per_sender: 0,
        mix_max_wait_us: None,
        seed: 203,
    };
    let report = decoupling::Mixnet::run(&config, 203);
    let rep = entity_collusion(&report.world, report.users[0], 4);
    // The only entity holding ▲ is Mix 1 — every coalition needs it.
    for coalition in &rep.minimal_coalitions {
        assert!(
            coalition.iter().any(|n| n == "Mix 1"),
            "coalition without the entry mix: {coalition:?}"
        );
    }
}

#[test]
fn org_granularity_collapses_same_operator_relays() {
    // If one org ran both MPR relays, institutional decoupling is gone
    // even though the architecture is unchanged.
    let config = decoupling::ChainConfig {
        relays: 2,
        users: 1,
        fetches_each: 1,
        geohint: false,
        seed: 204,
    };
    let report = decoupling::Mpr::run(&config, 204);
    // Entity-level: bar of 2. Org-level: also 2 here because each relay
    // has its own org in the scenario.
    let ents = entity_collusion(&report.world, report.users[0], 3);
    let orgs = org_collusion(&report.world, report.users[0], 3);
    assert_eq!(ents.min_coalition_size, Some(2));
    assert_eq!(orgs.min_coalition_size, Some(2));
}

#[test]
fn ppm_is_uncouplable_even_under_full_collusion() {
    // Secret sharing means nobody but the client ever holds the raw value:
    // the ledger union of every party still lacks ● for the subject.
    let config = decoupling::PpmConfig {
        clients: 4,
        bits: 8,
        malicious: 0,
        seed: 205,
    };
    let report = decoupling::Ppm::run(&config, 205);
    let rep = entity_collusion(&report.world, report.users[0], 4);
    assert_eq!(rep.min_coalition_size, None);
    assert_eq!(rep.collusion_resistance(), usize::MAX);
}

#[test]
fn privacy_pass_issuer_origin_pair_is_the_threat() {
    let report = decoupling::Privacypass::run(&decoupling::PrivacypassConfig::new(1, 1), 206);
    let rep = entity_collusion(&report.world, report.users[0], 3);
    assert_eq!(rep.min_coalition_size, Some(2));
    assert!(rep
        .minimal_coalitions
        .contains(&vec!["Issuer".to_string(), "Origin".to_string()]));
}

#[test]
fn pgpp_gateway_and_core_must_both_defect() {
    let config = decoupling::PgppConfig {
        mode: decoupling::pgpp::Mode::Pgpp,
        users: 3,
        cells: 2,
        epochs: 2,
        moves_per_epoch: 1,
        seed: 207,
    };
    let report = decoupling::Pgpp::run(&config, 207);
    let rep = entity_collusion(&report.world, report.users[0], 3);
    assert_eq!(
        rep.min_coalition_size,
        Some(2),
        "{:?}",
        rep.minimal_coalitions
    );
    assert!(rep
        .minimal_coalitions
        .contains(&vec!["PGPP-GW".to_string(), "NGC".to_string()]));
}
