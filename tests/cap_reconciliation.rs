//! Cap-vs-ledger reconciliation: the compile-time knowledge caps and the
//! runtime knowledge ledgers must tell the same story.
//!
//! Each wiring crate publishes a `declared_caps()` table — entity-name
//! prefixes mapped to the [`KnowledgeCap`] of the role that entity plays.
//! Those caps bound what the *type system* lets an endpoint receive; the
//! simulator's [`World`] ledgers record what each entity actually
//! *learned* during a run. This suite closes the loop: for every §3
//! scenario, under the calm and harsh fault presets, across arbitrary
//! seeds, every entity's final knowledge tuple about every user must sit
//! at or below its declared cap.
//!
//! A failure here means one of two bugs, both serious:
//!
//! * a protocol implementation leaked past its role's cap at runtime
//!   (the ledger outran the type), or
//! * a declared cap overstates how little the role learns (the type
//!   promises decoupling the protocol does not deliver).
//!
//! Matching rule: an entity reconciles against the *longest* declared
//! prefix of its name (so numbered instances like "Relay 2" inherit the
//! "Relay" row), every declared row must match at least one entity (a
//! stale table is itself a bug), and entities with no matching row —
//! bystanders like the VPN wiring's "Network Observer" — are skipped:
//! they play no typed role, so no cap speaks for them.

use decoupling::core::{KnowledgeCap, World};
use decoupling::{FaultConfig, Scenario, ScenarioReport as _};
use proptest::prelude::*;

/// Assert every entity's ledger sits at or below its declared cap.
fn reconcile(world: &World, rows: &[(&'static str, KnowledgeCap)], scenario: &str) {
    for (prefix, _) in rows {
        assert!(
            world.entities().iter().any(|e| e.name.starts_with(prefix)),
            "{scenario}: declared-caps row {prefix:?} matches no entity — stale table?"
        );
    }
    for entity in world.entities() {
        let row = rows
            .iter()
            .filter(|(prefix, _)| entity.name.starts_with(prefix))
            .max_by_key(|(prefix, _)| prefix.len());
        let Some((prefix, cap)) = row else {
            continue; // bystander: no typed role, no cap to reconcile
        };
        for &user in world.users() {
            let tuple = world.tuple(entity.id, user);
            assert!(
                cap.admits_tuple(&tuple),
                "{scenario}: entity {:?} (cap row {prefix:?}, cap {}) learned {tuple:?} \
                 about user {user:?} — the ledger outran the declared cap",
                entity.name,
                cap.render(),
            );
        }
    }
}

/// Run every §3 scenario once at `seed` under `faults` and reconcile its
/// final world against the owning crate's declared-caps table.
fn reconcile_all(seed: u64, faults: &FaultConfig, label: &str) {
    // DNS, three wirings: ODoH, legacy ODNS, and the coupled direct
    // baseline (whose resolver/origin are declared coupled_by_design —
    // reconciliation documents the coupling rather than hiding it).
    let odoh = decoupling::Odoh::run_with_faults(&decoupling::OdohConfig::new(2, 3), seed, faults);
    reconcile(
        odoh.world(),
        &decoupling::odns::declared_caps(),
        &format!("odoh/{label}"),
    );

    let legacy = decoupling::odns::OdnsLegacy::run_with_faults(
        &decoupling::odns::OdnsLegacyConfig::new(2, 3),
        seed,
        faults,
    );
    reconcile(
        legacy.world(),
        &decoupling::odns::declared_caps(),
        &format!("odns-legacy/{label}"),
    );

    let direct = decoupling::DirectDns::run_with_faults(
        &decoupling::DirectDnsConfig {
            clients: 2,
            queries_each: 3,
            resolvers: 2,
        },
        seed,
        faults,
    );
    reconcile(
        direct.world(),
        &decoupling::odns::direct_declared_caps(),
        &format!("direct-dns/{label}"),
    );

    // The §3.3 cautionary tales: the VPN server and the no-ECH TLS
    // server are coupled_by_design, so their rows admit everything —
    // the reconciliation's job is that nothing *else* couples.
    let vpn = decoupling::Vpn::run_with_faults(&decoupling::VpnConfig::new(2, 2), seed, faults);
    reconcile(
        vpn.world(),
        &decoupling::vpn::vpn_declared_caps(),
        &format!("vpn/{label}"),
    );

    for ech in [true, false] {
        let report = decoupling::Ech::run_with_faults(&decoupling::EchConfig { ech }, seed, faults);
        reconcile(
            report.world(),
            &decoupling::vpn::ech_declared_caps(),
            &format!("ech={ech}/{label}"),
        );
    }

    let pp = decoupling::Privacypass::run_with_faults(
        &decoupling::PrivacypassConfig::new(2, 2),
        seed,
        faults,
    );
    reconcile(
        pp.world(),
        &decoupling::privacypass::declared_caps(),
        &format!("privacypass/{label}"),
    );

    // PGPP in both modes: the legacy core's row is the coupled one.
    for (mode, rows) in [
        (
            decoupling::pgpp::Mode::Pgpp,
            decoupling::pgpp::pgpp_declared_caps(),
        ),
        (
            decoupling::pgpp::Mode::Legacy,
            decoupling::pgpp::legacy_declared_caps(),
        ),
    ] {
        let cfg = decoupling::PgppConfig {
            mode,
            users: 3,
            cells: 2,
            epochs: 1,
            moves_per_epoch: 2,
            seed,
        };
        let report = decoupling::Pgpp::run_with_faults(&cfg, seed, faults);
        reconcile(
            report.world(),
            &rows,
            &format!("pgpp mode={mode:?}/{label}"),
        );
    }

    // MPR with a real chain (relays ≥ 2): a single-relay chain is the
    // coupled degenerate case the paper warns about, and the "Relay" row
    // declares the decoupled union cap.
    let mpr = decoupling::Mpr::run_with_faults(
        &decoupling::ChainConfig {
            relays: 2,
            users: 2,
            fetches_each: 2,
            geohint: false,
            seed,
        },
        seed,
        faults,
    );
    reconcile(
        mpr.world(),
        &decoupling::mpr::declared_caps(),
        &format!("mpr/{label}"),
    );

    let ppm = decoupling::Ppm::run_with_faults(
        &decoupling::PpmConfig {
            clients: 4,
            bits: 4,
            malicious: 0,
            seed,
        },
        seed,
        faults,
    );
    reconcile(
        ppm.world(),
        &decoupling::ppm::declared_caps(),
        &format!("ppm/{label}"),
    );

    let mixnet = decoupling::Mixnet::run_with_faults(
        &decoupling::MixnetConfig {
            senders: 4,
            mixes: 2,
            batch_size: 2,
            window_us: 100_000,
            shuffle: true,
            chaff_per_sender: 0,
            mix_max_wait_us: Some(50_000),
            seed,
        },
        seed,
        faults,
    );
    reconcile(
        mixnet.world(),
        &decoupling::mixnet::declared_caps(),
        &format!("mixnet/{label}"),
    );

    let cash = decoupling::Blindcash::run_with_faults(
        &decoupling::BlindcashConfig::new(1, 1, 512),
        seed,
        faults,
    );
    reconcile(
        cash.world(),
        &decoupling::blindcash::declared_caps(),
        &format!("blindcash/{label}"),
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    /// Calm runs: the happy path must sit under the declared caps at
    /// any seed.
    #[test]
    fn ledgers_stay_under_declared_caps_calm(seed in 0u64..10_000) {
        reconcile_all(seed, &FaultConfig::calm(), "calm");
    }

    /// Harsh runs: drops, delays, and duplicates must not teach any
    /// entity more than its cap — faults may *lose* knowledge, never
    /// mint it.
    #[test]
    fn ledgers_stay_under_declared_caps_harsh(seed in 0u64..10_000) {
        reconcile_all(seed, &FaultConfig::harsh(), "harsh");
    }
}

/// The fixed seeds the paper-table tests use, reconciled explicitly so a
/// regression names the scenario rather than a proptest shrink.
#[test]
fn paper_seed_runs_reconcile() {
    for seed in [101, 104, 108] {
        reconcile_all(seed, &FaultConfig::calm(), "paper-seed");
    }
}
