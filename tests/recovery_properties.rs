//! Property tests for the `dcp-recover` layer, end to end.
//!
//! Four promises, each checked across arbitrary seeds:
//!
//! * **Knowledge invariance** — a recovered run under harsh faults ends
//!   with the exact knowledge fingerprint of the recovered fault-free
//!   run: retries, failovers, and ack plumbing teach no entity anything.
//! * **Exactly-once under duplication** — with a duplicate-only fault
//!   schedule (every other knob zero), N deliveries of the same message
//!   mutate receiver state exactly once per scenario: the completed-unit
//!   count matches the target, never exceeds it.
//! * **Sweep determinism** — the recovered DST battery aggregates to
//!   byte-identical JSON under the sequential and parallel executors.
//! * **No timer overflow** — pathological backoff configurations
//!   (`u64::MAX` timeouts and jitter) saturate instead of panicking.

use decoupling::faults::dst::{sweep_scenario_for, KnowledgeFingerprint};
use decoupling::recover::{ReliableCall, TimerVerdict};
use decoupling::{
    FaultConfig, ParallelExecutor, RecoverConfig, RunOptions, Scenario, ScenarioReport as _,
    SequentialExecutor, SweepBuilder,
};
use proptest::prelude::*;

/// A schedule that *only* duplicates deliveries — the sharpest probe of
/// receiver-side dedup, since nothing is ever lost or delayed.
fn duplicate_only() -> FaultConfig {
    let mut cfg = FaultConfig::calm();
    cfg.enabled = true;
    cfg.p_duplicate = 0.5;
    cfg.max_faults = 400;
    cfg
}

/// Recovered run under `faults` vs the recovered fault-free baseline:
/// the workload must fully complete and the knowledge tables must match
/// byte for byte.
fn assert_invariant<S: Scenario>(cfg: &S::Config, seed: u64, faults: &FaultConfig) {
    let calm = S::run_with(cfg, seed, &RunOptions::recovered(&FaultConfig::calm()));
    let faulted = S::run_with(cfg, seed, &RunOptions::recovered(faults));
    if let Some(expected) = faulted.expected_units() {
        assert_eq!(
            faulted.completed_units(),
            expected,
            "{}/{seed}: recovery failed to finish the workload",
            S::NAME
        );
        assert_eq!(
            calm.completed_units(),
            expected,
            "{}/{seed}: calm recovered run incomplete",
            S::NAME
        );
    }
    assert!(
        faulted.retry_linkage().is_empty(),
        "{}/{seed}: attempts linkable by ciphertext equality: {:?}",
        S::NAME,
        faulted.retry_linkage()
    );
    assert_eq!(
        KnowledgeFingerprint::of(faulted.world()),
        KnowledgeFingerprint::of(calm.world()),
        "{}/{seed}: faulted knowledge tables drifted from the baseline",
        S::NAME
    );
}

fn mpr_cfg() -> decoupling::ChainConfig {
    decoupling::ChainConfig {
        relays: 2,
        users: 2,
        fetches_each: 2,
        geohint: false,
        seed: 0,
    }
}

fn odoh_cfg() -> decoupling::OdohConfig {
    decoupling::OdohConfig::new(2, 3)
}

fn mixnet_cfg() -> decoupling::MixnetConfig {
    decoupling::MixnetConfig {
        senders: 4,
        mixes: 2,
        batch_size: 2,
        window_us: 100_000,
        shuffle: true,
        chaff_per_sender: 0,
        mix_max_wait_us: Some(50_000),
        seed: 0,
    }
}

fn ppm_cfg() -> decoupling::PpmConfig {
    decoupling::PpmConfig {
        clients: 4,
        bits: 4,
        malicious: 0,
        seed: 0,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Harsh faults + recovery = fault-free knowledge, at any seed.
    #[test]
    fn recovered_harsh_matches_fault_free_knowledge(seed in 0u64..10_000) {
        assert_invariant::<decoupling::Mpr>(&mpr_cfg(), seed, &FaultConfig::harsh());
        assert_invariant::<decoupling::Odoh>(&odoh_cfg(), seed, &FaultConfig::harsh());
    }

    /// Duplicate-only schedules mutate receiver knowledge exactly once
    /// per logical message, in every scenario shape: request/response
    /// (MPR, ODoH), one-way mix custody (mixnet), and one-time
    /// instruments that receivers must dedup (PPM share pairs).
    #[test]
    fn duplicated_deliveries_mutate_knowledge_exactly_once(seed in 0u64..10_000) {
        let dup = duplicate_only();
        assert_invariant::<decoupling::Mpr>(&mpr_cfg(), seed, &dup);
        assert_invariant::<decoupling::Odoh>(&odoh_cfg(), seed, &dup);
        assert_invariant::<decoupling::Mixnet>(&mixnet_cfg(), seed, &dup);
        assert_invariant::<decoupling::Ppm>(&ppm_cfg(), seed, &dup);
    }

    /// Pathological backoff configs saturate rather than panic, and the
    /// armed delay never wraps below the configured floor.
    #[test]
    fn extreme_backoff_never_overflows(
        base in prop_oneof![Just(u64::MAX), Just(u64::MAX / 2), 1u64..1_000_000],
        jitter in prop_oneof![Just(u64::MAX), 0u64..1_000_000],
        factor in 1u64..=16,
        seed in any::<u64>(),
    ) {
        let cfg = RecoverConfig::standard()
            .max_attempts(4)
            .base_timeout_us(base)
            .backoff_factor(factor)
            .max_backoff_us(u64::MAX)
            .jitter_us(jitter);
        let mut arq = ReliableCall::new(&cfg, seed);
        let mut att = arq.begin().expect("enabled ARQ begins");
        // Jitter is additive and the add saturates, so the armed delay can
        // never fall below the configured base.
        prop_assert!(att.timer_delay_us >= base);
        // Walk the whole ladder: every verdict must be well-formed.
        loop {
            match arq.on_timer(att.token) {
                TimerVerdict::Retry(next) => att = next,
                TimerVerdict::Exhausted { .. } => break,
                v => prop_assert!(false, "unexpected verdict {v:?}"),
            }
        }
    }
}

/// The recovered DST battery is executor-independent: the sequential
/// reference and the rayon-backed engine serialize to identical bytes.
#[test]
fn recovered_dst_sweep_is_byte_identical_across_executors() {
    let builder = SweepBuilder::new(20260805).worlds(3);
    let seq = sweep_scenario_for::<decoupling::Mpr, _>(&mpr_cfg(), &builder, &SequentialExecutor);
    let par = sweep_scenario_for::<decoupling::Mpr, _>(
        &mpr_cfg(),
        &builder,
        &ParallelExecutor::with_threads(3),
    );
    assert_eq!(
        seq, par,
        "recovered sweep reports diverged between executors"
    );
    let a = serde_json::to_string_pretty(&seq).unwrap();
    let b = serde_json::to_string_pretty(&par).unwrap();
    assert_eq!(a, b, "recovered sweep JSON diverged between executors");
}
