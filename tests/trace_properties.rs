//! Property tests: `Trace` accounting stays honest under injected faults.
//!
//! The workload is a fixed pipe — the environment posts `n` uniquely
//! flow-tagged messages to a forwarder `A`, which relays each to a sink
//! `B` — so the *offered* load on the `A → B` link is known exactly and
//! every divergence in the observed trace must be explained by the
//! [`FaultLog`]:
//!
//! * duplicated / reordered / delayed packets never change the per-flow
//!   byte accounting (dedup by send event recovers the calm trace);
//! * `on_link` / `at_node` counts reconcile with `drops_on_link` /
//!   `duplicates_on_link`;
//! * the whole (trace, log) pair is a pure function of `(seed, config)`.

use std::collections::BTreeMap;

use decoupling::core::{EntityId, World};
use decoupling::faults::{FaultConfig, FaultKind, FaultLog};
use decoupling::simnet::{Ctx, LinkParams, Message, Network, Node, NodeId, SimTime, Trace};
use proptest::prelude::*;

/// Relay every message, preserving its ground-truth flow tag.
struct Pipe {
    entity: EntityId,
    next: Option<NodeId>,
}

impl Node for Pipe {
    fn entity(&self) -> EntityId {
        self.entity
    }
    fn on_message(&mut self, ctx: &mut Ctx, _from: NodeId, msg: Message) {
        if let Some(next) = self.next {
            let flow = msg.flow;
            let mut fwd = Message::public(msg.bytes);
            fwd.flow = flow;
            ctx.send(next, fwd);
        }
    }
}

const SINK: NodeId = NodeId(0);
const FWD: NodeId = NodeId(1);

/// Run the pipe workload: `n` messages of `size` bytes, one flow id each.
/// Returns the wire trace and the fault log.
fn run_pipe(n: usize, size: usize, config: &FaultConfig, seed: u64) -> (Trace, FaultLog) {
    let mut world = World::new();
    let ao = world.add_org("a-co");
    let bo = world.add_org("b-co");
    let ea = world.add_entity("A", ao, None);
    let eb = world.add_entity("B", bo, None);

    let mut net = Network::new(world, seed);
    net.set_default_link(LinkParams::wan_ms(5));
    net.enable_faults(config.clone(), seed);
    let sink = net.add_node(Box::new(Pipe {
        entity: eb,
        next: None,
    }));
    assert_eq!(sink, SINK);
    let fwd = net.add_node(Box::new(Pipe {
        entity: ea,
        next: Some(sink),
    }));
    assert_eq!(fwd, FWD);

    // Environment posts bypass the wire (no trace record, no wire fault),
    // so the forwarder offers exactly `n` sends on the A → B link.
    for i in 0..n {
        net.post_at(
            fwd,
            Message::public(vec![0u8; size]).with_flow(i as u64),
            SimTime(i as u64 * 1_000),
        );
    }
    net.run();
    let log = net.fault_log();
    let (_, trace) = net.into_parts();
    (trace, log)
}

/// Per-flow byte totals, counting each *send event* once: duplicate
/// copies share `(src, dst, flow, send_time, size)` and collapse.
fn bytes_per_flow_dedup(trace: &Trace) -> BTreeMap<u64, usize> {
    let mut seen = std::collections::BTreeSet::new();
    let mut out = BTreeMap::new();
    for r in trace.records() {
        let flow = r.true_flow.expect("pipe workload tags every message");
        if seen.insert((r.src, r.dst, flow, r.send_time, r.size)) {
            *out.entry(flow).or_insert(0) += r.size;
        }
    }
    out
}

/// A config that duplicates, delays, and reorders but never *loses*
/// anything: no drops, partitions, crashes, or churn.
fn lossless_config(p_dup: f64, p_reorder: f64, p_delay: f64) -> FaultConfig {
    FaultConfig {
        enabled: true,
        p_duplicate: p_dup,
        p_reorder,
        p_extra_delay: p_delay,
        max_extra_delay_us: 40_000,
        max_faults: u64::MAX,
        ..FaultConfig::calm()
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Duplication and reordering never change per-flow byte accounting:
    /// dedup by send event recovers exactly the calm run's per-flow
    /// totals, and no flow is lost or invented.
    #[test]
    fn dup_reorder_preserve_per_flow_bytes(
        n in 1usize..24,
        size in 1usize..1200,
        p_dup_pm in 0u32..600,
        p_reorder_pm in 0u32..400,
        p_delay_pm in 0u32..400,
        seed in any::<u64>(),
    ) {
        let (p_dup, p_reorder, p_delay) = (
            f64::from(p_dup_pm) / 1000.0,
            f64::from(p_reorder_pm) / 1000.0,
            f64::from(p_delay_pm) / 1000.0,
        );
        let (calm_trace, calm_log) =
            run_pipe(n, size, &FaultConfig::calm(), seed);
        prop_assert!(calm_log.is_empty());

        let cfg = lossless_config(p_dup, p_reorder, p_delay);
        let (trace, log) = run_pipe(n, size, &cfg, seed);

        prop_assert_eq!(
            bytes_per_flow_dedup(&trace),
            bytes_per_flow_dedup(&calm_trace)
        );
        // Lossless faults only: nothing in the log may be a loss.
        prop_assert_eq!(
            log.count(|k| !matches!(
                k,
                FaultKind::Duplicate { .. }
                    | FaultKind::Reorder { .. }
                    | FaultKind::ExtraDelay { .. }
            )),
            0
        );
    }

    /// `on_link` / `at_node` counts reconcile exactly with the fault log:
    /// offered sends − drops + extra duplicate copies = observed records.
    #[test]
    fn link_counts_reconcile_with_fault_log(
        n in 1usize..24,
        size in 1usize..1200,
        p_drop_pm in 0u32..400,
        p_dup_pm in 0u32..400,
        seed in any::<u64>(),
    ) {
        let cfg = FaultConfig {
            enabled: true,
            p_drop: f64::from(p_drop_pm) / 1000.0,
            p_duplicate: f64::from(p_dup_pm) / 1000.0,
            max_faults: u64::MAX,
            ..FaultConfig::calm()
        };
        let (trace, log) = run_pipe(n, size, &cfg, seed);

        let drops = log.drops_on_link(FWD.0, SINK.0);
        let dups = log.duplicates_on_link(FWD.0, SINK.0);
        let observed = trace.on_link(FWD, SINK).len();
        prop_assert_eq!(observed, n - drops + dups);
        prop_assert_eq!(
            trace.on_link(FWD, SINK).iter().map(|r| r.size).sum::<usize>(),
            (n - drops + dups) * size
        );

        // The pipe has a single link, so both endpoint views match it and
        // the whole-trace totals agree.
        prop_assert_eq!(trace.at_node(FWD).len(), observed);
        prop_assert_eq!(trace.at_node(SINK).len(), observed);
        prop_assert_eq!(trace.len(), observed);
        prop_assert_eq!(trace.total_bytes(), (n - drops + dups) * size);
    }

    /// The `(trace, log)` pair is a pure function of `(seed, config)`.
    #[test]
    fn trace_and_log_replay_from_seed(
        n in 1usize..16,
        size in 1usize..600,
        preset in 0usize..3,
        seed in any::<u64>(),
    ) {
        let cfg = FaultConfig::presets()[preset].1.clone();
        let (t1, l1) = run_pipe(n, size, &cfg, seed);
        let (t2, l2) = run_pipe(n, size, &cfg, seed);
        prop_assert_eq!(l1, l2);
        prop_assert_eq!(t1.records(), t2.records());
    }
}
