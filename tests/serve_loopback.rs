//! The sim/prod duality, held to bytes: the ODoH wiring served over real
//! loopback TCP must finish its workload and produce knowledge tables
//! **byte-identical** to the deterministic simulator's run of the same
//! config and seed — and the production decoder must shrug off hostile
//! bytes, both in-process (proptest against `FrameReader`) and on a live
//! socket (a rogue connection spraying garbage mid-run).

use std::time::Duration;

use dcp_core::Scenario;
use dcp_faults::dst::KnowledgeFingerprint;
use dcp_odns::serve::odoh_serve_spec;
use dcp_odns::{Odoh, OdohConfig};
use dcp_serve::{run_loopback, FrameReader, ServeConfig, MAX_FRAME_PAYLOAD};
use proptest::prelude::*;

fn serve_cfg(seed: u64) -> ServeConfig {
    ServeConfig {
        seed,
        deadline: Duration::from_secs(30),
        ..ServeConfig::default()
    }
}

/// Serve a config over loopback TCP and compare against the simulated
/// twin. JSON-serializing both fingerprints makes the comparison literal
/// bytes, not just `PartialEq`.
fn assert_twin(cfg: OdohConfig, seed: u64) {
    let outcome = run_loopback(odoh_serve_spec(&cfg, seed), &serve_cfg(seed)).expect("serve runs");
    assert_eq!(
        outcome.completed_units, outcome.expected_units,
        "every query answered over real sockets"
    );
    let served = serde_json::to_string(&KnowledgeFingerprint::of(&outcome.world)).unwrap();
    let sim_report = Odoh::run(&cfg, seed);
    let simmed = serde_json::to_string(&KnowledgeFingerprint::of(&sim_report.world)).unwrap();
    assert_eq!(
        served, simmed,
        "served knowledge tables must be byte-identical to the simulated twin"
    );
}

#[test]
fn odoh_over_loopback_matches_simulated_twin() {
    assert_twin(OdohConfig::new(1, 4), 7);
}

#[test]
fn odoh_multi_client_loopback_matches_simulated_twin() {
    // Three clients interleave on real sockets in nondeterministic
    // order; the tables must not care.
    assert_twin(OdohConfig::new(3, 4), 1004);
}

#[test]
fn rogue_connections_cannot_perturb_the_tables() {
    // A run that also receives hostile traffic from a stranger — raw
    // garbage, an oversize length prefix, a data frame with no hello, a
    // forged hello with an unregistered nonce — must complete normally
    // and produce the exact same knowledge tables. The rogue peer is not
    // part of the spec, so any effect it had would surface as a
    // fingerprint diff, a missing answer, or a wedged run.
    use std::io::Write;
    use std::net::TcpStream;

    let cfg = OdohConfig::new(1, 4);
    let seed = 11;

    let (tx, rx) = std::sync::mpsc::channel();
    let mut hostile_cfg = serve_cfg(seed);
    hostile_cfg.port_report = Some(tx);
    let attacker = std::thread::spawn(move || {
        let addrs = rx.recv().expect("engine reports its ports");
        // One payload per attack class; ignore socket errors — the
        // engine closing on us early is exactly the fail-closed path.
        let mut forged_hello = vec![0x02];
        forged_hello.extend_from_slice(&10u32.to_be_bytes());
        forged_hello.extend_from_slice(&0xdead_beef_dead_beefu64.to_be_bytes());
        forged_hello.extend_from_slice(&7u16.to_be_bytes());
        let mut oversize = vec![0x01];
        oversize.extend_from_slice(&u32::MAX.to_be_bytes());
        let mut no_hello_data = vec![0x01];
        no_hello_data.extend_from_slice(&3u32.to_be_bytes());
        no_hello_data.extend_from_slice(b"pwn");
        let attacks: [&[u8]; 4] = [
            b"\xfftotal garbage",
            &oversize,
            &no_hello_data,
            &forged_hello,
        ];
        for addr in &addrs {
            for attack in attacks {
                if let Ok(mut s) = TcpStream::connect(addr) {
                    let _ = s.write_all(attack);
                    let _ = s.flush();
                }
            }
        }
    });

    let outcome =
        run_loopback(odoh_serve_spec(&cfg, seed), &hostile_cfg).expect("run survives hostility");
    attacker.join().expect("attacker thread");
    assert_eq!(outcome.completed_units, outcome.expected_units);
    let under_attack = serde_json::to_string(&KnowledgeFingerprint::of(&outcome.world)).unwrap();

    let clean = run_loopback(odoh_serve_spec(&cfg, seed), &serve_cfg(seed)).expect("clean run");
    let clean_fp = serde_json::to_string(&KnowledgeFingerprint::of(&clean.world)).unwrap();
    assert_eq!(
        under_attack, clean_fp,
        "hostile connections must not change what anyone learned"
    );
}

proptest! {
    /// Arbitrary bytes, arbitrarily chunked, can error the production
    /// reader but never panic it — and anything it does accept re-encodes
    /// to well-formed frames.
    #[test]
    fn frame_reader_never_panics_on_hostile_bytes(
        bytes in proptest::collection::vec(any::<u8>(), 0..2048),
        chunk in 1usize..64,
    ) {
        let mut r = FrameReader::new();
        for c in bytes.chunks(chunk) {
            match r.push(c) {
                Ok(frames) => {
                    for f in frames {
                        prop_assert!(f.payload.len() <= MAX_FRAME_PAYLOAD);
                        prop_assert!(f.encode().is_ok());
                    }
                }
                Err(_) => break, // fail-closed: the stream is poisoned, stop
            }
        }
        prop_assert!(r.pending() <= 5 + MAX_FRAME_PAYLOAD);
    }

    /// Truncating a valid multi-frame stream at any byte never panics and
    /// never yields a frame that wasn't fully present.
    #[test]
    fn truncation_yields_only_complete_frames(cut in 0usize..200, n in 1usize..5) {
        use dcp_runtime::seam::{Frame, FrameType};
        let mut stream = Vec::new();
        let mut lens = Vec::new();
        for i in 0..n {
            let f = Frame::new(FrameType::Data, vec![i as u8; 17 * (i + 1)]);
            let enc = f.encode().unwrap();
            lens.push(enc.len());
            stream.extend_from_slice(&enc);
        }
        let cut = cut.min(stream.len());
        let mut r = FrameReader::new();
        let got = r.push(&stream[..cut]).expect("prefix of valid stream decodes");
        // Every yielded frame must have been completely inside the cut.
        let mut consumed = 0;
        for (f, l) in got.iter().zip(&lens) {
            consumed += l;
            prop_assert!(consumed <= cut);
            prop_assert_eq!(f.encode().unwrap().len(), *l);
        }
    }
}
