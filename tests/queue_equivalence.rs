//! The queue-swap equivalence gate: the hierarchical timer wheel
//! (`dcp_simnet::TimerWheel`, the default) and the legacy `BinaryHeap`
//! must produce the **identical** `(time, seq)` total order — so the
//! full DST battery and the harsh recovery probe must serialize to
//! byte-identical JSON under either queue, at the same seeds.
//!
//! This is the in-process version of the CI artifact diff
//! (`dst_sweep --queue wheel` vs `--queue heap`); both queues coexist
//! behind [`QueueKind`] until the gate has soaked.

use decoupling::faults::dst::{run_recovery_probe_for_with, sweep_scenario_for_with};
use decoupling::{
    Blindcash, BlindcashConfig, Mixnet, MixnetConfig, Odoh, OdohConfig, QueueKind, RunOptions,
    Scenario, SequentialExecutor, SweepBuilder, Vpn, VpnConfig,
};

fn wheel() -> RunOptions {
    RunOptions::new().with_queue(QueueKind::TimerWheel)
}

fn heap() -> RunOptions {
    RunOptions::new().with_queue(QueueKind::BinaryHeap)
}

/// Full DST preset battery (calm/moderate/harsh/chaos, determinism and
/// safety asserted inside) under both queues → byte-identical JSON.
fn battery_agrees<S: Scenario>(cfg: &S::Config)
where
    S::Config: Sync,
{
    let builder = SweepBuilder::new(20221114).worlds(2);
    let a = sweep_scenario_for_with::<S, _>(cfg, &builder, &SequentialExecutor, &wheel());
    let b = sweep_scenario_for_with::<S, _>(cfg, &builder, &SequentialExecutor, &heap());
    assert_eq!(
        a,
        b,
        "{}: DST battery diverged across the queue swap",
        S::NAME
    );
    assert_eq!(
        decoupling::obs::to_json(&a),
        decoupling::obs::to_json(&b),
        "{}: probe JSON not byte-identical across the queue swap",
        S::NAME
    );
}

#[test]
fn dst_battery_is_queue_invariant_odoh() {
    battery_agrees::<Odoh>(&OdohConfig::new(3, 4));
}

#[test]
fn dst_battery_is_queue_invariant_blindcash() {
    battery_agrees::<Blindcash>(&BlindcashConfig::new(2, 2, 512));
}

#[test]
fn dst_battery_is_queue_invariant_mixnet() {
    let cfg = MixnetConfig {
        senders: 6,
        mixes: 2,
        batch_size: 3,
        window_us: 100_000,
        shuffle: true,
        chaff_per_sender: 0,
        mix_max_wait_us: None,
        seed: 0,
    };
    battery_agrees::<Mixnet>(&cfg);
}

#[test]
fn recovery_probe_is_queue_invariant() {
    // The harsh completion-bar probe: retries, failovers, and quarantine
    // timers all ride the event queue — the strictest timing consumer.
    for seed in [1u64, 20230402, 0xDEAD_BEEF] {
        let a = run_recovery_probe_for_with::<Vpn>(seed, &VpnConfig::new(3, 2), &wheel());
        let b = run_recovery_probe_for_with::<Vpn>(seed, &VpnConfig::new(3, 2), &heap());
        assert_eq!(a, b, "vpn recovery probe diverged at seed {seed}");
        assert_eq!(decoupling::obs::to_json(&a), decoupling::obs::to_json(&b));
    }
}
