//! Failure injection: what breaks when parties misbehave — forged
//! credentials, double spends, and modeled key compromise (a relay
//! "colluding" by acquiring another hop's key).

use decoupling::core::{analyze, DataKind, IdentityKind, InfoItem, Label, UserId, World};
use decoupling::crypto::hpke;
use rand::SeedableRng;

#[test]
fn forged_coins_and_double_spends_rejected() {
    let mut rng = rand::rngs::StdRng::seed_from_u64(301);
    let mut bank = decoupling::blindcash::Bank::new(&mut rng, 512);
    bank.open_account(UserId(1), 2);

    let w = decoupling::blindcash::bank::Withdrawal::begin(&mut rng, bank.public_key()).unwrap();
    let bs = bank.withdraw(UserId(1), w.blinded_msg()).unwrap();
    let coin = w.finish(bank.public_key(), &bs).unwrap();
    assert!(bank.deposit(UserId(2), &coin).is_ok());
    assert_eq!(
        bank.deposit(UserId(2), &coin),
        Err(decoupling::blindcash::DepositError::DoubleSpend)
    );

    let forged = decoupling::blindcash::Coin {
        serial: [7u8; 32],
        signature: vec![1; bank.public_key().modulus_len()],
    };
    assert_eq!(
        bank.deposit(UserId(2), &forged),
        Err(decoupling::blindcash::DepositError::BadSignature)
    );
}

#[test]
fn token_forgery_and_cross_issuer_replay_rejected() {
    let mut rng = rand::rngs::StdRng::seed_from_u64(302);
    let mut issuer_a = decoupling::privacypass::Issuer::new(&mut rng);
    let mut issuer_b = decoupling::privacypass::Issuer::new(&mut rng);
    let mut client = decoupling::privacypass::Client::new(issuer_a.public_key());
    let req = client.request_tokens(&mut rng, 1);
    let evals = issuer_a.issue(&mut rng, &req.blinded).unwrap();
    client.accept_issuance(req, &evals).unwrap();
    let t = client.spend().unwrap();
    assert!(issuer_b.redeem(&t).is_err(), "wrong issuer");
    assert!(issuer_a.redeem(&t).is_ok());
    assert!(issuer_a.redeem(&t).is_err(), "double spend");
}

#[test]
fn key_compromise_recouples_the_world() {
    // Model "Relay 1 obtains the exit's key" (equivalently: both relays
    // run by one colluding operator sharing key material). The decoupling
    // verdict must flip as soon as observations resume.
    let mut world = World::new();
    let uo = world.add_org("user");
    let r1o = world.add_org("op1");
    let r2o = world.add_org("op2");
    let alice = world.add_user();
    let _client = world.add_entity("Client", uo, Some(alice));
    let r1 = world.add_entity("Relay 1", r1o, None);
    let r2 = world.add_entity("Relay 2", r2o, None);
    let k2 = world.new_key(&[r2]);

    // A payload whose inner layer only the exit should read.
    let payload = Label::items([InfoItem::sensitive_identity(alice, IdentityKind::Any)])
        .and(Label::items([InfoItem::sensitive_data(alice, DataKind::Destination)]).sealed(k2));

    world.observe(r1, &payload);
    assert!(analyze(&world).decoupled, "honest relay 1 sees only ▲ + ⊙");

    // Compromise: relay 1 acquires the exit key and re-observes traffic.
    world.grant_key(r1, k2);
    world.observe(r1, &payload);
    let verdict = analyze(&world);
    assert!(!verdict.decoupled);
    assert_eq!(verdict.offenders(), vec!["Relay 1"]);
}

#[test]
fn hpke_tampering_and_truncation_rejected_at_every_layer() {
    let mut rng = rand::rngs::StdRng::seed_from_u64(303);
    let kp = hpke::Keypair::generate(&mut rng);
    let msg = hpke::seal(&mut rng, &kp.public, b"ctx", b"aad", b"payload").unwrap();
    for i in 0..msg.len() {
        let mut bad = msg.clone();
        bad[i] ^= 0x01;
        assert!(hpke::open(&kp, b"ctx", b"aad", &bad).is_err(), "byte {i}");
    }
    for cut in [0usize, 16, 31, 32, msg.len() - 1] {
        assert!(
            hpke::open(&kp, b"ctx", b"aad", &msg[..cut]).is_err(),
            "cut {cut}"
        );
    }
}

#[test]
fn malicious_telemetry_cannot_poison_or_leak() {
    use decoupling::Scenario as _;
    let config = decoupling::PpmConfig {
        clients: 8,
        bits: 8,
        malicious: 3,
        seed: 304,
    };
    let report = decoupling::Ppm::run(&config, 304);
    // Poison excluded…
    assert_eq!(report.aggregate, Some(report.expected_sum));
    assert_eq!(report.rejected, 3);
    // …and the system stayed decoupled throughout.
    assert!(analyze(&report.world).decoupled);
}

#[test]
fn pgpp_rejects_unauthenticated_attaches() {
    // A forged (non-issued) token must be refused by the gateway.
    let mut rng = rand::rngs::StdRng::seed_from_u64(305);
    let mut issuer = decoupling::privacypass::Issuer::new(&mut rng);
    let forged = decoupling::privacypass::Token {
        nonce: [9u8; 32],
        output: [9u8; 32],
    };
    assert!(issuer.redeem(&forged).is_err());
}
