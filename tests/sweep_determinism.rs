//! The parallel sweep engine's load-bearing promise, tested three ways:
//!
//! * **engine** — for arbitrary `(master_seed, worlds, threads)`, a
//!   [`ParallelExecutor`] sweep is equal to the [`SequentialExecutor`]
//!   reference, entry for entry, and the serialized reports are
//!   byte-identical JSON (the same diff CI performs on `dst_sweep`);
//! * **scenarios** — every §3 scenario's full DST preset battery agrees
//!   between the two executors, so nothing a scenario aggregates depends
//!   on completion order;
//! * **fail-closed crypto** — the bugfix half of this change: malformed
//!   wire bytes (RSA keys, signatures, HPKE ciphertexts, bignum
//!   encodings) return errors instead of panicking, in sequential *and*
//!   parallel worlds alike.

use decoupling::crypto::{hpke, rsa::RsaPublicKey};
use decoupling::faults::dst::sweep_scenario_for;
use decoupling::{
    derive_seed, ParallelExecutor, RunOptions, Scenario, SequentialExecutor, SweepBuilder,
};
use proptest::prelude::*;
use serde::Serialize as _;

/// The executor pair every test compares: the reference and the engine
/// under test at a thread count that forces real interleaving.
fn executors() -> (SequentialExecutor, ParallelExecutor) {
    (SequentialExecutor, ParallelExecutor::with_threads(3))
}

/// Run one scenario's full DST battery under both executors and demand
/// byte-identical JSON.
fn scenario_sweep_agrees<S: Scenario>(cfg: &S::Config)
where
    S::Config: Sync,
{
    let builder = SweepBuilder::new(20221114).worlds(3);
    let (seq, par) = executors();
    let a = sweep_scenario_for::<S, _>(cfg, &builder, &seq);
    let b = sweep_scenario_for::<S, _>(cfg, &builder, &par);
    assert_eq!(a, b, "{}: parallel DST sweep diverged", a.scenario);
    assert_eq!(
        serde_json::to_string_pretty(&a).unwrap(),
        serde_json::to_string_pretty(&b).unwrap(),
        "{}: JSON not byte-identical",
        a.scenario
    );
}

#[test]
fn dst_sweep_blindcash() {
    scenario_sweep_agrees::<decoupling::Blindcash>(&decoupling::BlindcashConfig::new(2, 2, 512));
}

#[test]
fn dst_sweep_mixnet() {
    scenario_sweep_agrees::<decoupling::Mixnet>(&decoupling::MixnetConfig {
        senders: 6,
        mixes: 2,
        batch_size: 3,
        window_us: 100_000,
        shuffle: true,
        chaff_per_sender: 0,
        mix_max_wait_us: None,
        seed: 0,
    });
}

#[test]
fn dst_sweep_privacypass() {
    scenario_sweep_agrees::<decoupling::Privacypass>(&decoupling::PrivacypassConfig::new(3, 2));
}

#[test]
fn dst_sweep_odns() {
    scenario_sweep_agrees::<decoupling::Odoh>(&decoupling::OdohConfig::new(3, 4));
}

#[test]
fn dst_sweep_pgpp() {
    scenario_sweep_agrees::<decoupling::Pgpp>(&decoupling::PgppConfig {
        mode: decoupling::pgpp::Mode::Pgpp,
        users: 5,
        cells: 2,
        epochs: 2,
        moves_per_epoch: 2,
        seed: 0,
    });
}

#[test]
fn dst_sweep_mpr() {
    scenario_sweep_agrees::<decoupling::Mpr>(&decoupling::ChainConfig {
        relays: 2,
        users: 3,
        fetches_each: 2,
        geohint: false,
        seed: 0,
    });
}

#[test]
fn dst_sweep_ppm() {
    scenario_sweep_agrees::<decoupling::Ppm>(&decoupling::PpmConfig {
        clients: 5,
        bits: 4,
        malicious: 0,
        seed: 0,
    });
}

#[test]
fn dst_sweep_vpn() {
    scenario_sweep_agrees::<decoupling::Vpn>(&decoupling::VpnConfig::new(3, 2));
}

/// Every scenario report (and its config) must cross thread boundaries:
/// the engine's `Report: Send` bound, spelled out so a regression names
/// the offending type instead of failing in generic soup.
#[test]
fn reports_and_configs_are_send() {
    fn assert_send<T: Send>() {}
    fn assert_sync<T: Sync>() {}
    assert_send::<<decoupling::Blindcash as Scenario>::Report>();
    assert_send::<<decoupling::Mixnet as Scenario>::Report>();
    assert_send::<<decoupling::Privacypass as Scenario>::Report>();
    assert_send::<<decoupling::Odoh as Scenario>::Report>();
    assert_send::<<decoupling::Pgpp as Scenario>::Report>();
    assert_send::<<decoupling::Mpr as Scenario>::Report>();
    assert_send::<<decoupling::Ppm as Scenario>::Report>();
    assert_send::<<decoupling::Vpn as Scenario>::Report>();
    assert_sync::<decoupling::BlindcashConfig>();
    assert_sync::<decoupling::MixnetConfig>();
    assert_sync::<decoupling::PrivacypassConfig>();
    assert_sync::<decoupling::OdohConfig>();
    assert_sync::<decoupling::PgppConfig>();
    assert_sync::<decoupling::ChainConfig>();
    assert_sync::<decoupling::PpmConfig>();
    assert_sync::<decoupling::VpnConfig>();
}

// (The bignum underflow/overflow fail-closed regression moved next to
// the arithmetic it pins — the bigint unit tests in dcp-crypto — when
// raw bigint references outside crates/crypto became lint-forbidden.)

/// Malformed RSA wire bytes — truncated, zero-modulus, non-minimal —
/// must come back as `Err`, never a panic inside the bignum layer.
#[test]
fn malformed_rsa_key_bytes_fail_closed() {
    assert!(RsaPublicKey::from_bytes(&[]).is_err());
    assert!(RsaPublicKey::from_bytes(&[0, 0, 0, 64]).is_err());
    // n = 0 (length prefix says 0 bytes of modulus, e = 3).
    assert!(RsaPublicKey::from_bytes(&[0, 0, 0, 0, 3]).is_err());
    // A modulus of all-zero bytes with a plausible length.
    let mut zeros = vec![0, 0, 0, 64];
    zeros.extend_from_slice(&[0u8; 64]);
    zeros.push(3);
    assert!(RsaPublicKey::from_bytes(&zeros).is_err());
}

/// Malformed HPKE ciphertexts of every length bucket open to `Err`.
#[test]
fn malformed_hpke_ciphertexts_fail_closed() {
    use rand::SeedableRng as _;
    let mut rng = rand::rngs::StdRng::seed_from_u64(7);
    let kp = hpke::Keypair::generate(&mut rng);
    for len in [0usize, 1, 31, 32, 33, 47, 48, 64] {
        let junk = vec![0xa5u8; len];
        assert!(
            hpke::open(&kp, b"info", b"aad", &junk).is_err(),
            "junk of len {len} must not open"
        );
    }
    // A real ciphertext with one flipped bit anywhere must also fail.
    let ct = hpke::seal(&mut rng, &kp.public, b"info", b"aad", b"payload").unwrap();
    let mut tampered = ct.clone();
    *tampered.last_mut().unwrap() ^= 1;
    assert!(hpke::open(&kp, b"info", b"aad", &tampered).is_err());
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The engine itself, property-tested: any `(master_seed, worlds,
    /// threads)` triple produces the same entries in the same order from
    /// both executors, with the seeds the closed-form `derive_seed`
    /// promises.
    #[test]
    fn parallel_sweep_matches_sequential(
        master_seed in any::<u64>(),
        worlds in 1u64..24,
        threads in 1usize..6,
    ) {
        let builder = SweepBuilder::new(master_seed).worlds(worlds);
        let work = |job: &decoupling::core::sweep::SweepJob| {
            // A cheap but seed-sensitive stand-in for a scenario run.
            (job.index, job.seed, job.seed.rotate_left((job.index % 63) as u32))
        };
        let seq = builder.run_on(&SequentialExecutor, work);
        let par = builder.run_on(&ParallelExecutor::with_threads(threads), work);
        prop_assert_eq!(&seq, &par);
        prop_assert_eq!(seq.seeds(), par.seeds());
        for (i, entry) in par.entries.iter().enumerate() {
            prop_assert_eq!(entry.index, i as u64);
            prop_assert_eq!(entry.seed, derive_seed(master_seed, i as u64));
        }
    }

    /// One real scenario under the proptest lens: arbitrary seeds and
    /// world counts, reports byte-identical across executors.
    #[test]
    fn odoh_sweep_reports_byte_identical(
        master_seed in any::<u64>(),
        worlds in 1u64..5,
    ) {
        let cfg = decoupling::OdohConfig::new(2, 2);
        let builder = SweepBuilder::new(master_seed).worlds(worlds);
        let opts = RunOptions::new();
        let (seq_exec, par_exec) = executors();
        let a = decoupling::Odoh::sweep(&cfg, &builder, &seq_exec, &opts)
            .report(|e| e.result.answered as u64);
        let b = decoupling::Odoh::sweep(&cfg, &builder, &par_exec, &opts)
            .report(|e| e.result.answered as u64);
        prop_assert_eq!(a.serialize_value(), b.serialize_value());
    }
}
