//! Property tests: the metrics layer stays honest under injected faults.
//!
//! Every §3 scenario is run through the unified [`decoupling::Scenario`]
//! API with the sink installed, and the resulting
//! [`decoupling::MetricsReport`] is reconciled against the two other
//! sources of ground truth the simulator produces:
//!
//! * the [`decoupling::FaultLog`] — each per-kind counter in
//!   `metrics.faults` must equal the number of matching replay-log
//!   entries, for every preset;
//! * the wire [`Trace`](decoupling::simnet::Trace) — every send the
//!   metrics count that is neither an environment injection nor a wire
//!   drop must appear as exactly one packet record;
//!
//! plus the internal wire-accounting identity (sent = delivered +
//! dropped + lost-to-crash + unserviced) and determinism of the whole
//! report as a pure function of `(config, seed, preset)`.

use decoupling::Scenario as _;
use decoupling::ScenarioReport as _;
use decoupling::{FaultConfig, FaultLog, MetricsReport, RunOptions};
use proptest::prelude::*;

/// What every scenario hands the reconciliation checks: the metrics
/// report plus the two ground-truth artifacts it must agree with.
struct Observed {
    metrics: MetricsReport,
    log: FaultLog,
    trace_len: usize,
    completed: bool,
}

/// Run one scenario observed under `faults`, capturing the trace length
/// from the rich report (the `ScenarioReport` trait deliberately does
/// not expose the trace, so each closure reads its concrete field).
macro_rules! observed_runner {
    ($ty:ty, $cfg:expr) => {
        Box::new(move |seed: u64, faults: &FaultConfig| {
            let r = <$ty>::run_with(&$cfg, seed, &RunOptions::observed_with_faults(faults));
            Observed {
                metrics: r.metrics().clone(),
                log: r.fault_log().clone(),
                trace_len: r.trace.len(),
                completed: r.completed(),
            }
        }) as Box<dyn Fn(u64, &FaultConfig) -> Observed>
    };
}

/// A boxed "run this scenario observed" closure.
type Runner = Box<dyn Fn(u64, &FaultConfig) -> Observed>;

/// All eight §3 scenarios, small enough to run many cases.
fn scenarios() -> Vec<(&'static str, Runner)> {
    let mixnet = decoupling::MixnetConfig {
        senders: 4,
        mixes: 2,
        batch_size: 2,
        window_us: 100_000,
        shuffle: true,
        chaff_per_sender: 0,
        mix_max_wait_us: None,
        seed: 0, // overridden by the harness seed
    };
    let pgpp = decoupling::PgppConfig {
        mode: decoupling::pgpp::Mode::Pgpp,
        users: 3,
        cells: 2,
        epochs: 1,
        moves_per_epoch: 2,
        seed: 0, // overridden by the harness seed
    };
    let mpr = decoupling::ChainConfig {
        relays: 2,
        users: 2,
        fetches_each: 2,
        geohint: false,
        seed: 0, // overridden by the harness seed
    };
    let ppm = decoupling::PpmConfig {
        clients: 3,
        bits: 4,
        malicious: 0,
        seed: 0, // overridden by the harness seed
    };
    vec![
        (
            "blindcash",
            observed_runner!(
                decoupling::Blindcash,
                decoupling::BlindcashConfig::new(1, 2, 512)
            ),
        ),
        ("mixnet", observed_runner!(decoupling::Mixnet, mixnet)),
        (
            "privacypass",
            observed_runner!(
                decoupling::Privacypass,
                decoupling::PrivacypassConfig::new(2, 2)
            ),
        ),
        (
            "odns",
            observed_runner!(decoupling::Odoh, decoupling::OdohConfig::new(2, 3)),
        ),
        ("pgpp", observed_runner!(decoupling::Pgpp, pgpp)),
        ("mpr", observed_runner!(decoupling::Mpr, mpr)),
        ("ppm", observed_runner!(decoupling::Ppm, ppm)),
        (
            "vpn",
            observed_runner!(decoupling::Vpn, decoupling::VpnConfig::new(2, 2)),
        ),
    ]
}

/// The metrics-side name of each replay-log fault kind. Every injection
/// site in the dispatch loop records into the log and emits the obs
/// event at the same point, so the counts must match exactly.
fn log_count_by_kind(log: &FaultLog, kind: &str) -> u64 {
    use decoupling::faults::FaultKind as K;
    log.count(|k| {
        matches!(
            (kind, k),
            ("drop", K::Drop { .. })
                | ("duplicate", K::Duplicate { .. })
                | ("extra_delay", K::ExtraDelay { .. })
                | ("reorder", K::Reorder { .. })
                | ("partition", K::Partition { .. })
                | ("crash", K::Crash { .. })
                | ("relay_churn", K::RelayCrash { .. })
                | ("dir_partition", K::DirPartition { .. })
                | ("crash_loss", K::CrashLoss { .. })
                | ("key_compromise", K::KeyCompromise { .. })
        )
    }) as u64
}

const FAULT_KINDS: &[&str] = &[
    "drop",
    "duplicate",
    "extra_delay",
    "reorder",
    "partition",
    "crash",
    "relay_churn",
    "dir_partition",
    "crash_loss",
    "key_compromise",
];

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Per-kind fault counters reconcile with the replay log, the wire
    /// accounting identity holds, and span/knowledge bookkeeping is
    /// internally consistent — for every scenario under every preset.
    #[test]
    fn metrics_reconcile_with_fault_log(
        scenario_idx in 0usize..8,
        preset in 0usize..3,
        seed in any::<u64>(),
    ) {
        let (name, run) = &scenarios()[scenario_idx];
        let faults = FaultConfig::presets()[preset].1.clone();
        let obs = run(seed, &faults);
        let m = &obs.metrics;

        prop_assert!(m.enabled);
        prop_assert_eq!(&m.scenario, name);
        prop_assert_eq!(m.seed, seed);
        prop_assert!(m.wire_accounting_holds(),
            "{}: sent {} != delivered {} + dropped {} + lost {} + unserviced {}",
            name, m.messages_sent, m.messages_delivered, m.messages_dropped,
            m.messages_lost_to_crash, m.messages_unserviced);

        // Every fault the metrics saw is in the log, kind by kind …
        for kind in FAULT_KINDS {
            prop_assert_eq!(
                m.faults.get(*kind).copied().unwrap_or(0),
                log_count_by_kind(&obs.log, kind),
                "{}: counter/log mismatch for {}", name, kind
            );
        }
        // … and the metrics invented no kinds of their own.
        for kind in m.faults.keys() {
            prop_assert!(FAULT_KINDS.contains(&kind.as_str()),
                "{}: unknown fault kind {}", name, kind);
        }

        // A wire drop is either a drop fault or a partition casualty, so
        // the drop counter is bounded below by the logged drop faults.
        prop_assert!(m.messages_dropped >= m.faults.get("drop").copied().unwrap_or(0));

        // Spans close after they open, inside simulated time; the
        // per-entity knowledge rollup covers the timeline exactly.
        for s in &m.spans {
            prop_assert!(s.start_us <= s.end_us);
            prop_assert!(s.end_us <= m.sim_end_us);
        }
        prop_assert_eq!(
            m.knowledge_by_entity.values().sum::<u64>(),
            m.knowledge.len() as u64
        );
    }

    /// Calm observed runs are fault-free in every ledger at once: empty
    /// replay log, empty fault counters, loss-free wire accounting, and
    /// the workload completes.
    #[test]
    fn calm_runs_are_loss_free(
        scenario_idx in 0usize..8,
        seed in any::<u64>(),
    ) {
        let (name, run) = &scenarios()[scenario_idx];
        let obs = run(seed, &FaultConfig::calm());
        let m = &obs.metrics;

        prop_assert!(obs.log.is_empty(), "{}: calm run logged faults", name);
        prop_assert!(m.faults.is_empty());
        prop_assert_eq!(m.messages_dropped, 0);
        prop_assert_eq!(m.messages_lost_to_crash, 0);
        prop_assert_eq!(m.messages_unserviced, 0);
        prop_assert_eq!(m.messages_sent, m.messages_delivered);
        prop_assert_eq!(m.bytes_sent, m.bytes_delivered);
        prop_assert!(obs.completed, "{}: calm run made no progress", name);
        prop_assert!(m.crypto_total() > 0, "{}: no crypto ops recorded", name);
    }

    /// Trace/metrics reconciliation across presets: a metrics-counted
    /// send is an environment injection, a wire drop, or exactly one
    /// packet record. Environment injections are a pure function of the
    /// config, so the calm run measures them and the faulted run must
    /// agree: sent − dropped − trace = the same constant.
    #[test]
    fn trace_reconciles_across_presets(
        scenario_idx in 0usize..8,
        preset in 0usize..3,
        seed in any::<u64>(),
    ) {
        let (name, run) = &scenarios()[scenario_idx];
        let calm = run(seed, &FaultConfig::calm());
        let env_posts = calm.metrics.messages_sent - calm.trace_len as u64;

        let faults = FaultConfig::presets()[preset].1.clone();
        let obs = run(seed, &faults);
        prop_assert_eq!(
            obs.metrics.messages_sent - obs.metrics.messages_dropped
                - obs.trace_len as u64,
            env_posts,
            "{}: sends unaccounted for between trace and metrics", name
        );
    }

    /// The whole report is a pure function of `(config, seed, preset)` —
    /// the metrics layer must not perturb or depend on anything outside
    /// the simulation.
    #[test]
    fn metrics_replay_from_seed(
        scenario_idx in 0usize..8,
        preset in 0usize..3,
        seed in any::<u64>(),
    ) {
        let (_, run) = &scenarios()[scenario_idx];
        let faults = FaultConfig::presets()[preset].1.clone();
        let a = run(seed, &faults);
        let b = run(seed, &faults);
        prop_assert_eq!(a.metrics, b.metrics);
        prop_assert_eq!(a.log, b.log);
        prop_assert_eq!(a.trace_len, b.trace_len);
    }
}
